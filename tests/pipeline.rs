//! Full-pipeline integration tests: generate → bias → ingest → learn →
//! query, validated against ground truth.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{percent_difference, ReweightMethod, Themis, ThemisConfig};
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};

fn flights() -> FlightsDataset {
    FlightsDataset::generate(FlightsConfig {
        n: 30_000,
        ..Default::default()
    })
}

#[test]
fn themis_beats_aqp_on_biased_flights_sample() {
    let dataset = flights();
    let attrs = FlightsDataset::attrs();
    let pop = &dataset.population;
    let n = pop.len() as f64;
    let mut rng = SmallRng::seed_from_u64(1);
    let sample = dataset.sample_scorners(&mut rng);

    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(pop, &[attrs.o]),
        AggregateResult::compute(pop, &[attrs.f]),
        AggregateResult::compute(pop, &[attrs.o, attrs.de]),
    ]);

    let aqp = Themis::build(
        sample.clone(),
        aggregates.clone(),
        n,
        ThemisConfig {
            reweighting: ReweightMethod::Uniform,
            bn_mode: None,
            ..ThemisConfig::default()
        },
    );
    let themis = Themis::build(sample, aggregates, n, ThemisConfig::default());

    // Per-state counts: Themis must cut the average error substantially.
    let mut aqp_err = 0.0;
    let mut themis_err = 0.0;
    for state in 0..20u32 {
        let truth = pop.point_count(&[attrs.o], &[state]);
        aqp_err += percent_difference(truth, aqp.point_query_sample(&[attrs.o], &[state]));
        themis_err += percent_difference(truth, themis.point_query(&[attrs.o], &[state]));
    }
    assert!(
        themis_err < 0.35 * aqp_err,
        "themis {themis_err:.1} vs aqp {aqp_err:.1}"
    );
}

#[test]
fn support_mismatch_is_handled_by_the_hybrid() {
    // Corners: non-corner origins have zero sampling probability. The
    // reweighted sample answers 0 for them; the hybrid must not.
    let dataset = flights();
    let attrs = FlightsDataset::attrs();
    let pop = &dataset.population;
    let n = pop.len() as f64;
    let mut rng = SmallRng::seed_from_u64(2);
    let sample = dataset.sample_corners(&mut rng);

    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(pop, &[attrs.o]),
        AggregateResult::compute(pop, &[attrs.o, attrs.de]),
    ]);
    let themis = Themis::build(sample.clone(), aggregates, n, ThemisConfig::default());

    let mut improved = 0;
    let mut total = 0;
    for state in 4..20u32 {
        let truth = pop.point_count(&[attrs.o], &[state]);
        if truth == 0.0 {
            continue;
        }
        total += 1;
        assert_eq!(
            sample.point_count(&[attrs.o], &[state]),
            0.0,
            "corners sample must miss state {state}"
        );
        let est = themis.point_query(&[attrs.o], &[state]);
        if percent_difference(truth, est) < 50.0 {
            improved += 1;
        }
    }
    assert!(
        improved * 10 >= total * 8,
        "hybrid should answer most missing states well ({improved}/{total})"
    );
}

#[test]
fn weights_reflect_population_scale() {
    let dataset = flights();
    let attrs = FlightsDataset::attrs();
    let pop = &dataset.population;
    let n = pop.len() as f64;
    let mut rng = SmallRng::seed_from_u64(3);
    let sample = dataset.sample_june(&mut rng);
    let aggregates = AggregateSet::from_results(vec![AggregateResult::compute(pop, &[attrs.f])]);

    // IPF with a single covering marginal satisfies it exactly, so the
    // total weight matches the population size.
    let themis = Themis::build(sample, aggregates, n, ThemisConfig::default());
    let total = themis.reweighted_sample().total_weight();
    assert!(
        (total - n).abs() / n < 0.01,
        "total weight {total} should approximate n = {n}"
    );
    let rep = themis.ipf_report().expect("IPF is the default");
    assert!(rep.converged, "single marginal must converge: {rep:?}");
}

#[test]
fn noisy_aggregates_still_debias() {
    // Perturb the aggregates (differential-privacy style); Themis should
    // still beat AQP.
    let dataset = flights();
    let attrs = FlightsDataset::attrs();
    let pop = &dataset.population;
    let n = pop.len() as f64;
    let mut rng = SmallRng::seed_from_u64(4);
    let sample = dataset.sample_scorners(&mut rng);

    let exact = AggregateResult::compute(pop, &[attrs.o]);
    let noisy_groups = exact
        .groups()
        .iter()
        .enumerate()
        .map(|(i, (k, c))| (k.clone(), (c + if i % 2 == 0 { 25.0 } else { -25.0 }).max(0.0)))
        .collect();
    let noisy = AggregateResult::from_groups(vec![attrs.o], noisy_groups);
    let aggregates = AggregateSet::from_results(vec![noisy]);

    let themis = Themis::build(sample.clone(), aggregates, n, ThemisConfig::default());
    let scale = n / sample.len() as f64;
    let mut aqp_err = 0.0;
    let mut themis_err = 0.0;
    for state in 0..20u32 {
        let truth = pop.point_count(&[attrs.o], &[state]);
        let aqp = sample.point_count(&[attrs.o], &[state]) * scale;
        aqp_err += percent_difference(truth, aqp);
        themis_err += percent_difference(truth, themis.point_query(&[attrs.o], &[state]));
    }
    assert!(themis_err < aqp_err, "themis {themis_err} vs aqp {aqp_err}");
}

#[test]
fn all_bn_modes_run_end_to_end() {
    let dataset = flights();
    let attrs = FlightsDataset::attrs();
    let pop = &dataset.population;
    let n = pop.len() as f64;
    let mut rng = SmallRng::seed_from_u64(5);
    let sample = dataset.sample_scorners(&mut rng);
    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(pop, &[attrs.o]),
        AggregateResult::compute(pop, &[attrs.o, attrs.dt]),
    ]);
    for mode in themis_bn::LearnMode::ALL {
        let t = Themis::build(
            sample.clone(),
            aggregates.clone(),
            n,
            ThemisConfig {
                bn_mode: Some(mode),
                ..ThemisConfig::default()
            },
        );
        let bn = t.bayesian_network().expect("mode builds a BN");
        assert!(bn.is_normalized(1e-6), "mode {} unnormalized", mode.name());
        let est = t.point_query_bn(&[attrs.o], &[0]).expect("mode builds a BN");
        assert!(est.is_finite() && est >= 0.0);
    }
}
