//! Accuracy-ordering integration tests mirroring the paper's headline
//! claims (§6.4, §6.6, §6.7) at test scale.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_bn::LearnMode;
use themis_core::{percent_difference, Themis, ThemisConfig};
use themis_data::datasets::imdb::{ImdbConfig, ImdbDataset};

fn setup() -> (ImdbDataset, AggregateSet) {
    let dataset = ImdbDataset::generate(ImdbConfig {
        n: 30_000,
        names: 1_500,
        ..Default::default()
    });
    let a = ImdbDataset::attrs();
    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(&dataset.population, &[a.rg]),
        AggregateResult::compute(&dataset.population, &[a.mc]),
        AggregateResult::compute(&dataset.population, &[a.mc, a.rg]),
        AggregateResult::compute(&dataset.population, &[a.my, a.rg]),
    ]);
    (dataset, aggregates)
}

/// Average error of a closure over the *existing* ratings (the paper's
/// workloads only query existing values, §6.3).
fn ratings_error(dataset: &ImdbDataset, estimate: impl Fn(u32) -> f64) -> f64 {
    let a = ImdbDataset::attrs();
    let mut total = 0.0;
    let mut count = 0.0;
    for rating in 0..10u32 {
        let truth = dataset.population.point_count(&[a.rg], &[rating]);
        if truth > 0.0 {
            total += percent_difference(truth, estimate(rating));
            count += 1.0;
        }
    }
    total / count
}

#[test]
fn hybrid_beats_sample_only_under_support_mismatch() {
    let (dataset, aggregates) = setup();
    let n = dataset.population.len() as f64;
    let mut rng = SmallRng::seed_from_u64(10);
    let scrape = dataset.sample_r159(&mut rng); // 100% bias: ratings 1/5/9
    let a = ImdbDataset::attrs();

    let themis = Themis::build(scrape, aggregates, n, ThemisConfig::default());
    let hybrid_err = ratings_error(&dataset, |r| themis.point_query(&[a.rg], &[r]));
    let sample_err = ratings_error(&dataset, |r| themis.point_query_sample(&[a.rg], &[r]));
    assert!(
        hybrid_err < 0.3 * sample_err,
        "hybrid {hybrid_err:.1} vs sample-only {sample_err:.1}"
    );
}

#[test]
fn bb_beats_ss_with_informative_aggregates() {
    let (dataset, aggregates) = setup();
    let n = dataset.population.len() as f64;
    let mut rng = SmallRng::seed_from_u64(11);
    let sample = dataset.sample_sr159(&mut rng);
    let a = ImdbDataset::attrs();

    let build = |mode| {
        Themis::build(
            sample.clone(),
            aggregates.clone(),
            n,
            ThemisConfig {
                bn_mode: Some(mode),
                ..ThemisConfig::default()
            },
        )
    };
    let bb = build(LearnMode::BB);
    let ss = build(LearnMode::SS);
    let bb_err = ratings_error(&dataset, |r| bb.point_query_bn(&[a.rg], &[r]).expect("BN built"));
    let ss_err = ratings_error(&dataset, |r| ss.point_query_bn(&[a.rg], &[r]).expect("BN built"));
    assert!(bb_err < ss_err, "BB {bb_err:.1} vs SS {ss_err:.1}");
}

#[test]
fn ipf_answers_in_sample_tuples_despite_non_convergence() {
    // §6.7: even when IPF does not converge, in-sample queries are good.
    let (dataset, aggregates) = setup();
    let n = dataset.population.len() as f64;
    let mut rng = SmallRng::seed_from_u64(12);
    let scrape = dataset.sample_r159(&mut rng);
    let a = ImdbDataset::attrs();

    let themis = Themis::build(scrape, aggregates, n, ThemisConfig::default());
    // In-sample ratings (ids 0, 4, 8): the reweighted estimates should be
    // within 25% of the truth.
    for rating in [0u32, 4, 8] {
        let truth = dataset.population.point_count(&[a.rg], &[rating]);
        let est = themis.point_query_sample(&[a.rg], &[rating]);
        let err = percent_difference(truth, est);
        assert!(err < 25.0, "rating {rating}: err {err:.1} (est {est}, true {truth})");
    }
}

#[test]
fn group_by_recovers_missing_groups() {
    let (dataset, aggregates) = setup();
    let n = dataset.population.len() as f64;
    let mut rng = SmallRng::seed_from_u64(13);
    let scrape = dataset.sample_r159(&mut rng);
    let a = ImdbDataset::attrs();

    let themis = Themis::build(
        scrape.clone(),
        aggregates,
        n,
        ThemisConfig {
            bn_sample_size: Some(20_000),
            ..ThemisConfig::default()
        },
    );
    let sample_groups = scrape.group_counts(&[a.rg]);
    assert!(sample_groups.len() <= 3, "scrape holds at most ratings 1/5/9");
    let existing = dataset.population.group_counts(&[a.rg]).len();
    let hybrid_groups = themis.group_by(&[a.rg]);
    assert!(
        hybrid_groups.len() >= existing - 1,
        "hybrid should recover most of the {existing} existing ratings, got {}",
        hybrid_groups.len()
    );
}
