//! Server-vs-session differential harness: the whole random-query corpus
//! shared with `exec_differential.rs` / `session_differential.rs` is driven
//! through the TCP wire protocol, and every response must be
//! **bit-identical** — same rows, same `Route` provenance, same typed error
//! and trip kind — to a direct `ThemisSession` oracle answering the same
//! query with the same `EngineOptions`.
//!
//! The corpus runs at 1, 2, and 8 concurrent client connections against a
//! fresh server per level. Bit-identity across concurrency levels holds
//! because the world is shared immutably (one `Arc<ThemisSession>`, one
//! seeded replicate cache) and per-connection state is only governance
//! policy: nothing a neighboring connection does may perturb an answer.
//!
//! The corpus itself is generated manually from the shared
//! `query_strategy()` with a fixed-seed `TestRng`, honoring
//! `PROPTEST_CASES`, so the acceptance run (`PROPTEST_CASES=500`) replays
//! the exact same 500 queries the proptest suites would.

use proptest::strategy::Strategy;
use proptest::test_runner::{ProptestConfig, TestRng};
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{Answer, Explain, Themis, ThemisConfig, ThemisError, ThemisSession};
use themis_data::{AttrId, Relation};
use themis_query::{EngineOptions, Limits};
use themis_serve::protocol::{decode_error, themis_error_body};
use themis_serve::{Client, ServerConfig, ThemisServer, WireError};
use themis_tests::querygen::{query_strategy, test_schema, SIZES};

/// The same skewed open-world dataset as `session_differential.rs`: a
/// 2 000-row population, a 300-row sample biased to `a < 3`, BN enabled.
fn world() -> Arc<ThemisSession> {
    static WORLD: OnceLock<Arc<ThemisSession>> = OnceLock::new();
    Arc::clone(WORLD.get_or_init(|| {
        let mut pop = Relation::new(test_schema());
        for i in 0..2_000usize {
            pop.push_row(&[
                (i * 7 + i / 13) as u32 % SIZES[0],
                (i * 5 + 1) as u32 % SIZES[1],
                (i * 11 + i / 7) as u32 % SIZES[2],
            ]);
        }
        let aggregates = AggregateSet::from_results(vec![
            AggregateResult::compute(&pop, &[AttrId(0)]),
            AggregateResult::compute(&pop, &[AttrId(1), AttrId(2)]),
        ]);
        let n = pop.len() as f64;
        let rows: Vec<usize> = (0..pop.len())
            .filter(|&r| pop.value(r, AttrId(0)) < 3)
            .take(300)
            .collect();
        let sample = pop.select_rows(&rows);
        let config = ThemisConfig {
            bn_sample_size: Some(500),
            ..ThemisConfig::default()
        };
        Arc::new(ThemisSession::new(Themis::build(sample, aggregates, n, config)))
    }))
}

/// The engine every server connection runs with, mirrored exactly by the
/// oracle. Small morsels so multi-morsel merging is exercised.
fn engine() -> EngineOptions {
    EngineOptions {
        threads: 1,
        morsel_rows: 7,
        ..EngineOptions::default()
    }
}

/// The oracle's view of a strict connection (`set {"max_rows": 1}`).
fn strict_engine() -> EngineOptions {
    EngineOptions {
        limits: Limits {
            max_rows: Some(1),
            ..Limits::default()
        },
        ..engine()
    }
}

/// What the wire must carry for an oracle error: run the oracle's
/// `ThemisError` through the protocol's own encoder and decode it back.
fn expected_error(err: &ThemisError) -> WireError {
    decode_error(&themis_error_body(err)).expect("protocol encodes every ThemisError")
}

/// `PROPTEST_CASES` random queries from the shared generator plus fixed
/// shapes the generator cannot produce: an unknown column, a parse error,
/// and a point predicate on a label absent from the biased sample (the pure
/// BN route).
fn corpus() -> &'static Vec<String> {
    static CORPUS: OnceLock<Vec<String>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let cases = ProptestConfig::default().cases;
        let mut rng = TestRng::for_test("server_differential");
        let strategy = query_strategy();
        let mut corpus: Vec<String> =
            (0..cases).map(|_| strategy.generate(&mut rng)).collect();
        corpus.push("SELECT COUNT(*) AS n FROM t WHERE zzz = '1'".to_string());
        corpus.push("SELECT COUNT(*) FROM".to_string());
        corpus.push("SELECT COUNT(*) AS n FROM t WHERE a = '4'".to_string());
        corpus.push("SELECT a, COUNT(*) AS n FROM t WHERE a = '4' GROUP BY a".to_string());
        corpus
    })
}

/// The oracle's answer and explain for one query, pre-encoded on the error
/// side so comparisons against the wire are exact.
struct Expected {
    answer: Result<Answer, WireError>,
    explain: Result<Explain, WireError>,
}

fn oracle() -> &'static Vec<Expected> {
    static ORACLE: OnceLock<Vec<Expected>> = OnceLock::new();
    ORACLE.get_or_init(|| {
        let session = world();
        let engine = engine();
        corpus()
            .iter()
            .map(|sql| Expected {
                answer: session.sql_with(sql, &engine).map_err(|e| expected_error(&e)),
                explain: session
                    .explain_with(sql, &engine)
                    .map_err(|e| expected_error(&e)),
            })
            .collect()
    })
}

/// One client: replay its `idx % clients == slot` share of the corpus and
/// assert every response is bit-identical to the oracle, then trip a row
/// budget via `set` and check the governed error matches the oracle too.
fn drive_client(addr: SocketAddr, slot: usize, clients: usize) {
    let corpus = corpus();
    let oracle = oracle();
    let mut client = Client::connect(addr).expect("connect");
    for (idx, sql) in corpus.iter().enumerate() {
        if idx % clients != slot {
            continue;
        }
        let wire = client.query(sql).expect("transport");
        match (&wire, &oracle[idx].answer) {
            (Ok(w), Ok(o)) => {
                assert_eq!(w.result, o.result, "rows diverged from session: {sql}");
                assert_eq!(w.route, o.route, "route diverged from session: {sql}");
            }
            (Err(w), Err(o)) => assert_eq!(w, o, "error diverged from session: {sql}"),
            (w, o) => panic!(
                "{sql}: wire and session disagree on success: {w:?} vs oracle {:?}",
                o.as_ref().map(|a| &a.route)
            ),
        }
        let wire_explain = client.explain(sql).expect("transport");
        match (&wire_explain, &oracle[idx].explain) {
            (Ok(w), Ok(o)) => assert_eq!(w, o, "explain diverged from session: {sql}"),
            (Err(w), Err(o)) => assert_eq!(w, o, "explain error diverged: {sql}"),
            (w, o) => panic!("{sql}: wire and session disagree on explain: {w:?} vs {o:?}"),
        }
    }
    // Governance differential: a strict per-connection budget must trip on
    // the wire exactly as `Limits` trips in the session.
    let strict_sql = "SELECT a, COUNT(*) AS n FROM t GROUP BY a";
    client
        .set(&themis_serve::SetRequest {
            max_rows: Some(Some(1)),
            ..themis_serve::SetRequest::default()
        })
        .expect("transport")
        .expect("set");
    let wire = client
        .query(strict_sql)
        .expect("transport")
        .expect_err("row budget of 1 must trip");
    let direct = world()
        .sql_with(strict_sql, &strict_engine())
        .expect_err("oracle trips too");
    assert_eq!(wire, expected_error(&direct), "governed trip diverged");
}

/// Serve the shared world and replay the corpus over `clients` concurrent
/// connections, partitioned by index.
fn run_level(clients: usize) {
    let config = ServerConfig {
        workers: clients,
        max_concurrent_queries: clients,
        threads: 1,
        morsel_rows: 7,
        ..ServerConfig::default()
    };
    let server = ThemisServer::bind("127.0.0.1:0", world(), config).expect("bind");
    let handle = server.handle();
    let addr = server.local_addr();
    let results = rayon::Pool::new(2)
        .try_par_indexed(2, |task| {
            if task == 0 {
                server.serve().map_err(|e| format!("serve failed: {e}"))
            } else {
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    rayon::Pool::new(clients)
                        .try_par_indexed(clients, |slot| drive_client(addr, slot, clients))
                        .expect("client pool");
                }));
                handle.shutdown();
                caught.map_err(|payload| {
                    payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "driver panicked".to_string())
                })
            }
        })
        .expect("orchestration pool");
    for r in results {
        if let Err(message) = r {
            panic!("{message}");
        }
    }
}

/// One client against a **cache-enabled** server: every corpus query is
/// issued twice — the second ask is served from the answer cache — and both
/// responses must still be bit-identical to the cache-less session oracle.
/// After the pair, `explain` must report the plan as cached.
fn drive_cached_client(addr: SocketAddr, slot: usize, clients: usize) {
    let corpus = corpus();
    let oracle = oracle();
    let mut client = Client::connect(addr).expect("connect");
    for (idx, sql) in corpus.iter().enumerate() {
        if idx % clients != slot {
            continue;
        }
        let mut populated = false;
        for ask in ["cold", "cached"] {
            let wire = client.query(sql).expect("transport");
            populated = wire.is_ok();
            match (&wire, &oracle[idx].answer) {
                (Ok(w), Ok(o)) => {
                    assert_eq!(w.result, o.result, "{ask} rows diverged from session: {sql}");
                    assert_eq!(w.route, o.route, "{ask} route diverged from session: {sql}");
                }
                (Err(w), Err(o)) => assert_eq!(w, o, "{ask} error diverged from session: {sql}"),
                (w, o) => panic!(
                    "{sql}: {ask} wire and session disagree on success: {w:?} vs oracle {:?}",
                    o.as_ref().map(|a| &a.route)
                ),
            }
        }
        let wire_explain = client.explain(sql).expect("transport");
        match (&wire_explain, &oracle[idx].explain) {
            (Ok(w), Ok(o)) => {
                assert_eq!(w.route, o.route, "explain route diverged: {sql}");
                assert_eq!(w.reason, o.reason, "explain reason diverged: {sql}");
                assert_eq!(w.degrades_to, o.degrades_to, "explain degradation diverged: {sql}");
                // The oracle has no cache (`cached: None`); the server must
                // report the plan as present after a successful query pair,
                // and as absent when the query erred (errors never populate).
                assert_eq!(w.cached, Some(populated), "explain cache probe diverged: {sql}");
            }
            (Err(w), Err(o)) => assert_eq!(w, o, "explain error diverged: {sql}"),
            (w, o) => panic!("{sql}: wire and session disagree on explain: {w:?} vs {o:?}"),
        }
    }
}

/// The cached level: a fresh cache-enabled world (large enough that nothing
/// is evicted mid-run) built on the same data as the shared oracle world.
fn run_cached_level(clients: usize) {
    let base = world();
    let cached_world = Arc::new(
        ThemisSession::new(base.model().as_ref().clone()).with_answer_cache(4096),
    );
    let config = ServerConfig {
        workers: clients,
        max_concurrent_queries: clients,
        threads: 1,
        morsel_rows: 7,
        ..ServerConfig::default()
    };
    let server = ThemisServer::bind("127.0.0.1:0", cached_world, config).expect("bind");
    let handle = server.handle();
    let addr = server.local_addr();
    let results = rayon::Pool::new(2)
        .try_par_indexed(2, |task| {
            if task == 0 {
                server.serve().map_err(|e| format!("serve failed: {e}"))
            } else {
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    rayon::Pool::new(clients)
                        .try_par_indexed(clients, |slot| drive_cached_client(addr, slot, clients))
                        .expect("client pool");
                }));
                handle.shutdown();
                caught.map_err(|payload| {
                    payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "driver panicked".to_string())
                })
            }
        })
        .expect("orchestration pool");
    for r in results {
        if let Err(message) = r {
            panic!("{message}");
        }
    }
}

#[test]
fn one_client_matches_the_session_bit_for_bit() {
    run_level(1);
}

#[test]
fn two_concurrent_clients_match_the_session_bit_for_bit() {
    run_level(2);
}

#[test]
fn eight_concurrent_clients_match_the_session_bit_for_bit() {
    run_level(8);
}

#[test]
fn cached_answers_match_the_session_bit_for_bit() {
    run_cached_level(2);
}
