//! SQL-level integration tests: parse → route → execute → hybrid merge,
//! through the session API.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{Route, Themis, ThemisConfig, ThemisError, ThemisSession};
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};
use themis_query::{Catalog, EngineOptions, ExecError, Value};

fn build() -> (FlightsDataset, ThemisSession) {
    let dataset = FlightsDataset::generate(FlightsConfig {
        n: 60_000,
        ..Default::default()
    });
    let attrs = FlightsDataset::attrs();
    let pop = &dataset.population;
    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(pop, &[attrs.o]),
        AggregateResult::compute(pop, &[attrs.o, attrs.de]),
    ]);
    let mut rng = SmallRng::seed_from_u64(21);
    let sample = dataset.sample_scorners(&mut rng);
    let n = pop.len() as f64;
    let themis = Themis::build(
        sample,
        aggregates,
        n,
        ThemisConfig {
            bn_sample_size: Some(10_000),
            ..ThemisConfig::default()
        },
    );
    (dataset, ThemisSession::new(themis))
}

#[test]
fn count_star_approximates_population_size() {
    let (dataset, session) = build();
    let answer = session.sql("SELECT COUNT(*) FROM flights").unwrap();
    // A bare total count routes to the reweighted sample.
    assert_eq!(answer.route, Route::Sample);
    let est = answer.scalar().unwrap();
    let n = dataset.population.len() as f64;
    assert!((est - n).abs() / n < 0.25, "COUNT(*) = {est}, n = {n}");
}

#[test]
fn filtered_counts_track_truth() {
    let (dataset, session) = build();
    let sql = "SELECT COUNT(*) FROM flights WHERE origin_state = 'TX'";
    let mut catalog = Catalog::new();
    catalog.register("flights", dataset.population.clone());
    let truth = themis_query::run_sql(&catalog, sql, &EngineOptions::default())
        .unwrap()
        .scalar()
        .unwrap();
    let est = session.sql(sql).unwrap().scalar().unwrap();
    assert!(
        (est - truth).abs() / truth < 0.5,
        "est {est} vs truth {truth}"
    );
}

#[test]
fn group_by_returns_weighted_groups() {
    let (_, session) = build();
    let answer = session
        .sql("SELECT origin_state, COUNT(*) FROM flights GROUP BY origin_state")
        .unwrap();
    assert!(matches!(answer.route, Route::Hybrid { .. }));
    let r = &answer.result;
    assert_eq!(r.group_arity, 1);
    assert!(r.rows.len() >= 15, "most states should appear");
    // All aggregate cells positive.
    for row in &r.rows {
        match &row[1] {
            Value::Num(v) => assert!(*v > 0.0),
            Value::Str(_) => panic!("aggregate cell must be numeric"),
        }
    }
}

#[test]
fn join_query_runs_on_the_model() {
    let (_, session) = build();
    let answer = session
        .sql(
            "SELECT t.origin_state, COUNT(*) FROM flights t, flights s \
             WHERE t.dest_state = s.origin_state GROUP BY t.origin_state",
        )
        .unwrap();
    assert!(!answer.result.rows.is_empty());
    // Grouped joins take the hybrid route too.
    assert!(matches!(answer.route, Route::Hybrid { .. }));
}

#[test]
fn parse_errors_surface_cleanly() {
    let (_, session) = build();
    let err = session.sql("SELEKT * FROM flights").unwrap_err();
    assert!(matches!(err, ThemisError::Exec(ExecError::Parse(_))));
    let msg = err.to_string();
    assert!(msg.contains("parse error"), "unexpected message: {msg}");
}

#[test]
fn avg_queries_agree_with_population_shape() {
    let (dataset, session) = build();
    let sql = "SELECT origin_state, AVG(elapsed_time) FROM flights GROUP BY origin_state";
    let mut catalog = Catalog::new();
    catalog.register("flights", dataset.population.clone());
    let truth = themis_query::run_sql(&catalog, sql, &EngineOptions::default())
        .unwrap()
        .to_map();
    let est = session.sql_sample_only(sql).unwrap().result.to_map();
    // Average elapsed-time bucket should be within 1.5 buckets for the
    // heavily sampled corner states.
    for state in ["CA", "NY", "FL", "WA"] {
        let key = vec![state.to_string()];
        let t = truth[&key][0];
        let e = est[&key][0];
        assert!((t - e).abs() < 1.5, "{state}: est {e} vs truth {t}");
    }
}

#[test]
fn explain_matches_executed_route_on_real_data() {
    let (_, session) = build();
    for sql in [
        "SELECT COUNT(*) FROM flights",
        "SELECT origin_state, COUNT(*) FROM flights GROUP BY origin_state",
        "SELECT COUNT(*) FROM flights WHERE origin_state = 'TX'",
    ] {
        let promised = session.explain(sql).unwrap().route;
        let took = session.sql(sql).unwrap().route;
        assert_eq!(promised, took.kind(), "{sql}");
    }
}
