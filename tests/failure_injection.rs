//! Failure-injection integration tests: degenerate aggregates, adversarial
//! inputs, and configuration corner cases must degrade gracefully, never
//! panic or produce NaN.

use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{ReweightMethod, Themis, ThemisConfig};
use themis_data::paper_example::{example_population, example_sample};
use themis_data::AttrId;
use themis_query::{Catalog, EngineOptions, ExecError};
use themis_reweight::IpfOptions;

fn assert_all_finite(t: &Themis) {
    assert!(t.reweighted_sample().weights().iter().all(|w| w.is_finite()));
    let attrs = [AttrId(0), AttrId(1), AttrId(2)];
    for date in 0..2u32 {
        for o in 0..3u32 {
            for d in 0..3u32 {
                let est = t.point_query(&attrs, &[date, o, d]);
                assert!(est.is_finite() && est >= 0.0, "estimate {est}");
            }
        }
    }
}

#[test]
fn empty_aggregate_set_degrades_to_aqp_plus_sample_bn() {
    // No aggregates at all: IPF has nothing to fit (weights stay 1 until
    // normalization never happens), the BN learns from the sample only.
    let t = Themis::build(
        example_sample(),
        AggregateSet::new(),
        10.0,
        ThemisConfig::default(),
    );
    assert_all_finite(&t);
    let rep = t.ipf_report().expect("IPF default");
    assert!(rep.converged, "vacuous constraints are satisfied");
    assert_eq!(rep.iterations, 0);
}

#[test]
fn zero_count_aggregate_groups_do_not_poison_weights() {
    // An aggregate claiming a group has zero population count: IPF scales
    // the participating tuples to zero — the remaining queries must stay
    // finite and the model usable.
    let groups = vec![(vec![0u32], 0.0), (vec![1u32], 10.0)];
    let set = AggregateSet::from_results(vec![AggregateResult::from_groups(
        vec![AttrId(0)],
        groups,
    )]);
    let t = Themis::build(example_sample(), set, 10.0, ThemisConfig::default());
    assert_all_finite(&t);
    // The date=01 tuples were zeroed by the (claimed) empty group.
    assert_eq!(t.point_query_sample(&[AttrId(0)], &[0]), 0.0);
    // date=02 got everything.
    assert!(t.point_query_sample(&[AttrId(0)], &[1]) > 0.0);
}

#[test]
fn wildly_inconsistent_aggregates_stay_finite() {
    // Two aggregates that cannot both hold (totals 10 vs 1000): IPF will
    // not converge; everything must stay finite, best effort.
    let p = example_population();
    let small = AggregateResult::compute(&p, &[AttrId(0)]);
    let huge = AggregateResult::from_groups(
        vec![AttrId(1)],
        vec![(vec![0], 900.0), (vec![1], 50.0), (vec![2], 50.0)],
    );
    let set = AggregateSet::from_results(vec![small, huge]);
    let t = Themis::build(example_sample(), set, 10.0, ThemisConfig::default());
    assert_all_finite(&t);
    assert!(!t.ipf_report().unwrap().converged);
}

#[test]
fn linreg_handles_single_group_aggregate() {
    // One aggregate with a single group (a plain total): the design matrix
    // is 1 row + intercept row; NNLS must handle it.
    let set = AggregateSet::from_results(vec![AggregateResult::from_groups(
        vec![AttrId(0)],
        vec![(vec![0], 5.0)],
    )]);
    let t = Themis::build(
        example_sample(),
        set,
        10.0,
        ThemisConfig {
            reweighting: ReweightMethod::LinReg(Default::default()),
            bn_mode: None,
            ..ThemisConfig::default()
        },
    );
    assert_all_finite(&t);
    assert!((t.reweighted_sample().total_weight() - 10.0).abs() < 1e-6);
}

#[test]
fn single_row_sample_builds() {
    let mut s = themis_data::Relation::new(themis_data::paper_example::example_schema());
    s.push_row_labels(&["01", "FL", "FL"]);
    let p = example_population();
    let set = AggregateSet::from_results(vec![AggregateResult::compute(&p, &[AttrId(0)])]);
    let t = Themis::build(s, set, 10.0, ThemisConfig::default());
    assert_all_finite(&t);
    // The lone tuple carries the date=01 mass.
    assert!((t.point_query_sample(&[AttrId(0)], &[0]) - 5.0).abs() < 1e-9);
}

#[test]
fn zero_iteration_ipf_is_uniform_weights() {
    let p = example_population();
    let set = AggregateSet::from_results(vec![AggregateResult::compute(&p, &[AttrId(0)])]);
    let t = Themis::build(
        example_sample(),
        set,
        10.0,
        ThemisConfig {
            reweighting: ReweightMethod::Ipf(IpfOptions {
                max_iterations: 0,
                tolerance: 1e-9,
            }),
            bn_mode: None,
            ..ThemisConfig::default()
        },
    );
    assert!(t.reweighted_sample().weights().iter().all(|&w| w == 1.0));
}

#[test]
fn duplicate_aggregates_are_harmless() {
    let p = example_population();
    let a = AggregateResult::compute(&p, &[AttrId(0)]);
    let set = AggregateSet::from_results(vec![a.clone(), a.clone(), a]);
    let t = Themis::build(example_sample(), set, 10.0, ThemisConfig::default());
    assert_all_finite(&t);
    assert!(t.ipf_report().unwrap().converged);
}

/// Every error path of the parallel engine must surface the *same*
/// `ExecError` as the serial engine — the planner is shared, so a query that
/// the serial oracle rejects must be rejected identically regardless of
/// thread count or morsel size.
#[test]
fn parallel_engine_errors_match_serial() {
    let mut catalog = Catalog::new();
    catalog.register("flights", example_population());
    type ErrorKind = fn(&ExecError) -> bool;
    let cases: &[(&str, ErrorKind)] = &[
        // Unknown column in a predicate.
        ("SELECT COUNT(*) FROM flights WHERE nope = 1", |e| {
            matches!(e, ExecError::UnknownColumn(_))
        }),
        // Bad ORDER BY target (not an output column).
        (
            "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st ORDER BY nope",
            |e| matches!(e, ExecError::UnknownColumn(_)),
        ),
        // Unknown table.
        ("SELECT COUNT(*) FROM missing", |e| {
            matches!(e, ExecError::UnknownTable(_))
        }),
        // Unknown column in GROUP BY.
        (
            "SELECT nope, COUNT(*) FROM flights GROUP BY nope",
            |e| matches!(e, ExecError::UnknownColumn(_)),
        ),
        // Aggregate-free query.
        ("SELECT o_st FROM flights", |e| {
            matches!(e, ExecError::Unsupported(_))
        }),
        // Cross product (two tables, no join condition).
        ("SELECT COUNT(*) FROM flights t, flights s", |e| {
            matches!(e, ExecError::Unsupported(_))
        }),
        // Unknown column on one side of a join.
        (
            "SELECT COUNT(*) FROM flights t, flights s WHERE t.nope = s.o_st",
            |e| matches!(e, ExecError::UnknownColumn(_)),
        ),
    ];
    for (sql, expected_kind) in cases {
        let query = themis_sql::parse(sql).expect(sql);
        let serial = themis_query::execute(&catalog, &query).unwrap_err();
        assert!(expected_kind(&serial), "{sql}: serial gave {serial:?}");
        for (threads, morsel_rows) in [(2, 1), (4, 3), (8, 2048)] {
            let opts = EngineOptions {
                threads,
                morsel_rows,
            };
            let parallel = themis_query::execute_parallel(&catalog, &query, &opts).unwrap_err();
            assert_eq!(
                parallel, serial,
                "{sql}: parallel ({threads} threads) error differs"
            );
        }
    }
}

#[test]
fn noisy_aggregate_totals_disagreeing_with_n_still_work() {
    // Aggregate total (14) disagrees with the declared population size
    // (10): Themis treats both as approximate.
    let set = AggregateSet::from_results(vec![AggregateResult::from_groups(
        vec![AttrId(0)],
        vec![(vec![0], 8.0), (vec![1], 6.0)],
    )]);
    let t = Themis::build(example_sample(), set, 10.0, ThemisConfig::default());
    assert_all_finite(&t);
    // BN marginal is normalized even though counts sum to 14 > n.
    let bn = t.bayesian_network().unwrap();
    assert!(bn.is_normalized(1e-6));
}
