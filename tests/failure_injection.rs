//! Failure-injection integration tests: degenerate aggregates, adversarial
//! inputs, and configuration corner cases must degrade gracefully, never
//! panic or produce NaN — and every governance fault (injected worker
//! panics, tripped deadlines/budgets, cancellation) must surface the *same*
//! typed error from both engines at every thread/morsel configuration.

use proptest::prelude::*;
use std::time::Duration;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{ReweightMethod, Themis, ThemisConfig};
use themis_data::paper_example::{example_population, example_sample};
use themis_data::{AttrId, Relation};
use themis_query::{
    execute_guarded, CancelToken, Catalog, EngineOptions, ExecError, FaultPlan, Limits, Trip,
};
use themis_reweight::IpfOptions;
use themis_tests::querygen::{query_strategy, random_relation, rows_strategy, test_schema, SIZES};

fn assert_all_finite(t: &Themis) {
    assert!(t.reweighted_sample().weights().iter().all(|w| w.is_finite()));
    let attrs = [AttrId(0), AttrId(1), AttrId(2)];
    for date in 0..2u32 {
        for o in 0..3u32 {
            for d in 0..3u32 {
                let est = t.point_query(&attrs, &[date, o, d]);
                assert!(est.is_finite() && est >= 0.0, "estimate {est}");
            }
        }
    }
}

#[test]
fn empty_aggregate_set_degrades_to_aqp_plus_sample_bn() {
    // No aggregates at all: IPF has nothing to fit (weights stay 1 until
    // normalization never happens), the BN learns from the sample only.
    let t = Themis::build(
        example_sample(),
        AggregateSet::new(),
        10.0,
        ThemisConfig::default(),
    );
    assert_all_finite(&t);
    let rep = t.ipf_report().expect("IPF default");
    assert!(rep.converged, "vacuous constraints are satisfied");
    assert_eq!(rep.iterations, 0);
}

#[test]
fn zero_count_aggregate_groups_do_not_poison_weights() {
    // An aggregate claiming a group has zero population count: IPF scales
    // the participating tuples to zero — the remaining queries must stay
    // finite and the model usable.
    let groups = vec![(vec![0u32], 0.0), (vec![1u32], 10.0)];
    let set = AggregateSet::from_results(vec![AggregateResult::from_groups(
        vec![AttrId(0)],
        groups,
    )]);
    let t = Themis::build(example_sample(), set, 10.0, ThemisConfig::default());
    assert_all_finite(&t);
    // The date=01 tuples were zeroed by the (claimed) empty group.
    assert_eq!(t.point_query_sample(&[AttrId(0)], &[0]), 0.0);
    // date=02 got everything.
    assert!(t.point_query_sample(&[AttrId(0)], &[1]) > 0.0);
}

#[test]
fn wildly_inconsistent_aggregates_stay_finite() {
    // Two aggregates that cannot both hold (totals 10 vs 1000): IPF will
    // not converge; everything must stay finite, best effort.
    let p = example_population();
    let small = AggregateResult::compute(&p, &[AttrId(0)]);
    let huge = AggregateResult::from_groups(
        vec![AttrId(1)],
        vec![(vec![0], 900.0), (vec![1], 50.0), (vec![2], 50.0)],
    );
    let set = AggregateSet::from_results(vec![small, huge]);
    let t = Themis::build(example_sample(), set, 10.0, ThemisConfig::default());
    assert_all_finite(&t);
    assert!(!t.ipf_report().unwrap().converged);
}

#[test]
fn linreg_handles_single_group_aggregate() {
    // One aggregate with a single group (a plain total): the design matrix
    // is 1 row + intercept row; NNLS must handle it.
    let set = AggregateSet::from_results(vec![AggregateResult::from_groups(
        vec![AttrId(0)],
        vec![(vec![0], 5.0)],
    )]);
    let t = Themis::build(
        example_sample(),
        set,
        10.0,
        ThemisConfig {
            reweighting: ReweightMethod::LinReg(Default::default()),
            bn_mode: None,
            ..ThemisConfig::default()
        },
    );
    assert_all_finite(&t);
    assert!((t.reweighted_sample().total_weight() - 10.0).abs() < 1e-6);
}

#[test]
fn single_row_sample_builds() {
    let mut s = themis_data::Relation::new(themis_data::paper_example::example_schema());
    s.push_row_labels(&["01", "FL", "FL"]);
    let p = example_population();
    let set = AggregateSet::from_results(vec![AggregateResult::compute(&p, &[AttrId(0)])]);
    let t = Themis::build(s, set, 10.0, ThemisConfig::default());
    assert_all_finite(&t);
    // The lone tuple carries the date=01 mass.
    assert!((t.point_query_sample(&[AttrId(0)], &[0]) - 5.0).abs() < 1e-9);
}

#[test]
fn zero_iteration_ipf_is_uniform_weights() {
    let p = example_population();
    let set = AggregateSet::from_results(vec![AggregateResult::compute(&p, &[AttrId(0)])]);
    let t = Themis::build(
        example_sample(),
        set,
        10.0,
        ThemisConfig {
            reweighting: ReweightMethod::Ipf(IpfOptions {
                max_iterations: 0,
                tolerance: 1e-9,
            }),
            bn_mode: None,
            ..ThemisConfig::default()
        },
    );
    assert!(t.reweighted_sample().weights().iter().all(|&w| w == 1.0));
}

#[test]
fn duplicate_aggregates_are_harmless() {
    let p = example_population();
    let a = AggregateResult::compute(&p, &[AttrId(0)]);
    let set = AggregateSet::from_results(vec![a.clone(), a.clone(), a]);
    let t = Themis::build(example_sample(), set, 10.0, ThemisConfig::default());
    assert_all_finite(&t);
    assert!(t.ipf_report().unwrap().converged);
}

/// Every error path of the parallel engine must surface the *same*
/// `ExecError` as the serial engine — the planner is shared, so a query that
/// the serial oracle rejects must be rejected identically regardless of
/// thread count or morsel size.
#[test]
fn parallel_engine_errors_match_serial() {
    let mut catalog = Catalog::new();
    catalog.register("flights", example_population());
    type ErrorKind = fn(&ExecError) -> bool;
    let cases: &[(&str, ErrorKind)] = &[
        // Unknown column in a predicate.
        ("SELECT COUNT(*) FROM flights WHERE nope = 1", |e| {
            matches!(e, ExecError::UnknownColumn(_))
        }),
        // Bad ORDER BY target (not an output column).
        (
            "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st ORDER BY nope",
            |e| matches!(e, ExecError::UnknownColumn(_)),
        ),
        // Unknown table.
        ("SELECT COUNT(*) FROM missing", |e| {
            matches!(e, ExecError::UnknownTable(_))
        }),
        // Unknown column in GROUP BY.
        (
            "SELECT nope, COUNT(*) FROM flights GROUP BY nope",
            |e| matches!(e, ExecError::UnknownColumn(_)),
        ),
        // Aggregate-free query.
        ("SELECT o_st FROM flights", |e| {
            matches!(e, ExecError::Unsupported(_))
        }),
        // Cross product (two tables, no join condition).
        ("SELECT COUNT(*) FROM flights t, flights s", |e| {
            matches!(e, ExecError::Unsupported(_))
        }),
        // Unknown column on one side of a join.
        (
            "SELECT COUNT(*) FROM flights t, flights s WHERE t.nope = s.o_st",
            |e| matches!(e, ExecError::UnknownColumn(_)),
        ),
    ];
    for (sql, expected_kind) in cases {
        let query = themis_sql::parse(sql).expect(sql);
        let serial = themis_query::execute(&catalog, &query).unwrap_err();
        assert!(expected_kind(&serial), "{sql}: serial gave {serial:?}");
        for (threads, morsel_rows) in [(2, 1), (4, 3), (8, 2048)] {
            let opts = EngineOptions {
                threads,
                morsel_rows,
                ..EngineOptions::default()
            };
            let parallel = themis_query::execute_parallel(&catalog, &query, &opts).unwrap_err();
            assert_eq!(
                parallel, serial,
                "{sql}: parallel ({threads} threads) error differs"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Query governance (tentpole): injected faults and tripped limits.
// ---------------------------------------------------------------------------

/// Thread/morsel configurations the governance suites sweep: the inline
/// single-worker path, many threads with tiny morsels, and the default
/// morsel size (where `big_relation` still spans 3 morsels).
const CONFIGS: [(usize, usize); 3] = [(1, 7), (4, 3), (8, 2048)];

/// One query per plan shape the guard instruments: scalar scan, grouped
/// scan, self-join.
const GOVERNED_QUERIES: [&str; 3] = [
    "SELECT COUNT(*) AS n, SUM(c) FROM t",
    "SELECT a, b, COUNT(*) AS n, AVG(c) FROM t GROUP BY a, b",
    "SELECT x.a, COUNT(*) AS n FROM t x, t y WHERE x.b = y.c GROUP BY x.a",
];

/// ~5000 deterministic rows over the generator schema, so even the
/// `(8, 2048)` configuration spans several morsels.
fn big_relation() -> Relation {
    let mut rel = Relation::new(test_schema());
    for i in 0..5_000usize {
        let vals = [
            (i * 7 + 3) as u32 % SIZES[0],
            (i * 5 + 1) as u32 % SIZES[1],
            (i * 11) as u32 % SIZES[2],
        ];
        rel.push_row_weighted(&vals, (i % 8) as f64 * 0.5);
    }
    rel
}

fn governed_opts(
    threads: usize,
    morsel_rows: usize,
    limits: Limits,
    fault_plan: FaultPlan,
) -> EngineOptions {
    EngineOptions {
        threads,
        morsel_rows,
        limits,
        fault_plan,
        ..EngineOptions::default()
    }
}

/// Every `FaultPlan` fault, on every plan shape, at every configuration:
/// both engines return the *identical* typed error — never a panic, and
/// never an engine-dependent error value.
#[test]
fn injected_faults_yield_identical_typed_errors_from_both_engines() {
    let mut catalog = Catalog::new();
    catalog.register("t", big_relation());
    let cases: [(Limits, FaultPlan, ExecError); 3] = [
        // A stalled morsel pushes execution past a short deadline.
        (
            Limits {
                deadline: Some(Duration::from_millis(5)),
                ..Limits::default()
            },
            FaultPlan::SlowMorsel {
                morsel: 0,
                delay: Duration::from_millis(30),
            },
            ExecError::Governed(Trip::Deadline),
        ),
        // A worker panic is contained and typed, with the same message from
        // the serial engine's catch_unwind and the pool's containment.
        (
            Limits::default(),
            FaultPlan::PanicAtMorsel { morsel: 0 },
            ExecError::Internal("worker panicked: injected worker panic at morsel 0".into()),
        ),
        // Instant budget exhaustion at the first boundary.
        (
            Limits::default(),
            FaultPlan::BudgetExhaust,
            ExecError::Governed(Trip::RowBudget { limit: 0 }),
        ),
    ];
    for (limits, fault, expected) in &cases {
        for sql in GOVERNED_QUERIES {
            let query = themis_sql::parse(sql).expect(sql);
            for (threads, morsel_rows) in CONFIGS {
                let opts = governed_opts(threads, morsel_rows, limits.clone(), fault.clone());
                let serial = execute_guarded(&catalog, &query, &opts)
                    .expect_err("serial must trip the injected fault");
                let parallel = themis_query::execute_parallel(&catalog, &query, &opts)
                    .expect_err("parallel must trip the injected fault");
                assert_eq!(
                    &serial, expected,
                    "{sql} ({threads} threads, {morsel_rows} morsel): serial error"
                );
                assert_eq!(
                    &parallel, expected,
                    "{sql} ({threads} threads, {morsel_rows} morsel): parallel error"
                );
            }
        }
    }
}

/// Tripped limits are the same typed error from both engines: row budget,
/// group budget, an already-expired deadline, and a pre-cancelled token.
#[test]
fn tripped_limits_are_identical_typed_errors() {
    let mut catalog = Catalog::new();
    catalog.register("t", big_relation());
    let cancelled = CancelToken::new();
    cancelled.cancel();
    let cases: [(&str, Limits, Option<CancelToken>, ExecError); 5] = [
        (
            "SELECT COUNT(*) AS n FROM t",
            Limits {
                max_rows: Some(100),
                ..Limits::default()
            },
            None,
            ExecError::Governed(Trip::RowBudget { limit: 100 }),
        ),
        // The join's row meter also counts joined pairs, so a key-skew
        // blowup trips even when max_rows exceeds both input sizes.
        (
            "SELECT COUNT(*) AS n FROM t x, t y WHERE x.b = y.c",
            Limits {
                max_rows: Some(2_000),
                ..Limits::default()
            },
            None,
            ExecError::Governed(Trip::RowBudget { limit: 2_000 }),
        ),
        (
            "SELECT a, b, COUNT(*) AS n FROM t GROUP BY a, b",
            Limits {
                max_groups: Some(3),
                ..Limits::default()
            },
            None,
            ExecError::Governed(Trip::GroupBudget { limit: 3 }),
        ),
        (
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a",
            Limits {
                deadline: Some(Duration::ZERO),
                ..Limits::default()
            },
            None,
            ExecError::Governed(Trip::Deadline),
        ),
        (
            "SELECT COUNT(*) AS n FROM t",
            Limits::default(),
            Some(cancelled),
            ExecError::Governed(Trip::Cancelled),
        ),
    ];
    for (sql, limits, cancel, expected) in &cases {
        let query = themis_sql::parse(sql).expect(sql);
        for (threads, morsel_rows) in CONFIGS {
            let opts = EngineOptions {
                threads,
                morsel_rows,
                limits: limits.clone(),
                cancel: cancel.clone(),
                ..EngineOptions::default()
            };
            let serial =
                execute_guarded(&catalog, &query, &opts).expect_err("serial must trip");
            let parallel = themis_query::execute_parallel(&catalog, &query, &opts)
                .expect_err("parallel must trip");
            assert_eq!(
                &serial, expected,
                "{sql} ({threads} threads, {morsel_rows} morsel): serial error"
            );
            assert_eq!(
                &parallel, expected,
                "{sql} ({threads} threads, {morsel_rows} morsel): parallel error"
            );
        }
    }
}

/// Zero-row inputs reach no morsel boundary: no fault fires, no budget
/// charges, and the guarded result is bit-identical to the unguarded one on
/// both engines.
#[test]
fn zero_row_inputs_fire_no_faults_on_either_engine() {
    let mut catalog = Catalog::new();
    catalog.register("t", Relation::new(test_schema()));
    let faults = [
        FaultPlan::PanicAtMorsel { morsel: 0 },
        FaultPlan::BudgetExhaust,
        FaultPlan::SlowMorsel {
            morsel: 0,
            delay: Duration::from_secs(60),
        },
    ];
    for sql in GOVERNED_QUERIES {
        let query = themis_sql::parse(sql).expect(sql);
        let oracle = themis_query::execute(&catalog, &query).expect(sql);
        for fault in &faults {
            for (threads, morsel_rows) in CONFIGS {
                let opts = governed_opts(
                    threads,
                    morsel_rows,
                    Limits {
                        max_rows: Some(1),
                        max_groups: Some(1),
                        ..Limits::default()
                    },
                    fault.clone(),
                );
                let serial = execute_guarded(&catalog, &query, &opts).expect(sql);
                let parallel = themis_query::execute_parallel(&catalog, &query, &opts).expect(sql);
                assert_eq!(serial, oracle, "{sql}: serial guarded differs on empty input");
                assert_eq!(parallel, oracle, "{sql}: parallel guarded differs on empty input");
            }
        }
    }
}

proptest! {
    /// Differential acceptance: with never-tripping limits (plus an armed
    /// but never-cancelled token) the guard's checks all execute, yet both
    /// engines stay **bit-identical** to their unguarded selves on random
    /// relations and queries.
    #[test]
    fn guarded_execution_with_headroom_is_bit_identical(
        rows in rows_strategy(),
        sql in query_strategy(),
    ) {
        let mut catalog = Catalog::new();
        catalog.register("t", random_relation(&rows));
        let query = themis_sql::parse(&sql).expect(&sql);
        let generous = Limits {
            deadline: Some(Duration::from_secs(3600)),
            max_rows: Some(u64::MAX / 2),
            max_groups: Some(usize::MAX / 2),
        };
        let guarded = EngineOptions {
            threads: 4,
            morsel_rows: 7,
            limits: generous,
            cancel: Some(CancelToken::new()),
            ..EngineOptions::default()
        };
        let plain = EngineOptions { threads: 4, morsel_rows: 7, ..EngineOptions::default() };
        let serial = themis_query::execute(&catalog, &query).expect(&sql);
        let serial_guarded = execute_guarded(&catalog, &query, &guarded).expect(&sql);
        prop_assert_eq!(&serial, &serial_guarded, "serial guarded diverged: {}", &sql);
        let parallel = themis_query::execute_parallel(&catalog, &query, &plain).expect(&sql);
        let parallel_guarded =
            themis_query::execute_parallel(&catalog, &query, &guarded).expect(&sql);
        prop_assert_eq!(&parallel, &parallel_guarded, "parallel guarded diverged: {}", &sql);
    }
}

// ---------------------------------------------------------------------------
// Worker loss on the wire: fault isolation across server connections.
// ---------------------------------------------------------------------------

/// An injected worker panic inside one connection's query surfaces as that
/// client's typed `internal` error while concurrent connections on the same
/// server complete normally — worker loss is contained to the query that
/// hit it, and the faulted connection itself survives to answer again once
/// its fault plan is cleared.
#[test]
fn injected_worker_panic_is_isolated_to_its_connection() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use themis_core::ThemisSession;
    use themis_serve::{Client, ServerConfig, SetRequest, ThemisServer};

    let pop = big_relation();
    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(&pop, &[AttrId(0)]),
        AggregateResult::compute(&pop, &[AttrId(1), AttrId(2)]),
    ]);
    let n = pop.len() as f64;
    let sample_rows: Vec<usize> = (0..pop.len()).step_by(5).collect();
    let sample = pop.select_rows(&sample_rows);
    let world = Arc::new(ThemisSession::new(Themis::build(
        sample,
        aggregates,
        n,
        ThemisConfig::default(),
    )));
    let config = ServerConfig {
        workers: 3,
        max_concurrent_queries: 3,
        threads: 2,
        morsel_rows: 7,
        allow_fault_injection: true,
        ..ServerConfig::default()
    };
    let engine = EngineOptions {
        threads: 2,
        morsel_rows: 7,
        ..EngineOptions::default()
    };
    let sql = "SELECT COUNT(*) AS n FROM t";
    let oracle = world.sql_with(sql, &engine).expect("oracle");

    let server = ThemisServer::bind("127.0.0.1:0", Arc::clone(&world), config).expect("bind");
    let handle = server.handle();
    let addr = server.local_addr();
    let results = rayon::Pool::new(2)
        .try_par_indexed(2, |task| {
            if task == 0 {
                server.serve().map_err(|e| format!("serve failed: {e}"))
            } else {
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    rayon::Pool::new(3)
                        .try_par_indexed(3, |i| {
                            let mut client = Client::connect(addr).expect("connect");
                            if i == 0 {
                                // The saboteur: arm a worker panic, watch it
                                // come back as a typed error, clear it, and
                                // keep using the same connection.
                                client
                                    .set(&SetRequest {
                                        fault: Some(FaultPlan::PanicAtMorsel { morsel: 0 }),
                                        ..SetRequest::default()
                                    })
                                    .expect("transport")
                                    .expect("set");
                                let err = client
                                    .query(sql)
                                    .expect("transport")
                                    .expect_err("armed fault must trip");
                                assert_eq!(err.kind, "internal", "{err}");
                                assert!(
                                    err.message.contains("injected worker panic at morsel 0"),
                                    "{err}"
                                );
                                client
                                    .set(&SetRequest {
                                        fault: Some(FaultPlan::None),
                                        ..SetRequest::default()
                                    })
                                    .expect("transport")
                                    .expect("set");
                            }
                            // Every connection — including the recovered
                            // saboteur — gets the oracle's exact answer.
                            for _ in 0..3 {
                                let wire = client
                                    .query(sql)
                                    .expect("transport")
                                    .unwrap_or_else(|e| panic!("client {i}: {e}"));
                                assert_eq!(wire.result, oracle.result, "client {i}");
                                assert_eq!(wire.route, oracle.route, "client {i}");
                            }
                        })
                        .expect("client pool");
                }));
                handle.shutdown();
                caught.map_err(|payload| {
                    payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "driver panicked".to_string())
                })
            }
        })
        .expect("orchestration pool");
    for r in results {
        if let Err(message) = r {
            panic!("{message}");
        }
    }
}

#[test]
fn noisy_aggregate_totals_disagreeing_with_n_still_work() {
    // Aggregate total (14) disagrees with the declared population size
    // (10): Themis treats both as approximate.
    let set = AggregateSet::from_results(vec![AggregateResult::from_groups(
        vec![AttrId(0)],
        vec![(vec![0], 8.0), (vec![1], 6.0)],
    )]);
    let t = Themis::build(example_sample(), set, 10.0, ThemisConfig::default());
    assert_all_finite(&t);
    // BN marginal is normalized even though counts sum to 14 > n.
    let bn = t.bayesian_network().unwrap();
    assert!(bn.is_normalized(1e-6));
}
