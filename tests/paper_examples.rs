//! The paper's worked examples, verified end-to-end (Examples 3.1, 4.1,
//! 4.2) plus the Table 1 behaviour of §2.

use themis_aggregates::{AggregateResult, AggregateSet, IncidenceMatrix};
use themis_core::{ReweightMethod, Route, RouteKind, Themis, ThemisConfig, ThemisSession};
use themis_data::paper_example::{example_population, example_sample};
use themis_data::AttrId;
use themis_reweight::{ipf_weights, IpfOptions};

fn gamma() -> AggregateSet {
    let p = example_population();
    AggregateSet::from_results(vec![
        AggregateResult::compute(&p, &[AttrId(0)]),
        AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
    ])
}

/// Example 3.1: the aggregate values.
#[test]
fn example_3_1_aggregate_values() {
    let g = gamma();
    assert_eq!(g.get(0).groups().len(), 2);
    assert_eq!(g.get(1).groups().len(), 7);
    assert_eq!(g.get(0).count_for(&[0]), Some(5.0));
    assert_eq!(g.get(1).count_for(&[1, 2]), Some(3.0)); // NC,NY = 3
    assert_eq!(g.total_groups(), 9);
}

/// Example 4.1: the y vector is the row-wise concatenation of the counts
/// (plus the n_S intercept row added internally by LinReg).
#[test]
fn example_4_1_incidence_shape() {
    let s = example_sample();
    let inc = IncidenceMatrix::build(&s, &gamma());
    let y: Vec<f64> = inc.rows().iter().map(|r| r.target).collect();
    assert_eq!(y, vec![5.0, 5.0, 2.0, 1.0, 1.0, 3.0, 1.0, 1.0, 1.0]);
}

/// Example 4.2: IPF weights after one sweep are [1, 1, 3, 1] and the
/// process does not converge (FL-bound flights are missing).
#[test]
fn example_4_2_ipf_trace() {
    let s = example_sample();
    let one = IpfOptions {
        max_iterations: 1,
        tolerance: 1e-12,
    };
    let (w, _) = ipf_weights(&s, &gamma(), &one);
    for (got, want) in w.iter().zip([1.0, 1.0, 3.0, 1.0]) {
        assert!((got - want).abs() < 1e-9, "{w:?}");
    }
    let (_, rep) = ipf_weights(&s, &gamma(), &IpfOptions::default());
    assert!(!rep.converged);
}

/// §2 / Table 1 behaviour: Themis answers about tuples not in the sample
/// (the ME row of Table 1) while the reweighted sample answers 0.
#[test]
fn table_1_open_world_answer() {
    let themis = Themis::build(example_sample(), gamma(), 10.0, ThemisConfig::default());
    let attrs = [AttrId(1), AttrId(2)];
    // FL → NY exists in P (count 1) but not in S.
    assert_eq!(themis.point_query_sample(&attrs, &[0, 2]), 0.0);
    let open_world = themis.point_query(&attrs, &[0, 2]);
    assert!(open_world > 0.25 && open_world < 2.5, "estimate {open_world}");
}

/// §4.3 routing on the running example, through the session API:
/// `explain`'s promised route agrees with the route the executed query
/// actually takes, for all three routes.
#[test]
fn section_4_3_explain_agrees_with_executed_routes() {
    let session = ThemisSession::new(Themis::build(
        example_sample(),
        gamma(),
        10.0,
        ThemisConfig {
            bn_sample_size: Some(4_000),
            ..ThemisConfig::default()
        },
    ));

    // In-sample point query (NC → NY is in the sample) → Sample.
    let sql = "SELECT COUNT(*) FROM flights WHERE o_st = 'NC' AND d_st = 'NY'";
    assert_eq!(session.explain(sql).unwrap().route, RouteKind::Sample);
    assert_eq!(session.sql(sql).unwrap().route, Route::Sample);

    // Missing-tuple point query (FL → NY is only in the population) →
    // BayesNet, with a positive open-world estimate.
    let sql = "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NY'";
    assert_eq!(session.explain(sql).unwrap().route, RouteKind::BayesNet);
    let answer = session.sql(sql).unwrap();
    assert_eq!(answer.route.kind(), RouteKind::BayesNet);
    assert!(answer.scalar().unwrap() > 0.0);

    // Open-world GROUP BY → Hybrid, and the BN contributes groups the
    // sample misses.
    let sql = "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st";
    assert_eq!(session.explain(sql).unwrap().route, RouteKind::Hybrid);
    let answer = session.sql(sql).unwrap();
    let Route::Hybrid {
        sample_groups,
        bn_groups_added,
    } = answer.route
    else {
        panic!("expected hybrid route, got {:?}", answer.route);
    };
    assert!(sample_groups > 0);
    assert!(bn_groups_added > 0, "open-world groups must be added");
}

/// §2: uniform reweighting (AQP) scales by |P|/|S| = 2.5 here, i.e. weight
/// 10 in the paper's 7M/700k example.
#[test]
fn section_2_uniform_weights() {
    let themis = Themis::build(
        example_sample(),
        gamma(),
        10.0,
        ThemisConfig {
            reweighting: ReweightMethod::Uniform,
            bn_mode: None,
            ..ThemisConfig::default()
        },
    );
    assert!(themis
        .reweighted_sample()
        .weights()
        .iter()
        .all(|&w| (w - 2.5).abs() < 1e-12));
}
