//! Differential testing of the session API across engine configurations:
//! `ThemisSession` with `EngineOptions { threads: 1 }` and `{ threads: 4 }`
//! must produce **bit-identical** `Answer`s — same `Route`, same rows, same
//! row order — on the random-query generator shared with
//! `exec_differential.rs`. A second suite holds the observability layer to
//! the same bar: `analyze()` answers equal untraced `sql()` answers, and
//! the collected trace *structure* is identical at widths 1, 2, and 8.
//!
//! Bit-identity (not epsilon agreement) holds because both sessions drive
//! the morsel engine with the same `morsel_rows`: the morsel decomposition,
//! and therefore every floating-point merge, is the same regardless of how
//! many workers execute it. Routing is engine-independent by construction.
//!
//! A third suite holds the live-data layer to the same bar: any
//! interleaving of random queries and random ingest batches, on
//! cache-enabled sessions at widths 1, 2, and 8, must answer bit-identically
//! to a cold session built from scratch on the final data — the answer
//! cache and the incremental reweighting/replicate-carry-over pipeline are
//! not allowed to be observable in results.

use proptest::prelude::*;
use std::sync::OnceLock;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{Themis, ThemisConfig, ThemisSession};
use themis_data::{AttrId, Relation};
use themis_query::EngineOptions;
use themis_tests::querygen::{query_strategy, test_schema, SIZES};

/// A deterministic "population" over the generator's schema, skewed enough
/// that grouped queries see many distinct groups.
fn population() -> Relation {
    let mut rel = Relation::new(test_schema());
    for i in 0..2_000usize {
        rel.push_row(&[
            (i * 7 + i / 13) as u32 % SIZES[0],
            (i * 5 + 1) as u32 % SIZES[1],
            (i * 11 + i / 7) as u32 % SIZES[2],
        ]);
    }
    rel
}

/// A biased sample: only rows with small `a` values, so open-world groups
/// exist and hybrid queries genuinely add BN groups.
fn biased_sample(pop: &Relation) -> Relation {
    let rows: Vec<usize> = (0..pop.len())
        .filter(|&r| pop.value(r, AttrId(0)) < 3)
        .take(300)
        .collect();
    pop.select_rows(&rows)
}

/// The one model every session in this suite shares.
fn model() -> &'static Themis {
    static MODEL: OnceLock<Themis> = OnceLock::new();
    MODEL.get_or_init(|| {
        let pop = population();
        let aggregates = AggregateSet::from_results(vec![
            AggregateResult::compute(&pop, &[AttrId(0)]),
            AggregateResult::compute(&pop, &[AttrId(1), AttrId(2)]),
        ]);
        let n = pop.len() as f64;
        let sample = biased_sample(&pop);
        let config = ThemisConfig {
            bn_sample_size: Some(500),
            ..ThemisConfig::default()
        };
        Themis::build(sample, aggregates, n, config)
    })
}

/// Engine options at a given width: small morsels so multi-morsel merging
/// is actually exercised at every thread count.
fn engine(threads: usize) -> EngineOptions {
    EngineOptions {
        threads,
        morsel_rows: 7,
        ..EngineOptions::default()
    }
}

/// One model, two sessions differing only in thread count.
fn sessions() -> &'static (ThemisSession, ThemisSession) {
    static SESSIONS: OnceLock<(ThemisSession, ThemisSession)> = OnceLock::new();
    SESSIONS.get_or_init(|| {
        (
            ThemisSession::with_engine(model().clone(), engine(1)),
            ThemisSession::with_engine(model().clone(), engine(4)),
        )
    })
}

/// Three more sessions over the same model for the trace-determinism
/// suite: widths 1, 2, and 8. Kept separate from [`sessions`] so each
/// suite's replicate caches advance in lockstep with its own query stream.
fn traced_sessions() -> &'static [ThemisSession; 3] {
    static SESSIONS: OnceLock<[ThemisSession; 3]> = OnceLock::new();
    SESSIONS.get_or_init(|| {
        [1, 2, 8].map(|threads| ThemisSession::with_engine(model().clone(), engine(threads)))
    })
}

proptest! {
    /// Satellite acceptance: serial-width and 4-thread sessions agree
    /// bit-for-bit on route and rows for random queries.
    #[test]
    fn answers_are_bit_identical_across_thread_counts(sql in query_strategy()) {
        let (one, four) = sessions();
        match (one.sql(&sql), four.sql(&sql)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.route, &b.route, "route diverged: {}", sql);
                prop_assert_eq!(&a.result, &b.result, "rows diverged: {}", sql);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "errors diverged: {}", sql),
            (a, b) => panic!("{sql}: one succeeded, one failed: {a:?} vs {b:?}"),
        }
        // explain is engine-independent too, and agrees between sessions.
        prop_assert_eq!(one.explain(&sql).ok(), four.explain(&sql).ok());
    }

    /// Satellite acceptance for the observability layer: tracing observes,
    /// never steers. For random queries, `analyze()` answers are
    /// bit-identical to untraced `sql()` answers, and the trace *structure*
    /// — span names, nesting, counters, notes; not wall times — is
    /// identical at widths 1, 2, and 8.
    #[test]
    fn trace_structure_is_deterministic_across_thread_counts(sql in query_strategy()) {
        let [one, two, eight] = traced_sessions();
        // Analyze on every session *before* the untraced baseline runs:
        // `sql()` would prime session one's replicate cache and skew the
        // `replicate_cache` note against the still-cold other widths.
        let analyzed: Vec<_> = [one, two, eight].iter().map(|s| s.analyze(&sql)).collect();
        let baseline = one.sql(&sql);
        let mut structures: Vec<String> = Vec::new();
        for outcome in analyzed {
            match (outcome, &baseline) {
                (Ok(analyzed), Ok(answer)) => {
                    prop_assert_eq!(&analyzed.answer.route, &answer.route, "route diverged under tracing: {}", &sql);
                    prop_assert_eq!(&analyzed.answer.result, &answer.result, "rows diverged under tracing: {}", &sql);
                    prop_assert_eq!(analyzed.actual_groups, answer.result.rows.len() as u64);
                    prop_assert!(!analyzed.trace.is_empty(), "analyze produced no spans: {}", &sql);
                    prop_assert!(analyzed.trace.find("query").is_some(), "no root span: {}", &sql);
                    structures.push(analyzed.trace.structure());
                }
                (Err(a), Err(b)) => prop_assert_eq!(&a, b, "errors diverged under tracing: {}", &sql),
                (a, b) => panic!("{sql}: traced and untraced disagree on success: {a:?} vs {b:?}"),
            }
        }
        for pair in structures.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1], "trace structure diverged across widths: {}", &sql);
        }
    }
}

/// A random ingest batch: up to two rows of in-domain labels (empty
/// batches included on purpose — they must move nothing).
fn batch_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(
        (0u32..SIZES[0], 0u32..SIZES[1], 0u32..SIZES[2])
            .prop_map(|(a, b, c)| vec![a.to_string(), b.to_string(), c.to_string()]),
        0..3,
    )
}

/// An interleaving: at each step one random query (asked twice, so the
/// second ask exercises the cache) followed by one random ingest batch.
fn interleaving_strategy() -> impl Strategy<Value = Vec<(String, Vec<Vec<String>>)>> {
    prop::collection::vec((query_strategy(), batch_strategy()), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tentpole acceptance: queries interleaved with ingest on
    /// cache-enabled sessions at widths 1, 2, and 8 stay bit-identical to
    /// each other at every step, cache hits are bit-identical to their
    /// misses, and after the full interleaving every query answers
    /// bit-identically to a cold session built on the final data.
    #[test]
    fn interleaved_ingest_matches_a_cold_session(steps in interleaving_strategy()) {
        let sessions: Vec<ThemisSession> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                ThemisSession::with_engine(model().clone(), engine(threads))
                    .with_answer_cache(16)
            })
            .collect();
        for (sql, batch) in &steps {
            let mut answers = Vec::new();
            for s in &sessions {
                let miss = s.sql(sql);
                let hit = s.sql(sql);
                match (&miss, &hit) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.route, &b.route, "hit route diverged: {}", sql);
                        prop_assert_eq!(&a.result, &b.result, "hit rows diverged: {}", sql);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b, "errors diverged: {}", sql),
                    (a, b) => panic!("{sql}: miss and hit disagree on success: {a:?} vs {b:?}"),
                }
                answers.push(miss);
            }
            for pair in answers.windows(2) {
                match (&pair[0], &pair[1]) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.route, &b.route, "route diverged across widths: {}", sql);
                        prop_assert_eq!(&a.result, &b.result, "rows diverged across widths: {}", sql);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b, "errors diverged across widths: {}", sql),
                    (a, b) => panic!("{sql}: widths disagree on success: {a:?} vs {b:?}"),
                }
            }
            for s in &sessions {
                s.ingest("t", batch).expect("in-domain batch must apply");
            }
        }
        // A cold session built from scratch on the final data: the base
        // biased sample plus every ingested row, in arrival order.
        let pop = population();
        let aggregates = AggregateSet::from_results(vec![
            AggregateResult::compute(&pop, &[AttrId(0)]),
            AggregateResult::compute(&pop, &[AttrId(1), AttrId(2)]),
        ]);
        let mut grown = biased_sample(&pop);
        for (_, batch) in &steps {
            for row in batch {
                let labels: Vec<&str> = row.iter().map(String::as_str).collect();
                grown.push_row_labels(&labels);
            }
        }
        let config = ThemisConfig {
            bn_sample_size: Some(500),
            ..ThemisConfig::default()
        };
        let cold = ThemisSession::with_engine(
            Themis::build(grown, aggregates, pop.len() as f64, config),
            engine(1),
        );
        for (sql, _) in &steps {
            let fresh = cold.sql(sql);
            for s in &sessions {
                match (s.sql(sql), &fresh) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.route, &b.route, "route diverged from cold session: {}", sql);
                        prop_assert_eq!(&a.result, &b.result, "rows diverged from cold session: {}", sql);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(&a, b, "errors diverged from cold session: {}", sql),
                    (a, b) => panic!("{sql}: live and cold disagree on success: {a:?} vs {b:?}"),
                }
            }
        }
    }
}

/// Satellite acceptance (asserted via the obs counters): an ingest that
/// moves no BN parameter re-simulates zero replicates — the full pipeline
/// runs, concludes nothing moved, and carries the old replicates over.
#[test]
fn ingest_moving_nothing_resimulates_zero_replicates() {
    let s = ThemisSession::with_engine(model().clone(), engine(2)).with_answer_cache(8);
    s.sql("SELECT a, COUNT(*) AS n FROM t GROUP BY a").unwrap();
    let report = s.ingest("t", &[]).unwrap();
    assert!(!report.bn_moved, "empty batch must move nothing");
    assert_eq!(report.replicates_kept, 10);
    s.sql("SELECT b, COUNT(*) AS n FROM t GROUP BY b").unwrap();
    let snap = s.live_snapshot();
    assert_eq!(snap.replicates_resimulated, 0);
    assert_eq!(snap.replicates_kept, 10);
    // And a batch that does move the BN re-simulates exactly once.
    s.ingest("t", &[vec!["4".to_string(), "0".to_string(), "2".to_string()]])
        .unwrap();
    s.sql("SELECT a, COUNT(*) AS n FROM t GROUP BY a").unwrap();
    assert_eq!(s.live_snapshot().replicates_resimulated, 10);
}

/// The fixed shapes the random generator cannot produce (self-joins) are
/// also bit-identical across thread counts.
#[test]
fn self_join_answers_are_bit_identical_across_thread_counts() {
    let (one, four) = sessions();
    for sql in [
        "SELECT COUNT(*) AS n FROM t x, t y WHERE x.b = y.c",
        "SELECT x.a, COUNT(*) AS n FROM t x, t y WHERE x.b = y.c GROUP BY x.a",
        "SELECT x.a, y.b, COUNT(*) AS n FROM t x, t y \
         WHERE x.c = y.c GROUP BY x.a, y.b ORDER BY n DESC LIMIT 4",
    ] {
        let a = one.sql(sql).expect(sql);
        let b = four.sql(sql).expect(sql);
        assert_eq!(a.route, b.route, "{sql}");
        assert_eq!(a.result, b.result, "{sql}");
    }
}
