//! Integration test crate: the actual tests live in the sibling `*.rs` files
//! registered as `[[test]]` targets in `Cargo.toml`. This library holds the
//! pieces those suites share — notably the random relation/query generator
//! used by both the engine differential suite (`exec_differential.rs`) and
//! the session differential suite (`session_differential.rs`).

#![forbid(unsafe_code)]

pub mod querygen;
