//! Integration test crate: the actual tests live in the sibling `*.rs` files
//! registered as `[[test]]` targets in `Cargo.toml`.
