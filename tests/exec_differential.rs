//! Differential testing of the morsel-driven parallel engine against the
//! serial reference engine, plus cross-thread-count determinism.
//!
//! Policy: the serial engine (`themis_query::execute`) is the oracle. Every
//! property generates a random catalog and a random query from the supported
//! SQL subset (filters, IN, GROUP BY, ORDER BY/LIMIT, self-joins), runs both
//! engines, and requires identical shape/labels/row order and aggregate
//! agreement to 1e-9 (parallel merges associate float additions at morsel
//! boundaries, so bit-equality is only guaranteed at matching fold orders).
//! Run with `PROPTEST_CASES=500` (or more) for release gating.

use proptest::prelude::*;
use themis_data::Relation;
use themis_query::{Catalog, EngineOptions, QueryResult, Value};
use themis_tests::querygen::{
    adversarial_query_strategy, adversarial_rows_strategy, query_strategy, random_relation,
    rows_strategy, test_schema, SIZES,
};

/// Morsels far smaller than the row count, threads ≠ morsel count, so merge
/// order and work stealing are genuinely exercised.
fn test_opts() -> EngineOptions {
    EngineOptions {
        threads: 4,
        morsel_rows: 7,
        ..EngineOptions::default()
    }
}

/// Assert both engines produced the same result: identical columns, row
/// order, and group labels; aggregates within 1e-9.
fn assert_agree(sql: &str, serial: &QueryResult, parallel: &QueryResult) {
    assert_eq!(serial.columns, parallel.columns, "{sql}");
    assert_eq!(serial.group_arity, parallel.group_arity, "{sql}");
    assert_eq!(serial.rows.len(), parallel.rows.len(), "{sql}");
    for (i, (sr, pr)) in serial.rows.iter().zip(&parallel.rows).enumerate() {
        assert_eq!(sr.len(), pr.len(), "{sql} row {i}");
        for (sv, pv) in sr.iter().zip(pr) {
            match (sv, pv) {
                (Value::Str(s), Value::Str(p)) => assert_eq!(s, p, "{sql} row {i}"),
                (Value::Num(s), Value::Num(p)) => {
                    assert!((s - p).abs() <= 1e-9, "{sql} row {i}: {s} vs {p}")
                }
                _ => panic!("{sql} row {i}: cell type mismatch {sv:?} vs {pv:?}"),
            }
        }
    }
}

fn run_both(catalog: &Catalog, sql: &str, opts: &EngineOptions) {
    let query = themis_sql::parse(sql).expect(sql);
    let serial = themis_query::execute(catalog, &query).expect(sql);
    let parallel = themis_query::execute_parallel(catalog, &query, opts).expect(sql);
    assert_agree(sql, &serial, &parallel);
}

proptest! {
    #[test]
    fn random_scans_agree(rows in rows_strategy(), sql in query_strategy()) {
        let mut c = Catalog::new();
        c.register("t", random_relation(&rows));
        run_both(&c, &sql, &test_opts());
    }

    #[test]
    fn random_self_joins_agree(rows in rows_strategy(), shape in 0u32..4, k in 0u32..4) {
        let mut c = Catalog::new();
        c.register("t", random_relation(&rows));
        let sql = match shape {
            0 => "SELECT COUNT(*) AS n FROM t x, t y WHERE x.b = y.c".to_string(),
            1 => "SELECT x.a, COUNT(*) AS n FROM t x, t y WHERE x.b = y.c GROUP BY x.a"
                .to_string(),
            2 => format!(
                "SELECT x.a, COUNT(*) AS n, SUM(y.c) FROM t x, t y \
                 WHERE x.b = y.c AND x.a <= {} GROUP BY x.a ORDER BY x.a",
                k % SIZES[0]
            ),
            _ => "SELECT x.a, y.b, COUNT(*) AS n FROM t x, t y \
                  WHERE x.c = y.c GROUP BY x.a, y.b ORDER BY n DESC LIMIT 4"
                .to_string(),
        };
        run_both(&c, &sql, &test_opts());
    }

    /// Adversarial shapes — self-join blowups, max-cardinality GROUP BY,
    /// zero-row inputs, zero-selectivity filters — agree like any other
    /// query. These are the inputs governance budgets exist for, so the
    /// unguarded engines must at least concur on them.
    #[test]
    fn adversarial_shapes_agree(
        rows in adversarial_rows_strategy(),
        sql in adversarial_query_strategy(),
        morsel in 1usize..16,
    ) {
        let mut c = Catalog::new();
        c.register("t", random_relation(&rows));
        let opts = EngineOptions { threads: 4, morsel_rows: morsel, ..EngineOptions::default() };
        run_both(&c, &sql, &opts);
    }

    #[test]
    fn agreement_holds_across_morsel_sizes(rows in rows_strategy(), morsel in 1usize..32) {
        let mut c = Catalog::new();
        c.register("t", random_relation(&rows));
        let opts = EngineOptions { threads: 3, morsel_rows: morsel, ..EngineOptions::default() };
        run_both(&c, "SELECT a, COUNT(*) AS n, AVG(b), MIN(c) FROM t GROUP BY a", &opts);
    }
}

/// A relation big enough to span many `DEFAULT_MORSEL_SIZE` morsels, with
/// dyadic (exactly representable) weights so float sums are exact and
/// results must be *identical* — not just close — across engines and thread
/// counts.
fn dyadic_relation(rows: usize) -> Relation {
    let mut rel = Relation::new(test_schema());
    for i in 0..rows {
        let vals = [
            (i * 7 + 3) as u32 % SIZES[0],
            (i * 5 + 1) as u32 % SIZES[1],
            (i * 11) as u32 % SIZES[2],
        ];
        // Weights in {0.0, 0.5, ..., 3.5}: sums associate exactly.
        rel.push_row_weighted(&vals, (i % 8) as f64 * 0.5);
    }
    rel
}

/// Identical `QueryResult` (row order included) for explicit
/// `EngineOptions` thread counts 1, 2, and 8 via the public `run_sql`
/// entry, including a zero-row table and an all-rows-filtered query. No
/// environment variables involved: the engine is configured per call.
#[test]
fn run_sql_is_deterministic_across_thread_counts() {
    let mut catalog = Catalog::new();
    catalog.register("t", dyadic_relation(5000));
    catalog.register("empty", Relation::new(test_schema()));
    let queries = [
        // Multi-morsel grouped scan with secondary ordering.
        "SELECT a, b, COUNT(*) AS n, AVG(c), MIN(b), MAX(a) FROM t \
         GROUP BY a, b ORDER BY n DESC LIMIT 10",
        // Scalar aggregate over everything.
        "SELECT COUNT(*), SUM(c) FROM t",
        // Zero-row table: scalar must yield the single zero row...
        "SELECT COUNT(*) AS n FROM empty",
        // ...and a grouped query an empty result.
        "SELECT a, COUNT(*) FROM empty GROUP BY a",
        // All rows filtered out.
        "SELECT COUNT(*) AS n FROM t WHERE a <= -1",
        "SELECT a, COUNT(*) FROM t WHERE a <= -1 GROUP BY a",
        // Self-join spanning morsels.
        "SELECT x.a, COUNT(*) AS n FROM t x, t y WHERE x.b = y.c AND x.a <= 2 \
         GROUP BY x.a ORDER BY x.a",
    ];
    for sql in queries {
        let mut results: Vec<(usize, QueryResult)> = Vec::new();
        for threads in [1usize, 2, 8] {
            let opts = EngineOptions::with_threads(threads);
            results.push((threads, themis_query::run_sql(&catalog, sql, &opts).expect(sql)));
        }
        let (_, base) = &results[0];
        for (threads, r) in &results[1..] {
            assert_eq!(
                r, base,
                "{sql}: threads = {threads} differs from threads = 1"
            );
        }
    }
}

/// The zero-row and all-filtered edge cases also agree under the explicit
/// parallel API with tiny morsels (no env involvement).
#[test]
fn edge_cases_agree_with_tiny_morsels() {
    let mut c = Catalog::new();
    c.register("t", dyadic_relation(40));
    c.register("empty", Relation::new(test_schema()));
    let opts = EngineOptions {
        threads: 8,
        morsel_rows: 1,
        ..EngineOptions::default()
    };
    for sql in [
        "SELECT COUNT(*) AS n FROM empty",
        "SELECT a, COUNT(*) FROM empty GROUP BY a",
        "SELECT COUNT(*) AS n, MIN(b), MAX(c) FROM t WHERE a <= -1",
        "SELECT a, AVG(b) FROM t GROUP BY a ORDER BY a DESC",
    ] {
        run_both(&c, sql, &opts);
    }
}
