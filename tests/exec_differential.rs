//! Differential testing of the morsel-driven parallel engine against the
//! serial reference engine, plus cross-thread-count determinism.
//!
//! Policy: the serial engine (`themis_query::execute`) is the oracle. Every
//! property generates a random catalog and a random query from the supported
//! SQL subset (filters, IN, GROUP BY, ORDER BY/LIMIT, self-joins), runs both
//! engines, and requires identical shape/labels/row order and aggregate
//! agreement to 1e-9 (parallel merges associate float additions at morsel
//! boundaries, so bit-equality is only guaranteed at matching fold orders).
//! Run with `PROPTEST_CASES=500` (or more) for release gating.

use proptest::prelude::*;
use themis_data::{Attribute, Domain, Relation, Schema};
use themis_query::{Catalog, ParallelOptions, QueryResult, Value};

/// Domain sizes of the three test attributes `a`, `b`, `c`.
const SIZES: [u32; 3] = [5, 4, 3];

fn random_relation(rows: &[(u32, u32, u32, f64)]) -> Relation {
    let schema = Schema::new(vec![
        Attribute::new("a", Domain::indexed("a", SIZES[0] as usize)),
        Attribute::new("b", Domain::indexed("b", SIZES[1] as usize)),
        Attribute::new("c", Domain::indexed("c", SIZES[2] as usize)),
    ]);
    let mut rel = Relation::new(schema);
    for &(a, b, c, w) in rows {
        rel.push_row_weighted(&[a, b, c], w);
    }
    rel
}

/// Rows including occasional exact-zero weights (MIN/MAX must ignore them)
/// and possibly no rows at all (scalar queries must return a zero row).
fn rows_strategy() -> impl Strategy<Value = Vec<(u32, u32, u32, f64)>> {
    prop::collection::vec(
        (0u32..SIZES[0], 0u32..SIZES[1], 0u32..SIZES[2], 0.0f64..10.0)
            .prop_map(|(a, b, c, w)| (a, b, c, if w < 1.0 { 0.0 } else { w })),
        0..80,
    )
}

/// A random single-table query over `t`, assembled from independently drawn
/// clause choices. Always contains COUNT(*) aliased `n` so every query is a
/// valid aggregate query.
fn query_strategy() -> impl Strategy<Value = String> {
    (0u32..5, 0u32..5, 1u32..16, 0u32..4, 0u32..16, 0u32..3).prop_map(
        |(filter, k, in_mask, group, agg_mask, order)| {
            let mut select = vec!["COUNT(*) AS n".to_string()];
            for (bit, agg) in ["SUM(c)", "AVG(b)", "MIN(c)", "MAX(a)"].iter().enumerate() {
                if agg_mask & (1 << bit) != 0 {
                    select.push(agg.to_string());
                }
            }
            let group_cols: &[&str] = match group {
                1 => &["a"],
                2 => &["a", "b"],
                3 => &["b"],
                _ => &[],
            };
            let mut sql = String::from("SELECT ");
            if !group_cols.is_empty() {
                sql.push_str(&group_cols.join(", "));
                sql.push_str(", ");
            }
            sql.push_str(&select.join(", "));
            sql.push_str(" FROM t");
            match filter {
                1 => sql.push_str(&format!(" WHERE a <= {}", k % SIZES[0])),
                2 => {
                    let vals: Vec<String> = (0..SIZES[1])
                        .filter(|v| in_mask & (1 << v) != 0)
                        .map(|v| format!("'{v}'"))
                        .collect();
                    if !vals.is_empty() {
                        sql.push_str(&format!(" WHERE b IN ({})", vals.join(", ")));
                    }
                }
                3 => sql.push_str(&format!(" WHERE c = '{}'", k % SIZES[2])),
                4 => sql.push_str(&format!(" WHERE a <> {}", k % SIZES[0])),
                _ => {}
            }
            if !group_cols.is_empty() {
                sql.push_str(&format!(" GROUP BY {}", group_cols.join(", ")));
            }
            match order {
                1 if !group_cols.is_empty() => {
                    sql.push_str(&format!(" ORDER BY {} LIMIT 2", group_cols[0]));
                }
                2 => sql.push_str(" ORDER BY n DESC LIMIT 3"),
                _ => {}
            }
            sql
        },
    )
}

/// Morsels far smaller than the row count, threads ≠ morsel count, so merge
/// order and work stealing are genuinely exercised.
fn test_opts() -> ParallelOptions {
    ParallelOptions {
        threads: 4,
        morsel_size: 7,
    }
}

/// Assert both engines produced the same result: identical columns, row
/// order, and group labels; aggregates within 1e-9.
fn assert_agree(sql: &str, serial: &QueryResult, parallel: &QueryResult) {
    assert_eq!(serial.columns, parallel.columns, "{sql}");
    assert_eq!(serial.group_arity, parallel.group_arity, "{sql}");
    assert_eq!(serial.rows.len(), parallel.rows.len(), "{sql}");
    for (i, (sr, pr)) in serial.rows.iter().zip(&parallel.rows).enumerate() {
        assert_eq!(sr.len(), pr.len(), "{sql} row {i}");
        for (sv, pv) in sr.iter().zip(pr) {
            match (sv, pv) {
                (Value::Str(s), Value::Str(p)) => assert_eq!(s, p, "{sql} row {i}"),
                (Value::Num(s), Value::Num(p)) => {
                    assert!((s - p).abs() <= 1e-9, "{sql} row {i}: {s} vs {p}")
                }
                _ => panic!("{sql} row {i}: cell type mismatch {sv:?} vs {pv:?}"),
            }
        }
    }
}

fn run_both(catalog: &Catalog, sql: &str, opts: &ParallelOptions) {
    let query = themis_sql::parse(sql).expect(sql);
    let serial = themis_query::execute(catalog, &query).expect(sql);
    let parallel = themis_query::execute_parallel(catalog, &query, opts).expect(sql);
    assert_agree(sql, &serial, &parallel);
}

proptest! {
    #[test]
    fn random_scans_agree(rows in rows_strategy(), sql in query_strategy()) {
        let mut c = Catalog::new();
        c.register("t", random_relation(&rows));
        run_both(&c, &sql, &test_opts());
    }

    #[test]
    fn random_self_joins_agree(rows in rows_strategy(), shape in 0u32..4, k in 0u32..4) {
        let mut c = Catalog::new();
        c.register("t", random_relation(&rows));
        let sql = match shape {
            0 => "SELECT COUNT(*) AS n FROM t x, t y WHERE x.b = y.c".to_string(),
            1 => "SELECT x.a, COUNT(*) AS n FROM t x, t y WHERE x.b = y.c GROUP BY x.a"
                .to_string(),
            2 => format!(
                "SELECT x.a, COUNT(*) AS n, SUM(y.c) FROM t x, t y \
                 WHERE x.b = y.c AND x.a <= {} GROUP BY x.a ORDER BY x.a",
                k % SIZES[0]
            ),
            _ => "SELECT x.a, y.b, COUNT(*) AS n FROM t x, t y \
                  WHERE x.c = y.c GROUP BY x.a, y.b ORDER BY n DESC LIMIT 4"
                .to_string(),
        };
        run_both(&c, &sql, &test_opts());
    }

    #[test]
    fn agreement_holds_across_morsel_sizes(rows in rows_strategy(), morsel in 1usize..32) {
        let mut c = Catalog::new();
        c.register("t", random_relation(&rows));
        let opts = ParallelOptions { threads: 3, morsel_size: morsel };
        run_both(&c, "SELECT a, COUNT(*) AS n, AVG(b), MIN(c) FROM t GROUP BY a", &opts);
    }
}

/// A relation big enough to span many `DEFAULT_MORSEL_SIZE` morsels, with
/// dyadic (exactly representable) weights so float sums are exact and
/// results must be *identical* — not just close — across engines and thread
/// counts.
fn dyadic_relation(rows: usize) -> Relation {
    let schema = Schema::new(vec![
        Attribute::new("a", Domain::indexed("a", SIZES[0] as usize)),
        Attribute::new("b", Domain::indexed("b", SIZES[1] as usize)),
        Attribute::new("c", Domain::indexed("c", SIZES[2] as usize)),
    ]);
    let mut rel = Relation::new(schema);
    for i in 0..rows {
        let vals = [
            (i * 7 + 3) as u32 % SIZES[0],
            (i * 5 + 1) as u32 % SIZES[1],
            (i * 11) as u32 % SIZES[2],
        ];
        // Weights in {0.0, 0.5, ..., 3.5}: sums associate exactly.
        rel.push_row_weighted(&vals, (i % 8) as f64 * 0.5);
    }
    rel
}

/// Satellite: identical `QueryResult` (row order included) for
/// `THEMIS_THREADS=1,2,8` via the public `run_sql` dispatcher, including a
/// zero-row table and an all-rows-filtered query. One test owns the env
/// variable; nothing else in this binary reads it.
#[test]
fn run_sql_is_deterministic_across_thread_counts() {
    let mut catalog = Catalog::new();
    catalog.register("t", dyadic_relation(5000));
    catalog.register("empty", {
        let schema = Schema::new(vec![Attribute::new("a", Domain::indexed("a", 3))]);
        Relation::new(schema)
    });
    let queries = [
        // Multi-morsel grouped scan with secondary ordering.
        "SELECT a, b, COUNT(*) AS n, AVG(c), MIN(b), MAX(a) FROM t \
         GROUP BY a, b ORDER BY n DESC LIMIT 10",
        // Scalar aggregate over everything.
        "SELECT COUNT(*), SUM(c) FROM t",
        // Zero-row table: scalar must yield the single zero row...
        "SELECT COUNT(*) AS n FROM empty",
        // ...and a grouped query an empty result.
        "SELECT a, COUNT(*) FROM empty GROUP BY a",
        // All rows filtered out.
        "SELECT COUNT(*) AS n FROM t WHERE a <= -1",
        "SELECT a, COUNT(*) FROM t WHERE a <= -1 GROUP BY a",
        // Self-join spanning morsels.
        "SELECT x.a, COUNT(*) AS n FROM t x, t y WHERE x.b = y.c AND x.a <= 2 \
         GROUP BY x.a ORDER BY x.a",
    ];
    // Restore the caller's THEMIS_THREADS afterwards — CI pins it per
    // matrix leg and later tests in this process must still see that value.
    let prev = std::env::var("THEMIS_THREADS").ok();
    for sql in queries {
        let mut results: Vec<(usize, QueryResult)> = Vec::new();
        for threads in [1usize, 2, 8] {
            std::env::set_var("THEMIS_THREADS", threads.to_string());
            results.push((threads, themis_query::run_sql(&catalog, sql).expect(sql)));
        }
        match &prev {
            Some(v) => std::env::set_var("THEMIS_THREADS", v),
            None => std::env::remove_var("THEMIS_THREADS"),
        }
        let (_, base) = &results[0];
        for (threads, r) in &results[1..] {
            assert_eq!(
                r, base,
                "{sql}: THEMIS_THREADS={threads} differs from THEMIS_THREADS=1"
            );
        }
    }
}

/// The zero-row and all-filtered edge cases also agree under the explicit
/// parallel API with tiny morsels (no env involvement).
#[test]
fn edge_cases_agree_with_tiny_morsels() {
    let mut c = Catalog::new();
    c.register("t", dyadic_relation(40));
    c.register("empty", {
        let schema = Schema::new(vec![Attribute::new("a", Domain::indexed("a", 3))]);
        Relation::new(schema)
    });
    let opts = ParallelOptions {
        threads: 8,
        morsel_size: 1,
    };
    for sql in [
        "SELECT COUNT(*) AS n FROM empty",
        "SELECT a, COUNT(*) FROM empty GROUP BY a",
        "SELECT COUNT(*) AS n, MIN(b), MAX(c) FROM t WHERE a <= -1",
        "SELECT a, AVG(b) FROM t GROUP BY a ORDER BY a DESC",
    ] {
        run_both(&c, sql, &opts);
    }
}
