//! Smoke test: the claim made by the `themis_core` crate-level doctest, as a
//! real integration test — building a model from the paper's running example
//! and point-querying a tuple that is absent from the biased sample must
//! yield a positive open-world estimate.

use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{Themis, ThemisConfig};
use themis_data::paper_example::{example_population, example_sample};
use themis_data::AttrId;

#[test]
fn build_and_point_query_paper_example_gives_positive_estimate() {
    let population = example_population();
    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(&population, &[AttrId(0)]),
        AggregateResult::compute(&population, &[AttrId(1), AttrId(2)]),
    ]);
    let themis = Themis::build(example_sample(), aggregates, 10.0, ThemisConfig::default());

    let est = themis.point_query(&[AttrId(1), AttrId(2)], &[0, 2]);
    assert!(est > 0.0, "open-world point query returned {est}, expected > 0");
    assert!(est.is_finite(), "estimate must be finite, got {est}");
}
