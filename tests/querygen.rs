//! Shared random-input generators for the differential test suites: a
//! 3-attribute weighted relation and a random query from the supported SQL
//! subset (filters, IN, GROUP BY, ORDER BY/LIMIT — self-join shapes are
//! enumerated by the callers).

use proptest::prelude::*;
use std::sync::Arc;
use themis_data::{Attribute, Domain, Relation, Schema};

/// Domain sizes of the three test attributes `a`, `b`, `c`.
pub const SIZES: [u32; 3] = [5, 4, 3];

/// The three-attribute test schema shared by every generated relation.
pub fn test_schema() -> Arc<Schema> {
    Schema::new(vec![
        Attribute::new("a", Domain::indexed("a", SIZES[0] as usize)),
        Attribute::new("b", Domain::indexed("b", SIZES[1] as usize)),
        Attribute::new("c", Domain::indexed("c", SIZES[2] as usize)),
    ])
}

/// Materialize `(a, b, c, weight)` tuples into a relation.
pub fn random_relation(rows: &[(u32, u32, u32, f64)]) -> Relation {
    let mut rel = Relation::new(test_schema());
    for &(a, b, c, w) in rows {
        rel.push_row_weighted(&[a, b, c], w);
    }
    rel
}

/// Rows including occasional exact-zero weights (MIN/MAX must ignore them)
/// and possibly no rows at all (scalar queries must return a zero row).
pub fn rows_strategy() -> impl Strategy<Value = Vec<(u32, u32, u32, f64)>> {
    prop::collection::vec(
        (0u32..SIZES[0], 0u32..SIZES[1], 0u32..SIZES[2], 0.0f64..10.0)
            .prop_map(|(a, b, c, w)| (a, b, c, if w < 1.0 { 0.0 } else { w })),
        0..80,
    )
}

/// Adversarial row sets for governance and robustness suites: the shapes
/// most likely to blow past a budget or starve a morsel.
///
/// * **empty** — zero rows: guards must fire no fault and charge nothing on
///   either engine;
/// * **blowup** — every row shares one join key, so a self-join on it
///   produces |R|² pairs from a small input (the case row budgets exist
///   for);
/// * **full-cardinality** — values cycle through the whole domain product,
///   maximizing distinct `GROUP BY a, b, c` groups per row (the case group
///   budgets exist for).
pub fn adversarial_rows_strategy() -> impl Strategy<Value = Vec<(u32, u32, u32, f64)>> {
    (0u32..3, 1usize..60, 0u32..SIZES[1]).prop_map(|(shape, n, key)| match shape {
        0 => Vec::new(),
        1 => (0..n)
            .map(|i| (i as u32 % SIZES[0], key, key % SIZES[2], 1.0 + (i % 4) as f64))
            .collect(),
        _ => (0..n)
            .map(|i| {
                let i = i as u32;
                (
                    i % SIZES[0],
                    (i / SIZES[0]) % SIZES[1],
                    (i / (SIZES[0] * SIZES[1])) % SIZES[2],
                    0.5 + (i % 3) as f64,
                )
            })
            .collect(),
    })
}

/// Adversarial query shapes to pair with [`adversarial_rows_strategy`]:
/// self-join blowups on the shared key, maximum-cardinality `GROUP BY`, and
/// a zero-selectivity filter (the all-rows-masked path).
pub fn adversarial_query_strategy() -> impl Strategy<Value = String> {
    (0u32..5).prop_map(|shape| {
        match shape {
            0 => "SELECT COUNT(*) AS n FROM t x, t y WHERE x.b = y.b",
            1 => {
                "SELECT x.a, COUNT(*) AS n FROM t x, t y WHERE x.b = y.b \
                 GROUP BY x.a ORDER BY n DESC"
            }
            2 => "SELECT a, b, c, COUNT(*) AS n, AVG(b) FROM t GROUP BY a, b, c",
            3 => "SELECT a, COUNT(*) AS n FROM t WHERE a <= -1 GROUP BY a",
            _ => "SELECT COUNT(*) AS n, MIN(c), MAX(a) FROM t WHERE a <= -1",
        }
        .to_string()
    })
}

/// A random single-table query over `t`, assembled from independently drawn
/// clause choices. Always contains COUNT(*) aliased `n` so every query is a
/// valid aggregate query.
pub fn query_strategy() -> impl Strategy<Value = String> {
    (0u32..5, 0u32..5, 1u32..16, 0u32..4, 0u32..16, 0u32..3).prop_map(
        |(filter, k, in_mask, group, agg_mask, order)| {
            let mut select = vec!["COUNT(*) AS n".to_string()];
            for (bit, agg) in ["SUM(c)", "AVG(b)", "MIN(c)", "MAX(a)"].iter().enumerate() {
                if agg_mask & (1 << bit) != 0 {
                    select.push(agg.to_string());
                }
            }
            let group_cols: &[&str] = match group {
                1 => &["a"],
                2 => &["a", "b"],
                3 => &["b"],
                _ => &[],
            };
            let mut sql = String::from("SELECT ");
            if !group_cols.is_empty() {
                sql.push_str(&group_cols.join(", "));
                sql.push_str(", ");
            }
            sql.push_str(&select.join(", "));
            sql.push_str(" FROM t");
            match filter {
                1 => sql.push_str(&format!(" WHERE a <= {}", k % SIZES[0])),
                2 => {
                    let vals: Vec<String> = (0..SIZES[1])
                        .filter(|v| in_mask & (1 << v) != 0)
                        .map(|v| format!("'{v}'"))
                        .collect();
                    if !vals.is_empty() {
                        sql.push_str(&format!(" WHERE b IN ({})", vals.join(", ")));
                    }
                }
                3 => sql.push_str(&format!(" WHERE c = '{}'", k % SIZES[2])),
                4 => sql.push_str(&format!(" WHERE a <> {}", k % SIZES[0])),
                _ => {}
            }
            if !group_cols.is_empty() {
                sql.push_str(&format!(" GROUP BY {}", group_cols.join(", ")));
            }
            match order {
                1 if !group_cols.is_empty() => {
                    sql.push_str(&format!(" ORDER BY {} LIMIT 2", group_cols[0]));
                }
                2 => sql.push_str(" ORDER BY n DESC LIMIT 3"),
                _ => {}
            }
            sql
        },
    )
}
