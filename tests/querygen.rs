//! Shared random-input generators for the differential test suites: a
//! 3-attribute weighted relation and a random query from the supported SQL
//! subset (filters, IN, GROUP BY, ORDER BY/LIMIT — self-join shapes are
//! enumerated by the callers).

use proptest::prelude::*;
use std::sync::Arc;
use themis_data::{Attribute, Domain, Relation, Schema};

/// Domain sizes of the three test attributes `a`, `b`, `c`.
pub const SIZES: [u32; 3] = [5, 4, 3];

/// The three-attribute test schema shared by every generated relation.
pub fn test_schema() -> Arc<Schema> {
    Schema::new(vec![
        Attribute::new("a", Domain::indexed("a", SIZES[0] as usize)),
        Attribute::new("b", Domain::indexed("b", SIZES[1] as usize)),
        Attribute::new("c", Domain::indexed("c", SIZES[2] as usize)),
    ])
}

/// Materialize `(a, b, c, weight)` tuples into a relation.
pub fn random_relation(rows: &[(u32, u32, u32, f64)]) -> Relation {
    let mut rel = Relation::new(test_schema());
    for &(a, b, c, w) in rows {
        rel.push_row_weighted(&[a, b, c], w);
    }
    rel
}

/// Rows including occasional exact-zero weights (MIN/MAX must ignore them)
/// and possibly no rows at all (scalar queries must return a zero row).
pub fn rows_strategy() -> impl Strategy<Value = Vec<(u32, u32, u32, f64)>> {
    prop::collection::vec(
        (0u32..SIZES[0], 0u32..SIZES[1], 0u32..SIZES[2], 0.0f64..10.0)
            .prop_map(|(a, b, c, w)| (a, b, c, if w < 1.0 { 0.0 } else { w })),
        0..80,
    )
}

/// A random single-table query over `t`, assembled from independently drawn
/// clause choices. Always contains COUNT(*) aliased `n` so every query is a
/// valid aggregate query.
pub fn query_strategy() -> impl Strategy<Value = String> {
    (0u32..5, 0u32..5, 1u32..16, 0u32..4, 0u32..16, 0u32..3).prop_map(
        |(filter, k, in_mask, group, agg_mask, order)| {
            let mut select = vec!["COUNT(*) AS n".to_string()];
            for (bit, agg) in ["SUM(c)", "AVG(b)", "MIN(c)", "MAX(a)"].iter().enumerate() {
                if agg_mask & (1 << bit) != 0 {
                    select.push(agg.to_string());
                }
            }
            let group_cols: &[&str] = match group {
                1 => &["a"],
                2 => &["a", "b"],
                3 => &["b"],
                _ => &[],
            };
            let mut sql = String::from("SELECT ");
            if !group_cols.is_empty() {
                sql.push_str(&group_cols.join(", "));
                sql.push_str(", ");
            }
            sql.push_str(&select.join(", "));
            sql.push_str(" FROM t");
            match filter {
                1 => sql.push_str(&format!(" WHERE a <= {}", k % SIZES[0])),
                2 => {
                    let vals: Vec<String> = (0..SIZES[1])
                        .filter(|v| in_mask & (1 << v) != 0)
                        .map(|v| format!("'{v}'"))
                        .collect();
                    if !vals.is_empty() {
                        sql.push_str(&format!(" WHERE b IN ({})", vals.join(", ")));
                    }
                }
                3 => sql.push_str(&format!(" WHERE c = '{}'", k % SIZES[2])),
                4 => sql.push_str(&format!(" WHERE a <> {}", k % SIZES[0])),
                _ => {}
            }
            if !group_cols.is_empty() {
                sql.push_str(&format!(" GROUP BY {}", group_cols.join(", ")));
            }
            match order {
                1 if !group_cols.is_empty() => {
                    sql.push_str(&format!(" ORDER BY {} LIMIT 2", group_cols[0]));
                }
                2 => sql.push_str(" ORDER BY n DESC LIMIT 3"),
                _ => {}
            }
            sql
        },
    )
}
