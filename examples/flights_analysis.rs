//! The §2 motivating scenario at realistic scale: a data scientist analyzes
//! short flights per state from a sample biased towards four major states.
//!
//! ```sh
//! cargo run -p themis-examples --example flights_analysis --release
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{percent_difference, ReweightMethod, Themis, ThemisConfig, ThemisSession};
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};
use themis_examples::fmt_count;

fn main() {
    // A 100k-flight population; the analyst only ever sees the biased 10%
    // sample plus the published per-state and per-month totals.
    let dataset = FlightsDataset::generate(FlightsConfig {
        n: 100_000,
        ..Default::default()
    });
    let attrs = FlightsDataset::attrs();
    let pop = &dataset.population;
    let n = pop.len() as f64;
    let mut rng = SmallRng::seed_from_u64(42);
    let sample = dataset.sample_scorners(&mut rng);

    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(pop, &[attrs.o]),
        AggregateResult::compute(pop, &[attrs.f]),
        AggregateResult::compute(pop, &[attrs.o, attrs.dt]),
    ]);

    let aqp = Themis::build(
        sample.clone(),
        aggregates.clone(),
        n,
        ThemisConfig {
            reweighting: ReweightMethod::Uniform,
            bn_mode: None,
            ..ThemisConfig::default()
        },
    );
    let themis = Themis::build(sample, aggregates, n, ThemisConfig::default());

    println!("Short flights (shortest distance bucket) per origin state:");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "state", "true", "AQP", "Themis", "AQP err%", "Thm err%"
    );
    let mut aqp_total = 0.0;
    let mut themis_total = 0.0;
    let states = ["CA", "NY", "TX", "GA", "MN", "UT"];
    for state in states {
        let sid = pop.schema().domain(attrs.o).id_of(state).expect("state");
        let q_attrs = [attrs.o, attrs.dt];
        let q_vals = [sid, 0u32];
        let truth = pop.point_count(&q_attrs, &q_vals);
        let aqp_est = aqp.point_query_sample(&q_attrs, &q_vals);
        let themis_est = themis.point_query(&q_attrs, &q_vals);
        let aqp_err = percent_difference(truth, aqp_est);
        let themis_err = percent_difference(truth, themis_est);
        aqp_total += aqp_err;
        themis_total += themis_err;
        println!(
            "{state:<8} {:>10} {:>10} {:>10} {aqp_err:>8.1} {themis_err:>8.1}",
            fmt_count(truth),
            fmt_count(aqp_est),
            fmt_count(themis_est),
        );
    }
    println!(
        "\naverage percent difference — AQP: {:.1}, Themis: {:.1}",
        aqp_total / states.len() as f64,
        themis_total / states.len() as f64
    );

    // The same analysis in SQL, through a session: the answer carries the
    // route that produced it (an open-world GROUP BY goes hybrid).
    let session = ThemisSession::new(themis);
    let sql = "SELECT origin_state, COUNT(*) FROM flights \
               WHERE distance <= 0 GROUP BY origin_state";
    let answer = session.sql(sql).expect("valid SQL");
    println!("\n{sql};\n(first rows; route: {})\n", answer.route);
    for row in answer.result.rows.iter().take(5) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
}
