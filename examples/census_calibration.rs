//! Survey calibration against (noisy) census marginals — the demography
//! use case IPF was born for (§4.1.2), including differentially-private
//! aggregates (§3: "the 2020 US census will add random noise to their
//! reports... Themis will still treat these aggregates as marginal
//! constraints").
//!
//! ```sh
//! cargo run -p themis-examples --example census_calibration --release
//! ```

use rand::prelude::*;
use rand::rngs::SmallRng;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{percent_difference, ReweightMethod, Themis, ThemisConfig};
use themis_data::sampling::{RowFilter, SampleSpec};
use themis_data::{AttrId, Attribute, Domain, Relation, Schema};

fn main() {
    // Synthetic "household" population: region × age bracket × income
    // bracket with regional skew.
    let schema = Schema::new(vec![
        Attribute::new("region", Domain::of("region", &["north", "south", "east", "west"])),
        Attribute::new("age", Domain::of("age", &["18-34", "35-54", "55+"])),
        Attribute::new("income", Domain::of("income", &["low", "mid", "high"])),
    ]);
    let mut rng = SmallRng::seed_from_u64(2020);
    let mut population = Relation::with_capacity(schema.clone(), 50_000);
    for _ in 0..50_000 {
        let region = rng.gen_range(0..4u32);
        // Southern region skews older; east richer.
        let age = match region {
            1 => [0, 1, 1, 2, 2, 2][rng.gen_range(0..6usize)],
            _ => [0, 0, 1, 1, 2][rng.gen_range(0..5usize)],
        };
        let income = match region {
            2 => [1, 1, 2, 2, 2][rng.gen_range(0..5usize)],
            _ => [0, 0, 1, 1, 2][rng.gen_range(0..5usize)],
        };
        population.push_row(&[region, age, income]);
    }

    // An online survey over-represents the young western population.
    let filter = RowFilter::And(vec![
        RowFilter::Eq(AttrId(0), 3), // west
        RowFilter::Eq(AttrId(1), 0), // 18-34
    ]);
    let survey = SampleSpec::biased(0.05, filter, 0.7).draw(&population, &mut rng);
    println!("survey: {} of {} households\n", survey.len(), population.len());

    // The census bureau publishes noisy marginals (Laplace-ish noise).
    let mut noisy = |agg: AggregateResult| {
        let groups = agg
            .groups()
            .iter()
            .map(|(k, c)| (k.clone(), (c + rng.gen_range(-30.0f64..30.0)).max(0.0)))
            .collect();
        AggregateResult::from_groups(agg.attrs().to_vec(), groups)
    };
    let aggregates = AggregateSet::from_results(vec![
        noisy(AggregateResult::compute(&population, &[AttrId(0)])),
        noisy(AggregateResult::compute(&population, &[AttrId(1)])),
        noisy(AggregateResult::compute(&population, &[AttrId(0), AttrId(1)])),
    ]);

    let themis = Themis::build(
        survey.clone(),
        aggregates,
        population.len() as f64,
        ThemisConfig {
            reweighting: ReweightMethod::Ipf(Default::default()),
            ..ThemisConfig::default()
        },
    );
    if let Some(rep) = themis.ipf_report() {
        println!(
            "IPF: {} sweeps, max relative violation {:.2e}, converged = {}",
            rep.iterations, rep.final_violation, rep.converged
        );
    }

    // Estimate the age distribution per region.
    println!("\n{:<8} {:<7} {:>8} {:>10} {:>10}", "region", "age", "true", "uniform", "Themis");
    let uniform_scale = population.len() as f64 / survey.len() as f64;
    let mut err_unif = 0.0;
    let mut err_themis = 0.0;
    let mut count = 0.0;
    let attrs = [AttrId(0), AttrId(1)];
    let survey_counts = survey.group_row_counts(&attrs);
    for region in 0..4u32 {
        for age in 0..3u32 {
            let vals = [region, age];
            let truth = population.point_count(&attrs, &vals);
            let unif = survey_counts.get(&vec![region, age]).copied().unwrap_or(0) as f64
                * uniform_scale;
            let est = themis.point_query(&attrs, &vals);
            err_unif += percent_difference(truth, unif);
            err_themis += percent_difference(truth, est);
            count += 1.0;
            println!(
                "{:<8} {:<7} {truth:>8.0} {unif:>10.0} {est:>10.0}",
                schema.domain(AttrId(0)).label(region),
                schema.domain(AttrId(1)).label(age),
            );
        }
    }
    println!(
        "\naverage percent difference — uniform: {:.1}, Themis: {:.1}",
        err_unif / count,
        err_themis / count
    );
}
