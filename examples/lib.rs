//! Shared helpers for the Themis examples. The runnable binaries live next to
//! this file (`quickstart.rs`, `flights_analysis.rs`, ...) and are registered
//! as Cargo examples; run them with `cargo run -p themis-examples --example
//! quickstart --release`.

#![forbid(unsafe_code)]

/// Format a float with thousands separators for readable console output.
pub fn fmt_count(v: f64) -> String {
    let rounded = v.round() as i64;
    let s = rounded.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if rounded < 0 {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_thousands() {
        assert_eq!(fmt_count(1234567.0), "1,234,567");
        assert_eq!(fmt_count(12.4), "12");
        assert_eq!(fmt_count(-1000.0), "-1,000");
    }
}
