//! Quickstart: the paper's running example (Example 3.1) end to end.
//!
//! ```sh
//! cargo run -p themis-examples --example quickstart --release
//! ```
//!
//! We have a 4-tuple biased sample of a 10-tuple flight population, plus two
//! published aggregates (`GROUP BY date` and `GROUP BY o_st, d_st`). Themis
//! debiases the sample and answers point queries as if they ran over the
//! population — including a query about a tuple the sample never saw.

use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{Themis, ThemisConfig, ThemisSession};
use themis_data::paper_example::{example_population, example_sample};
use themis_data::AttrId;

fn main() {
    // The population exists conceptually but is unavailable; we use it here
    // only to compute the aggregates and the ground truth for display.
    let population = example_population();
    let n = population.len() as f64;

    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(&population, &[AttrId(0)]), // Γ1: GROUP BY date
        AggregateResult::compute(&population, &[AttrId(1), AttrId(2)]), // Γ2: origins × dests
    ]);

    // 1. Insert the sample and the aggregates; build the model and open a
    //    query session over it.
    let sample = example_sample();
    println!("sample: {} tuples, population: {} tuples\n", sample.len(), n);
    let session = ThemisSession::new(Themis::build(sample, aggregates, n, ThemisConfig::default()));

    // 2. Ask open-world point queries; each answer names the component that
    //    produced it (the reweighted sample vs the Bayesian network).
    let queries = [
        ("flights on date 01", vec![AttrId(0)], vec![0u32]),
        ("flights NC -> NY", vec![AttrId(1), AttrId(2)], vec![1, 2]),
        ("flights FL -> NY (NOT in the sample!)", vec![AttrId(1), AttrId(2)], vec![0, 2]),
    ];
    println!("{:<42} {:>6} {:>8}  route", "query", "true", "Themis");
    for (label, attrs, values) in queries {
        let truth = population.point_count(&attrs, &values);
        let answer = session.point_query(&attrs, &values);
        let est = answer.scalar().expect("point answers are scalar");
        println!("{label:<42} {truth:>6.1} {est:>8.2}  {}", answer.route);
    }

    // 3. SQL works too (COUNT(*) is evaluated as SUM(weight)), and
    //    `explain` shows the routing decision before anything runs.
    let sql = "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st";
    let explain = session.explain(sql).expect("valid SQL");
    println!("\n{explain}");
    let answer = session.sql(sql).expect("valid SQL");
    println!("\n{sql};\n{}-- {}", answer.result, answer.route);
}
