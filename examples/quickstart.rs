//! Quickstart: the paper's running example (Example 3.1) end to end.
//!
//! ```sh
//! cargo run -p themis-examples --example quickstart --release
//! ```
//!
//! We have a 4-tuple biased sample of a 10-tuple flight population, plus two
//! published aggregates (`GROUP BY date` and `GROUP BY o_st, d_st`). Themis
//! debiases the sample and answers point queries as if they ran over the
//! population — including a query about a tuple the sample never saw.

use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{Themis, ThemisConfig};
use themis_data::paper_example::{example_population, example_sample};
use themis_data::AttrId;

fn main() {
    // The population exists conceptually but is unavailable; we use it here
    // only to compute the aggregates and the ground truth for display.
    let population = example_population();
    let n = population.len() as f64;

    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(&population, &[AttrId(0)]), // Γ1: GROUP BY date
        AggregateResult::compute(&population, &[AttrId(1), AttrId(2)]), // Γ2: origins × dests
    ]);

    // 1. Insert the sample and the aggregates; build the model.
    let sample = example_sample();
    println!("sample: {} tuples, population: {} tuples\n", sample.len(), n);
    let themis = Themis::build(sample, aggregates, n, ThemisConfig::default());

    // 2. Ask open-world point queries.
    let queries = [
        ("flights on date 01", vec![AttrId(0)], vec![0u32]),
        ("flights NC -> NY", vec![AttrId(1), AttrId(2)], vec![1, 2]),
        ("flights FL -> NY (NOT in the sample!)", vec![AttrId(1), AttrId(2)], vec![0, 2]),
    ];
    println!("{:<42} {:>6} {:>8}", "query", "true", "Themis");
    for (label, attrs, values) in queries {
        let truth = population.point_count(&attrs, &values);
        let est = themis.point_query(&attrs, &values);
        println!("{label:<42} {truth:>6.1} {est:>8.2}");
    }

    // 3. SQL works too (COUNT(*) is evaluated as SUM(weight)).
    let result = themis
        .sql("SELECT o_st, COUNT(*) FROM flights GROUP BY o_st")
        .expect("valid SQL");
    println!("\nSELECT o_st, COUNT(*) FROM flights GROUP BY o_st;\n{result}");
}
