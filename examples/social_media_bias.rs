//! The 100%-biased ("social media") use case: analyzing a sample whose
//! support differs from the population.
//!
//! ```sh
//! cargo run -p themis-examples --example social_media_bias --release
//! ```
//!
//! Datasets scraped from the web are often *pure selections* — only users
//! of the platform appear at all (the paper's Corners/R159 samples). Sample
//! reweighting cannot say anything about the missing groups; Themis'
//! Bayesian network fills them in from the aggregates.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{Themis, ThemisConfig};
use themis_data::datasets::imdb::{ImdbConfig, ImdbDataset};

fn main() {
    // "Movie reviews platform" population; our scrape only contains movies
    // rated 1, 5, or 9 (the platform's featured ratings) — a 100% bias.
    let dataset = ImdbDataset::generate(ImdbConfig {
        n: 80_000,
        names: 4_000,
        ..Default::default()
    });
    let attrs = ImdbDataset::attrs();
    let pop = &dataset.population;
    let n = pop.len() as f64;
    let mut rng = SmallRng::seed_from_u64(7);
    let scrape = dataset.sample_r159(&mut rng);

    // Published aggregates: ratings distribution and country × rating.
    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(pop, &[attrs.rg]),
        AggregateResult::compute(pop, &[attrs.mc, attrs.rg]),
        AggregateResult::compute(pop, &[attrs.my, attrs.rg]),
    ]);

    let themis = Themis::build(scrape.clone(), aggregates, n, ThemisConfig::default());

    println!("scrape: {} rows, population: {} rows", scrape.len(), pop.len());
    println!("ratings present in the scrape: 1, 5, 9 only\n");

    println!("How many movies have each rating? (rating 1..10)");
    println!("{:>7} {:>10} {:>12} {:>12}", "rating", "true", "scrape (RW)", "Themis");
    for rating in 0..10u32 {
        let truth = pop.point_count(&[attrs.rg], &[rating]);
        let reweighted = themis.point_query_sample(&[attrs.rg], &[rating]);
        let hybrid = themis.point_query(&[attrs.rg], &[rating]);
        println!(
            "{:>7} {truth:>10.0} {reweighted:>12.0} {hybrid:>12.0}",
            rating + 1
        );
    }
    println!(
        "\nThe reweighted sample answers 0 for every rating it never saw;\n\
         the hybrid falls back to Bayesian-network inference, which the\n\
         aggregates constrain to the true ratings distribution."
    );

    // A 2-D open-world query: GB movies by rating.
    let gb = 1u32;
    println!("\nGB movies per rating (2-D point queries):");
    println!("{:>7} {:>10} {:>12}", "rating", "true", "Themis");
    for rating in [1u32, 3, 7] {
        let truth = pop.point_count(&[attrs.mc, attrs.rg], &[gb, rating]);
        let hybrid = themis.point_query(&[attrs.mc, attrs.rg], &[gb, rating]);
        println!("{:>7} {truth:>10.0} {hybrid:>12.0}", rating + 1);
    }
}
