//! Generation of strings matching a regex subset.
//!
//! Supports exactly the constructs Themis' property tests use: literals,
//! `.`, character classes `[a-z0-9_]`, alternation groups `(a|bc|[0-9]{1,3})`,
//! quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`, and backslash escapes. Patterns
//! outside this subset panic loudly rather than silently generating garbage.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Clone, Debug)]
enum Node {
    /// Concatenation of parts.
    Seq(Vec<Node>),
    /// One branch chosen uniformly.
    Alt(Vec<Node>),
    /// Inclusive character ranges, e.g. `[a-z0-9]` → [(a,z),(0,9)].
    Class(Vec<(char, char)>),
    /// Any printable character (`.`).
    Dot,
    Lit(char),
    /// `node{min,max}` with inclusive max.
    Repeat(Box<Node>, usize, usize),
}

const UNBOUNDED_MAX: usize = 8;

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser { chars: pattern.chars().peekable(), pattern }
    }

    fn fail(&self, msg: &str) -> ! {
        panic!("proptest shim: unsupported regex {:?}: {msg}", self.pattern);
    }

    /// alt := seq ('|' seq)*
    fn parse_alt(&mut self) -> Node {
        let mut branches = vec![self.parse_seq()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            branches.push(self.parse_seq());
        }
        if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Node::Alt(branches)
        }
    }

    /// seq := (atom quantifier?)*  — stops at '|' or ')'.
    fn parse_seq(&mut self) -> Node {
        let mut parts = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            parts.push(self.parse_quantifier(atom));
        }
        Node::Seq(parts)
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next() {
            Some('(') => {
                let inner = self.parse_alt();
                if self.chars.next() != Some(')') {
                    self.fail("unclosed group");
                }
                inner
            }
            Some('[') => self.parse_class(),
            Some('\\') => match self.chars.next() {
                Some('n') => Node::Lit('\n'),
                Some('t') => Node::Lit('\t'),
                Some('r') => Node::Lit('\r'),
                Some('d') => Node::Class(vec![('0', '9')]),
                Some('w') => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                Some('s') => Node::Class(vec![(' ', ' '), ('\t', '\t')]),
                Some(c) if c.is_ascii_alphanumeric() => self.fail("unknown escape"),
                Some(c) => Node::Lit(c),
                None => self.fail("trailing backslash"),
            },
            Some('.') => Node::Dot,
            Some(c) => Node::Lit(c),
            None => self.fail("unexpected end of pattern"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut ranges = Vec::new();
        if self.chars.peek() == Some(&'^') {
            self.fail("negated classes are not supported");
        }
        loop {
            let lo = match self.chars.next() {
                Some(']') => break,
                Some('\\') => match self.chars.next() {
                    // Shorthand classes expand to their ranges; they can't
                    // anchor a `-` range, so continue directly.
                    Some('d') => {
                        ranges.push(('0', '9'));
                        continue;
                    }
                    Some('w') => {
                        ranges.extend([('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]);
                        continue;
                    }
                    Some('s') => {
                        ranges.extend([(' ', ' '), ('\t', '\t')]);
                        continue;
                    }
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some(c) if c.is_ascii_alphanumeric() => {
                        self.fail("unknown escape in character class")
                    }
                    Some(c) => c,
                    None => self.fail("trailing backslash"),
                },
                Some(c) => c,
                None => self.fail("unclosed character class"),
            };
            if self.chars.peek() == Some(&'-') {
                self.chars.next();
                match self.chars.peek() {
                    // Trailing '-' is a literal, e.g. `[a-z-]`.
                    Some(&']') | None => {
                        ranges.push((lo, lo));
                        ranges.push(('-', '-'));
                    }
                    Some(_) => {
                        let hi = self.chars.next().unwrap();
                        if hi < lo {
                            self.fail("inverted class range");
                        }
                        ranges.push((lo, hi));
                    }
                }
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            self.fail("empty character class");
        }
        Node::Class(ranges)
    }

    fn parse_quantifier(&mut self, atom: Node) -> Node {
        match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let min = self.parse_number();
                let max = match self.chars.next() {
                    Some('}') => min,
                    Some(',') => {
                        if self.chars.peek() == Some(&'}') {
                            self.chars.next();
                            return Node::Repeat(Box::new(atom), min, min + UNBOUNDED_MAX);
                        }
                        let max = self.parse_number();
                        if self.chars.next() != Some('}') {
                            self.fail("unclosed quantifier");
                        }
                        max
                    }
                    _ => self.fail("malformed quantifier"),
                };
                if max < min {
                    self.fail("quantifier max below min");
                }
                Node::Repeat(Box::new(atom), min, max)
            }
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, UNBOUNDED_MAX)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 1, UNBOUNDED_MAX)
            }
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            _ => atom,
        }
    }

    fn parse_number(&mut self) -> usize {
        let mut n = None;
        while let Some(c) = self.chars.peek().and_then(|c| c.to_digit(10)) {
            self.chars.next();
            n = Some(n.unwrap_or(0) * 10 + c as usize);
        }
        n.unwrap_or_else(|| self.fail("expected number in quantifier"))
    }
}

/// Characters emitted for `.`: printable ASCII plus a few multi-byte
/// characters so byte-indexing bugs in parsers get exercised.
const DOT_EXTRAS: [char; 6] = ['é', 'λ', '☃', '中', '\u{00a0}', '😀'];

fn generate_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Seq(parts) => {
            for p in parts {
                generate_node(p, rng, out);
            }
        }
        Node::Alt(branches) => {
            let pick = rng.gen_range(0..branches.len());
            generate_node(&branches[pick], rng, out);
        }
        Node::Class(ranges) => {
            // Weight ranges by span so wide ranges are not starved.
            let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
            let mut pick = rng.gen_range(0..total);
            for (lo, hi) in ranges {
                let span = *hi as u32 - *lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick).expect("class range straddles invalid codepoints"));
                    return;
                }
                pick -= span;
            }
            unreachable!();
        }
        Node::Dot => {
            if rng.gen_bool(0.06) {
                out.push(DOT_EXTRAS[rng.gen_range(0..DOT_EXTRAS.len())]);
            } else {
                out.push(char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap());
            }
        }
        Node::Lit(c) => out.push(*c),
        Node::Repeat(inner, min, max) => {
            let n = rng.gen_range(*min..=*max);
            for _ in 0..n {
                generate_node(inner, rng, out);
            }
        }
    }
}

pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser::new(pattern);
    let ast = parser.parse_alt();
    if parser.chars.next().is_some() {
        parser.fail("trailing characters (unbalanced ')'?)");
    }
    let mut out = String::new();
    generate_node(&ast, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("regex-internal")
    }

    #[test]
    fn quoted_literal_alternatives() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("'[a-z]{0,4}'", &mut r);
            assert!(s.starts_with('\'') && s.ends_with('\'') && s.len() >= 2, "s = {s:?}");
        }
    }

    #[test]
    fn escaped_metacharacters() {
        let mut r = rng();
        assert_eq!(generate_matching("\\(", &mut r), "(");
        assert_eq!(generate_matching("\\*", &mut r), "*");
        assert_eq!(generate_matching("<=", &mut r), "<=");
    }

    #[test]
    fn class_shorthand_escapes_expand() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[\\d]{4}", &mut r);
            assert!(s.len() == 4 && s.chars().all(|c| c.is_ascii_digit()), "s = {s:?}");
            let w = generate_matching("[\\w-]{1,6}", &mut r);
            assert!(
                w.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
                "w = {w:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown escape in character class")]
    fn unknown_class_escape_panics_loudly() {
        generate_matching("[\\p]{2}", &mut rng());
    }

    #[test]
    #[should_panic(expected = "unknown escape")]
    fn unknown_atom_escape_panics_loudly() {
        generate_matching("\\w+\\b", &mut rng());
    }

    #[test]
    fn dot_repeat_respects_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching(".{0,120}", &mut r);
            assert!(s.chars().count() <= 120);
        }
    }
}
