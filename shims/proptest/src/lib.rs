//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! small but functional property-testing harness covering the subset Themis'
//! test suites use: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), numeric-range strategies, regex-string
//! strategies, `prop::collection::vec`, `any::<T>()`, `prop_map` /
//! `prop_flat_map`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (so runs are deterministic), and failing inputs are not
//! shrunk — instead, a failing property names its case index on stderr,
//! and rerunning the test regenerates the identical inputs.

#![forbid(unsafe_code)]

pub mod collection;
pub mod regex;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of `proptest::prelude::prop`: module-style access to the
    /// strategy toolbox (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Runs each test case body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __runner = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..config.cases {
                let __guard = $crate::test_runner::CaseGuard::new(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __runner);)*
                $body
                drop(__guard);
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..500 {
            let f = (-10.0f64..10.0).generate(&mut rng);
            assert!((-10.0..10.0).contains(&f));
            let n = (3usize..8).generate(&mut rng);
            assert!((3..8).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = crate::test_runner::TestRng::for_test("vec");
        let strat = prop::collection::vec(0i32..5, 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "len = {}", v.len());
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn regex_strategy_matches_simple_patterns() {
        let mut rng = crate::test_runner::TestRng::for_test("regex");
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "len = {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "s = {s:?}");

            let alt = "(SELECT|[0-9]{1,3}|\\*)".generate(&mut rng);
            let ok = alt == "SELECT"
                || alt == "*"
                || (!alt.is_empty() && alt.chars().all(|c| c.is_ascii_digit()));
            assert!(ok, "alt = {alt:?}");
        }
    }

    #[test]
    fn any_f64_covers_special_values() {
        let mut rng = crate::test_runner::TestRng::for_test("f64-specials");
        let strat = any::<f64>();
        let draws: Vec<f64> = (0..2000).map(|_| strat.generate(&mut rng)).collect();
        assert!(draws.iter().any(|x| x.is_nan()), "no NaN in 2000 draws");
        assert!(draws.iter().any(|x| x.is_infinite()), "no infinity in 2000 draws");
        assert!(draws.contains(&0.0), "no zero in 2000 draws");
        assert!(draws.iter().any(|x| x.is_finite() && x.abs() > 1e80), "no huge finite value");
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = crate::test_runner::TestRng::for_test("flat_map");
        let strat = (1usize..5)
            .prop_flat_map(|n| prop::collection::vec(0u8..10, n..=n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_generates_and_runs(v in prop::collection::vec(-1.0f64..1.0, 1..10), flag in any::<bool>()) {
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|x| x.abs() <= 1.0), "flag draw was {flag}");
        }
    }
}
