//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Accepted size specifications for `vec`: an exact length, `lo..hi`, or
/// `lo..=hi` (mirrors proptest's `Into<SizeRange>`).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range is empty");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec size range is empty");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
