//! The `Strategy` trait, primitive strategies, and combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`. Unlike real proptest
/// there is no value tree / shrinking: `generate` draws a fresh value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String slices act as regex-pattern strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate_matching(self, rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // `any::<f64>()` must cover the whole domain, special values
        // included, like the real crate's Arbitrary — properties that only
        // hold for tame floats should fail here too.
        if rng.gen_bool(0.08) {
            const SPECIALS: [f64; 8] = [
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                0.0,
                -0.0,
                f64::MAX,
                f64::MIN,
                f64::MIN_POSITIVE,
            ];
            return SPECIALS[rng.gen_range(0..SPECIALS.len())];
        }
        // Otherwise spread across magnitudes rather than uniform in [0,1):
        // properties should see both tiny and large finite values.
        let mantissa: f64 = rng.gen_range(-1.0f64..1.0);
        let exp: i32 = rng.gen_range(-300i32..300);
        mantissa * (2.0f64).powi(exp)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A `Vec` of strategies is itself a strategy for same-length `Vec`s, one
/// element drawn from each (proptest's fixed-shape collection support).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Tuples of strategies generate tuples of values.
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
