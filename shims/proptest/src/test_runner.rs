//! Test configuration and the RNG handed to strategies.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the debug-mode suite quick
        // while still exercising each property broadly. PROPTEST_CASES
        // overrides, as in the real crate.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Names the failing case when a property panics. Generated values are not
/// required to be `Debug`, but case generation is deterministic, so the test
/// name + case index fully identify the failing inputs.
pub struct CaseGuard {
    test: &'static str,
    case: u32,
}

impl CaseGuard {
    pub fn new(test: &'static str, case: u32) -> Self {
        CaseGuard { test, case }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: property '{}' failed on case {} \
                 (generation is deterministic — rerun this test to reproduce)",
                self.test, self.case
            );
        }
    }
}

/// RNG used to generate test cases. Seeded from the test name so every test
/// sees a distinct but reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
