//! The failing-case reporter must fire exactly when a property panics.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    #[test]
    #[should_panic(expected = "deliberately")]
    fn failing_property_panics(n in 0usize..100) {
        if n > 0 {
            panic!("deliberately failing on n = {n}");
        }
    }
}
