//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! minimal data-parallelism layer covering what the Themis query engine
//! needs: a [`Pool`] that runs closures over task indices or index ranges
//! on scoped OS threads, returning results **in task order**
//! regardless of which thread finished first. Ordered results are what let
//! the morsel-driven executor merge partial aggregates deterministically.
//!
//! Differences from real rayon: there is no global pool, no work stealing
//! beyond a shared atomic task cursor, and no parallel iterator traits —
//! callers pass explicit closures. Threads are spawned per call via
//! [`std::thread::scope`], so borrowed (non-`'static`) data works; calls
//! with one worker (or a single task) run inline without spawning.
//!
//! This crate never reads environment variables: the pool width is always an
//! explicit argument. Callers that want an environment-driven default (the
//! CLI, the benches) parse it themselves and pass the result down.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads, with a floor of 1.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-width scoped thread pool.
///
/// The pool is a *width*, not a set of live threads: each `par_*` call
/// spawns up to `threads` scoped workers that pull task indices from a
/// shared cursor and exits when all tasks are done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// Pool of exactly `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(i)` for every `i in 0..tasks` and return the results in index
    /// order. Tasks are claimed dynamically, so uneven task costs balance
    /// across workers. Runs inline when one worker (or ≤ 1 task) suffices.
    ///
    /// # Panics
    /// Propagates the panic of any task.
    pub fn par_indexed<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(tasks);
        if workers <= 1 {
            return (0..tasks).map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks);
        slots.resize_with(tasks, || None);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let f = &f;
                    s.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            done.push((i, f(i)));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                let done = match h.join() {
                    Ok(done) => done,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                for (i, r) in done {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every task index was claimed exactly once"))
            .collect()
    }

    /// Split `0..n` into consecutive ranges of at most `chunk` items, run
    /// `f` over each range in parallel, and return results in range order.
    pub fn par_ranges<R, F>(&self, n: usize, chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let chunk = chunk.max(1);
        let tasks = n.div_ceil(chunk);
        self.par_indexed(tasks, |i| {
            let start = i * chunk;
            f(start..(start + chunk).min(n))
        })
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = Pool::new(4);
        // Make early tasks the slowest so out-of-order completion is likely.
        let out = pool.par_indexed(32, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * i
        });
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_ranges_partitions_exactly() {
        let pool = Pool::new(3);
        let ranges = pool.par_ranges(10, 4, |r| r);
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        assert_eq!(pool.par_ranges(0, 4, |r| r), Vec::<Range<usize>>::new());
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.par_indexed(5, |i| i), vec![0, 1, 2, 3, 4]);
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn worker_panics_propagate() {
        let pool = Pool::new(2);
        let r = std::panic::catch_unwind(|| pool.par_indexed(8, |i| assert!(i != 3)));
        assert!(r.is_err());
    }

    #[test]
    fn available_threads_has_a_floor_of_one() {
        assert!(available_threads() >= 1);
    }
}
