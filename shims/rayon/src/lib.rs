//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! minimal data-parallelism layer covering what the Themis query engine
//! needs: a [`Pool`] that runs closures over task indices or index ranges
//! on scoped OS threads, returning results **in task order**
//! regardless of which thread finished first. Ordered results are what let
//! the morsel-driven executor merge partial aggregates deterministically.
//!
//! ## Panic containment
//!
//! A worker panic must never take down the process that hosts the pool (the
//! query engines run inside long-lived sessions and, eventually, a server).
//! Every task body runs under [`std::panic::catch_unwind`] — safe code, no
//! `unsafe` — and a panic surfaces as a typed [`TaskPanic`] from
//! [`Pool::try_par_indexed`] / [`Pool::try_par_ranges`] instead of
//! unwinding. When a task panics the pool stops handing out further tasks
//! and reports the panic with the lowest task index, so callers see a
//! deterministic error for a deterministic fault.
//!
//! Differences from real rayon: there is no global pool, no work stealing
//! beyond a shared atomic task cursor, and no parallel iterator traits —
//! callers pass explicit closures. Threads are spawned per call via
//! [`std::thread::scope`], so borrowed (non-`'static`) data works; calls
//! with one worker (or a single task) run inline without spawning.
//!
//! This crate never reads environment variables: the pool width is always an
//! explicit argument. Callers that want an environment-driven default (the
//! CLI, the benches) parse it themselves and pass the result down.

#![forbid(unsafe_code)]

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of hardware threads, with a floor of 1.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A contained worker panic: the task that panicked and its payload
/// rendered to text. When several tasks panic in one call, the lowest task
/// index is reported, so a deterministic fault yields a deterministic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the panicking task (lowest, if several panicked).
    pub task: usize,
    /// The panic payload: `&str`/`String` payloads verbatim, anything else
    /// as a placeholder.
    pub message: String,
}

/// Render a caught panic payload to text.
fn payload_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one task under `catch_unwind`. `AssertUnwindSafe` is sound here
/// because a panicking task's partial state is discarded wholesale: its
/// result slot stays empty and the caller receives an error instead of any
/// result, so no broken invariant is ever observed.
fn contain<R>(task: usize, f: &(impl Fn(usize) -> R + Sync)) -> Result<R, TaskPanic> {
    catch_unwind(AssertUnwindSafe(|| f(task))).map_err(|payload| TaskPanic {
        task,
        message: payload_message(payload),
    })
}

/// Keep the panic with the lowest task index.
fn record_panic(slot: &Mutex<Option<TaskPanic>>, p: TaskPanic) {
    let mut guard = match slot.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    match &*guard {
        Some(existing) if existing.task <= p.task => {}
        _ => *guard = Some(p),
    }
}

/// A fixed-width scoped thread pool.
///
/// The pool is a *width*, not a set of live threads: each `try_par_*` call
/// spawns up to `threads` scoped workers that pull task indices from a
/// shared cursor and exits when all tasks are done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// Pool of exactly `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(i)` for every `i in 0..tasks` and return the results in index
    /// order. Tasks are claimed dynamically, so uneven task costs balance
    /// across workers. Runs inline when one worker (or ≤ 1 task) suffices.
    ///
    /// A panicking task is contained ([`TaskPanic`], never an unwind); the
    /// remaining workers stop claiming new tasks and their finished results
    /// are dropped.
    pub fn try_par_indexed<R, F>(&self, tasks: usize, f: F) -> Result<Vec<R>, TaskPanic>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(tasks);
        if workers <= 1 {
            let mut out = Vec::with_capacity(tasks);
            for i in 0..tasks {
                out.push(contain(i, &f)?);
            }
            return Ok(out);
        }
        let cursor = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let first_panic: Mutex<Option<TaskPanic>> = Mutex::new(None);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks);
        slots.resize_with(tasks, || None);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let poisoned = &poisoned;
                    let first_panic = &first_panic;
                    let f = &f;
                    s.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            if poisoned.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            match contain(i, f) {
                                Ok(r) => done.push((i, r)),
                                Err(p) => {
                                    record_panic(first_panic, p);
                                    poisoned.store(true, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                // Workers never unwind (every task body is contained), but
                // stay graceful if join fails anyway: the panic was already
                // recorded.
                if let Ok(done) = h.join() {
                    for (i, r) in done {
                        slots[i] = Some(r);
                    }
                }
            }
        });
        let first = match first_panic.into_inner() {
            Ok(p) => p,
            Err(poisoned) => poisoned.into_inner(),
        };
        match first {
            Some(p) => Err(p),
            None => Ok(slots
                .into_iter()
                .map(|s| s.expect("every task index was claimed exactly once"))
                .collect()),
        }
    }

    /// Split `0..n` into consecutive ranges of at most `chunk` items, run
    /// `f` over each range in parallel, and return results in range order.
    /// Panics are contained exactly as in [`Pool::try_par_indexed`].
    pub fn try_par_ranges<R, F>(&self, n: usize, chunk: usize, f: F) -> Result<Vec<R>, TaskPanic>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let chunk = chunk.max(1);
        let tasks = n.div_ceil(chunk);
        self.try_par_indexed(tasks, |i| {
            let start = i * chunk;
            f(start..(start + chunk).min(n))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = Pool::new(4);
        // Make early tasks the slowest so out-of-order completion is likely.
        let out = pool
            .try_par_indexed(32, |i| {
                if i < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                i * i
            })
            .unwrap();
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_ranges_partitions_exactly() {
        let pool = Pool::new(3);
        let ranges = pool.try_par_ranges(10, 4, |r| r).unwrap();
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        assert_eq!(
            pool.try_par_ranges(0, 4, |r| r).unwrap(),
            Vec::<Range<usize>>::new()
        );
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.try_par_indexed(5, |i| i).unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(Pool::new(0).threads(), 1);
    }

    #[test]
    fn worker_panics_are_contained_as_typed_errors() {
        let pool = Pool::new(2);
        let err = pool
            .try_par_indexed(8, |i| assert!(i != 3, "task {i} exploded"))
            .unwrap_err();
        assert_eq!(err.task, 3);
        assert!(err.message.contains("task 3 exploded"), "{}", err.message);
    }

    #[test]
    fn inline_path_contains_panics_too() {
        let pool = Pool::new(1);
        let err = pool
            .try_par_indexed(4, |i| {
                if i == 2 {
                    panic!("inline boom");
                }
                i
            })
            .unwrap_err();
        assert_eq!((err.task, err.message.as_str()), (2, "inline boom"));
    }

    #[test]
    fn lowest_panicking_task_wins() {
        // Every task panics; whichever worker interleaving occurs, the
        // reported index must be one of the panicking tasks and the message
        // must match that index.
        let pool = Pool::new(4);
        let err = pool
            .try_par_indexed(16, |i| -> usize { panic!("boom {i}") })
            .unwrap_err();
        assert_eq!(err.message, format!("boom {}", err.task));
    }

    #[test]
    fn available_threads_has_a_floor_of_one() {
        assert!(available_threads() >= 1);
    }
}
