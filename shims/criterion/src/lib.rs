//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access. This shim keeps the
//! benchmark sources compiling and runnable (`cargo bench`): each `iter`
//! closure is executed a handful of times and the mean wall-clock time is
//! printed. There is no statistical analysis — it exists so bench targets
//! stay honest about their APIs and can be smoke-run, not to produce
//! publishable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

pub struct Bencher {
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let mean = start.elapsed() / self.iters;
        println!("    time: {mean:>12.2?}/iter over {} iters", self.iters);
    }
}

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        println!("bench: {id}");
        let mut b = Bencher { iters: 3 };
        f(&mut b);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into() }
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().name);
        self.parent.run_one(&id, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.name);
        self.parent.run_one(&id, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
