//! Distributions: the `Distribution` trait and `WeightedIndex`.

use crate::RngCore;
use std::borrow::Borrow;
use std::fmt;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T>> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WeightedError {
    NoItem,
    InvalidWeight,
    AllWeightsZero,
}

impl fmt::Display for WeightedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no items to sample from"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..n` proportionally to a weight vector, by binary search
/// over the cumulative weights.
#[derive(Clone, Debug)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64() * self.total;
        // partition_point returns the first index whose cumulative weight
        // exceeds u; zero-weight entries have zero-length intervals and are
        // never selected.
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1)
    }
}
