//! Concrete generators: xoshiro256++ behind the `SmallRng`/`StdRng` names.

use crate::{RngCore, SeedableRng};

/// splitmix64 — used to expand a 64-bit seed into generator state, per the
/// xoshiro authors' recommendation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state. Small, fast, and statistically solid — a reasonable
/// stand-in for rand 0.8's `SmallRng`.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Same engine under the `StdRng` name; the distinction only matters for the
/// real crate's security guarantees, which no caller here relies on.
#[derive(Clone, Debug)]
pub struct StdRng(SmallRng);

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
