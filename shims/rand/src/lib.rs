//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small, fully functional implementation of exactly the surface Themis
//! uses: `SmallRng::seed_from_u64`, the `Rng` extension methods
//! (`gen`, `gen_range`, `gen_bool`, `sample`), `distributions::WeightedIndex`,
//! and `seq::SliceRandom` (`shuffle`/`choose`). The generator is
//! xoshiro256++ seeded via splitmix64 — deterministic for a given seed, which
//! is all the test suite and benchmarks rely on.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Minimal core trait: everything derives from a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding. Only `seed_from_u64` is needed by this codebase.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by `Rng::gen()` (the `Standard` distribution in real
/// rand).
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let v = self.start + (rng.next_f64() as $t) * (self.end - self.start);
                // Narrowing the f64 fraction (f32) or the final rounding step
                // (f64, half-ULP) can land exactly on the excluded bound.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                (lo + (rng.next_f64() as $t) * (hi - lo)).min(hi)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing extension trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.next_f64() < p
    }

    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{Distribution, WeightedIndex};
    use crate::rngs::SmallRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    /// Forces the largest possible fraction: next_f64() = 1 - 2^-53, which
    /// rounds to exactly 1.0 when narrowed to f32.
    struct MaxRng;

    impl RngCore for MaxRng {
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    #[test]
    fn float_range_excludes_upper_bound_even_at_max_draw() {
        let mut rng = MaxRng;
        let f32v = rng.gen_range(0.0f32..10.0);
        assert!(f32v < 10.0, "f32 draw hit the excluded bound: {f32v}");
        let f64v = rng.gen_range(0.0f64..10.0);
        assert!(f64v < 10.0, "f64 draw hit the excluded bound: {f64v}");
        // Inclusive ranges may return the bound but never exceed it.
        assert!(rng.gen_range(0.1f64..=0.3) <= 0.3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut rng = SmallRng::seed_from_u64(5);
        let dist = WeightedIndex::new([1.0, 0.0, 3.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..8_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 2 * counts[0], "counts = {counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new([1.0, -1.0]).is_err());
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
