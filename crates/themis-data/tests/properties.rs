//! Property-based tests for the data substrate.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_data::bucketize::Bucketizer;
use themis_data::sampling::{RowFilter, SampleSpec};
use themis_data::{AttrId, Attribute, Domain, Relation, Schema};

/// Build a relation with `rows` random rows over `cards` domains.
fn random_relation(cards: &[usize], rows: &[Vec<u32>]) -> Relation {
    let schema = Schema::new(
        cards
            .iter()
            .enumerate()
            .map(|(i, &c)| Attribute::new(format!("a{i}"), Domain::indexed(format!("a{i}"), c)))
            .collect(),
    );
    let mut rel = Relation::new(schema);
    for row in rows {
        rel.push_row(row);
    }
    rel
}

fn relation_strategy() -> impl Strategy<Value = Relation> {
    (prop::collection::vec(2usize..5, 1..4)).prop_flat_map(|cards| {
        let row = cards
            .iter()
            .map(|&c| 0u32..c as u32)
            .collect::<Vec<_>>();
        prop::collection::vec(row, 1..40)
            .prop_map(move |rows| random_relation(&cards, &rows))
    })
}

proptest! {
    #[test]
    fn group_counts_partition_total_weight(rel in relation_strategy()) {
        let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();
        for a in &attrs {
            let groups = rel.group_counts(&[*a]);
            let sum: f64 = groups.values().sum();
            prop_assert!((sum - rel.total_weight()).abs() < 1e-9);
        }
    }

    #[test]
    fn point_count_agrees_with_group_counts(rel in relation_strategy()) {
        let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();
        let groups = rel.group_counts(&attrs);
        for (key, count) in groups {
            prop_assert_eq!(rel.point_count(&attrs, &key), count);
            prop_assert!(rel.contains_point(&attrs, &key));
        }
    }

    #[test]
    fn normalization_preserves_proportions(rel in relation_strategy(), target in 1.0f64..1e6) {
        let mut r = rel.clone();
        let before: Vec<f64> = r.weights().to_vec();
        r.normalize_weights_to(target);
        prop_assert!((r.total_weight() - target).abs() / target < 1e-9);
        let scale = target / rel.total_weight();
        for (b, a) in before.iter().zip(r.weights()) {
            prop_assert!((b * scale - a).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_sample_size_is_exact(rel in relation_strategy(), frac in 0.1f64..1.0, seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let s = SampleSpec::uniform(frac).draw(&rel, &mut rng);
        let expected = ((rel.len() as f64) * frac).round().max(1.0) as usize;
        prop_assert_eq!(s.len(), expected.min(rel.len()));
    }

    #[test]
    fn biased_sample_rows_come_from_population(rel in relation_strategy(), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let filter = RowFilter::Eq(AttrId(0), 0);
        let s = SampleSpec::biased(0.5, filter, 0.8).draw(&rel, &mut rng);
        let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();
        for r in 0..s.len() {
            prop_assert!(rel.contains_point(&attrs, &s.row(r)));
        }
    }

    #[test]
    fn bucketizer_is_monotone(lo in -100.0f64..0.0, width in 1.0f64..100.0, k in 2usize..20) {
        let b = Bucketizer::new(lo, lo + width, k);
        let mut prev = 0;
        for i in 0..=50 {
            let v = lo + width * (i as f64) / 50.0;
            let bucket = b.bucket(v);
            prop_assert!(bucket >= prev, "bucket must not decrease");
            prop_assert!((bucket as usize) < k);
            prev = bucket;
        }
    }

    #[test]
    fn bucket_midpoints_lie_in_range(lo in -50.0f64..50.0, width in 0.5f64..50.0, k in 1usize..12) {
        let b = Bucketizer::new(lo, lo + width, k);
        for i in 0..k as u32 {
            let m = b.midpoint(i);
            prop_assert!(m > lo && m < lo + width + 1e-9);
            prop_assert_eq!(b.bucket(m), i);
        }
    }
}
