//! Equi-width bucketization of real-valued attributes.
//!
//! Themis supports continuous data types by bucketizing their active domains
//! into equi-width buckets (§3 footnote 2, §6.2). A [`Bucketizer`] maps raw
//! `f64` measurements to dense bucket ids and produces a [`Domain`] whose
//! labels describe the bucket ranges.

use crate::domain::Domain;

/// Equi-width bucketizer over a closed value range.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucketizer {
    lo: f64,
    hi: f64,
    buckets: usize,
    width: f64,
}

impl Bucketizer {
    /// Create a bucketizer splitting `[lo, hi]` into `buckets` equal-width
    /// buckets.
    ///
    /// # Panics
    /// Panics if `buckets == 0`, the bounds are not finite, or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(hi > lo, "hi must exceed lo");
        Self {
            lo,
            hi,
            buckets,
            width: (hi - lo) / buckets as f64,
        }
    }

    /// Create a bucketizer spanning the observed range of `values`.
    ///
    /// # Panics
    /// Panics if `values` is empty, contains non-finite numbers, or all
    /// values are identical.
    pub fn fit(values: &[f64], buckets: usize) -> Self {
        assert!(!values.is_empty(), "cannot fit bucketizer on empty data");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in values {
            assert!(v.is_finite(), "non-finite value in data");
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(hi > lo, "all values identical; bucketization is degenerate");
        Self::new(lo, hi, buckets)
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Bucket id for a value. Values outside `[lo, hi]` clamp to the first or
    /// last bucket (this matches how out-of-range census values are coded).
    pub fn bucket(&self, value: f64) -> u32 {
        if value <= self.lo {
            return 0;
        }
        let raw = ((value - self.lo) / self.width) as usize;
        raw.min(self.buckets - 1) as u32
    }

    /// The half-open range `[lo, hi)` covered by a bucket (the final bucket
    /// is closed).
    pub fn bucket_range(&self, id: u32) -> (f64, f64) {
        let lo = self.lo + id as f64 * self.width;
        (lo, lo + self.width)
    }

    /// Midpoint of a bucket, useful for weighted means over bucketized data.
    pub fn midpoint(&self, id: u32) -> f64 {
        let (lo, hi) = self.bucket_range(id);
        (lo + hi) / 2.0
    }

    /// Build the discrete [`Domain`] with range labels `"[lo,hi)"`.
    pub fn domain(&self, name: impl Into<String>) -> Domain {
        let labels = (0..self.buckets as u32)
            .map(|i| {
                let (lo, hi) = self.bucket_range(i);
                format!("[{lo:.1},{hi:.1})")
            })
            .collect();
        Domain::labeled(name, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_equi_width() {
        let b = Bucketizer::new(0.0, 100.0, 4);
        assert_eq!(b.bucket(0.0), 0);
        assert_eq!(b.bucket(24.9), 0);
        assert_eq!(b.bucket(25.0), 1);
        assert_eq!(b.bucket(99.9), 3);
        assert_eq!(b.bucket(100.0), 3); // closed final bucket
    }

    #[test]
    fn out_of_range_clamps() {
        let b = Bucketizer::new(0.0, 10.0, 2);
        assert_eq!(b.bucket(-5.0), 0);
        assert_eq!(b.bucket(50.0), 1);
    }

    #[test]
    fn fit_spans_observed_range() {
        let b = Bucketizer::fit(&[3.0, 7.0, 5.0], 2);
        assert_eq!(b.bucket(3.0), 0);
        assert_eq!(b.bucket(7.0), 1);
    }

    #[test]
    fn domain_labels_describe_ranges() {
        let b = Bucketizer::new(0.0, 2.0, 2);
        let d = b.domain("len");
        assert_eq!(d.size(), 2);
        assert_eq!(d.label(0), "[0.0,1.0)");
        assert_eq!(d.label(1), "[1.0,2.0)");
    }

    #[test]
    fn midpoints_are_centered() {
        let b = Bucketizer::new(0.0, 10.0, 5);
        assert!((b.midpoint(0) - 1.0).abs() < 1e-12);
        assert!((b.midpoint(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn fit_rejects_constant_data() {
        Bucketizer::fit(&[1.0, 1.0], 3);
    }
}
