//! Ingestion of raw tabular data (CSV-style) into discrete relations.
//!
//! Real deployments hand Themis a file of mixed categorical and numeric
//! columns. This module infers a [`Schema`]: categorical columns become
//! label domains in first-appearance order sorted lexicographically, and
//! numeric columns are equi-width bucketized (§3 footnote 2). The paper's
//! prototype preprocesses datasets exactly this way ("we preprocess the
//! datasets to remove null values and bucketize the real-valued attributes
//! into equi-width buckets", §6.2).

use crate::bucketize::Bucketizer;
use crate::domain::Domain;
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use std::fmt;

/// How one column should be ingested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColumnSpec {
    /// Treat values as categorical labels.
    Categorical,
    /// Parse values as `f64` and bucketize into this many equi-width
    /// buckets.
    Numeric {
        /// Number of buckets.
        buckets: usize,
    },
}

/// Ingestion error.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The input had no data rows.
    Empty,
    /// A row had the wrong number of fields.
    RaggedRow {
        /// 0-based data-row index.
        row: usize,
        /// Fields found.
        found: usize,
        /// Fields expected (header width).
        expected: usize,
    },
    /// A numeric column contained an unparsable value.
    BadNumber {
        /// Column name.
        column: String,
        /// Offending text.
        value: String,
    },
    /// A numeric column was constant, so equi-width bucketization is
    /// degenerate.
    ConstantNumeric {
        /// Column name.
        column: String,
    },
    /// A row contained a null/empty field (the paper drops such rows; we
    /// report them so callers can decide — [`ingest_csv`] drops them).
    SpecMismatch {
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Empty => write!(f, "no data rows"),
            IngestError::RaggedRow { row, found, expected } => {
                write!(f, "row {row}: {found} fields, expected {expected}")
            }
            IngestError::BadNumber { column, value } => {
                write!(f, "column {column}: cannot parse {value:?} as a number")
            }
            IngestError::ConstantNumeric { column } => {
                write!(f, "column {column}: constant numeric column cannot be bucketized")
            }
            IngestError::SpecMismatch { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Result of an ingestion: the relation plus bookkeeping.
#[derive(Debug, Clone)]
pub struct Ingested {
    /// The discrete relation (weights all 1).
    pub relation: Relation,
    /// Rows dropped because they contained empty/null fields.
    pub dropped_nulls: usize,
    /// The bucketizers used for numeric columns (by column index), for
    /// translating query constants later.
    pub bucketizers: Vec<Option<Bucketizer>>,
}

/// Parse one CSV line (no quoting — Themis inputs are machine-generated
/// extracts; a full RFC-4180 reader is out of scope).
fn split_line(line: &str) -> Vec<&str> {
    line.split(',').map(str::trim).collect()
}

/// Ingest CSV text: first line is the header, one [`ColumnSpec`] per
/// column. Rows containing empty fields are dropped (null removal, §6.2).
pub fn ingest_csv(text: &str, specs: &[ColumnSpec]) -> Result<Ingested, IngestError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header: Vec<String> = match lines.next() {
        Some(h) => split_line(h).into_iter().map(str::to_string).collect(),
        None => return Err(IngestError::Empty),
    };
    if header.len() != specs.len() {
        return Err(IngestError::SpecMismatch {
            message: format!(
                "{} columns in header but {} specs",
                header.len(),
                specs.len()
            ),
        });
    }

    // First pass: collect fields, dropping null rows.
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut dropped_nulls = 0usize;
    for (i, line) in lines.enumerate() {
        let fields = split_line(line);
        if fields.len() != header.len() {
            return Err(IngestError::RaggedRow {
                row: i,
                found: fields.len(),
                expected: header.len(),
            });
        }
        if fields.iter().any(|f| f.is_empty()) {
            dropped_nulls += 1;
            continue;
        }
        rows.push(fields.into_iter().map(str::to_string).collect());
    }
    if rows.is_empty() {
        return Err(IngestError::Empty);
    }

    // Second pass: build domains / bucketizers per column.
    let mut domains: Vec<Domain> = Vec::with_capacity(specs.len());
    let mut bucketizers: Vec<Option<Bucketizer>> = Vec::with_capacity(specs.len());
    for (c, spec) in specs.iter().enumerate() {
        match spec {
            ColumnSpec::Categorical => {
                let mut labels: Vec<String> = rows.iter().map(|r| r[c].clone()).collect();
                labels.sort();
                labels.dedup();
                domains.push(Domain::labeled(header[c].clone(), labels));
                bucketizers.push(None);
            }
            ColumnSpec::Numeric { buckets } => {
                let mut values = Vec::with_capacity(rows.len());
                for r in &rows {
                    let v: f64 = r[c].parse().map_err(|_| IngestError::BadNumber {
                        column: header[c].clone(),
                        value: r[c].clone(),
                    })?;
                    values.push(v);
                }
                let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                if hi <= lo {
                    return Err(IngestError::ConstantNumeric {
                        column: header[c].clone(),
                    });
                }
                let b = Bucketizer::new(lo, hi, *buckets);
                domains.push(b.domain(header[c].clone()));
                bucketizers.push(Some(b));
            }
        }
    }

    let schema = Schema::new(
        header
            .iter()
            .zip(domains)
            .map(|(name, d)| Attribute::new(name.clone(), d))
            .collect(),
    );
    let mut relation = Relation::with_capacity(schema.clone(), rows.len());
    let mut encoded = vec![0u32; specs.len()];
    for r in &rows {
        for (c, spec) in specs.iter().enumerate() {
            encoded[c] = match spec {
                ColumnSpec::Categorical => schema
                    .attr(crate::schema::AttrId(c))
                    .domain()
                    .id_of(&r[c])
                    .ok_or_else(|| IngestError::SpecMismatch {
                        message: format!(
                            "label `{}` missing from the first-pass domain of column `{}`",
                            r[c], header[c]
                        ),
                    })?,
                ColumnSpec::Numeric { .. } => {
                    let v: f64 = r[c].parse().map_err(|_| IngestError::BadNumber {
                        column: header[c].clone(),
                        value: r[c].clone(),
                    })?;
                    bucketizers[c]
                        .as_ref()
                        .ok_or_else(|| IngestError::SpecMismatch {
                            message: format!("no bucketizer for numeric column `{}`", header[c]),
                        })?
                        .bucket(v)
                }
            };
        }
        relation.push_row(&encoded);
    }

    Ok(Ingested {
        relation,
        dropped_nulls,
        bucketizers,
    })
}

/// Ingest with all columns categorical.
pub fn ingest_csv_categorical(text: &str, columns: usize) -> Result<Ingested, IngestError> {
    ingest_csv(text, &vec![ColumnSpec::Categorical; columns])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    const CSV: &str = "\
state,delay,month
CA,12.5,01
NY,3.0,02
CA,45.0,01
WA,30.0,03
";

    fn specs() -> Vec<ColumnSpec> {
        vec![
            ColumnSpec::Categorical,
            ColumnSpec::Numeric { buckets: 3 },
            ColumnSpec::Categorical,
        ]
    }

    #[test]
    fn ingests_mixed_columns() {
        let out = ingest_csv(CSV, &specs()).unwrap();
        let rel = &out.relation;
        assert_eq!(rel.len(), 4);
        assert_eq!(rel.schema().arity(), 3);
        // Categorical labels sorted: CA, NY, WA.
        let state = rel.schema().domain(AttrId(0));
        assert_eq!(state.labels(), &["CA", "NY", "WA"]);
        // Numeric column bucketized over [3, 45] into 3 buckets.
        let b = out.bucketizers[1].as_ref().unwrap();
        assert_eq!(b.buckets(), 3);
        assert_eq!(rel.value(0, AttrId(1)), b.bucket(12.5));
        assert_eq!(rel.value(2, AttrId(1)), 2); // 45 = max → last bucket
    }

    #[test]
    fn drops_null_rows() {
        let csv = "a,b\nx,1\n,2\ny,3\n";
        let out = ingest_csv(
            csv,
            &[ColumnSpec::Categorical, ColumnSpec::Numeric { buckets: 2 }],
        )
        .unwrap();
        assert_eq!(out.relation.len(), 2);
        assert_eq!(out.dropped_nulls, 1);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = ingest_csv("a,b\nx\n", &[ColumnSpec::Categorical; 2]).unwrap_err();
        assert!(matches!(err, IngestError::RaggedRow { row: 0, found: 1, expected: 2 }));
    }

    #[test]
    fn rejects_bad_numbers() {
        let err = ingest_csv(
            "a,b\nx,notanumber\n",
            &[ColumnSpec::Categorical, ColumnSpec::Numeric { buckets: 2 }],
        )
        .unwrap_err();
        assert!(matches!(err, IngestError::BadNumber { .. }));
    }

    #[test]
    fn rejects_constant_numeric() {
        let err = ingest_csv(
            "a,b\nx,5\ny,5\n",
            &[ColumnSpec::Categorical, ColumnSpec::Numeric { buckets: 2 }],
        )
        .unwrap_err();
        assert!(matches!(err, IngestError::ConstantNumeric { .. }));
    }

    #[test]
    fn empty_input_and_spec_mismatch() {
        assert!(matches!(
            ingest_csv("", &[ColumnSpec::Categorical]),
            Err(IngestError::Empty)
        ));
        assert!(matches!(
            ingest_csv("a,b\nx,y\n", &[ColumnSpec::Categorical]),
            Err(IngestError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn categorical_shortcut() {
        let out = ingest_csv_categorical("a,b\nx,p\ny,q\nx,p\n", 2).unwrap();
        assert_eq!(out.relation.len(), 3);
        assert_eq!(out.relation.group_row_counts(&[AttrId(0)]).len(), 2);
    }

    #[test]
    fn whitespace_is_trimmed() {
        let out = ingest_csv_categorical("a , b\n x , y \n", 2).unwrap();
        assert_eq!(out.relation.schema().attr(AttrId(0)).name(), "a");
        assert_eq!(out.relation.schema().domain(AttrId(0)).label(0), "x");
    }
}
