//! The CHILD Bayesian network dataset.
//!
//! The paper's pruning experiments (§6.8, Fig. 15) use data synthesized from
//! the 20-node CHILD network of the bnlearn repository. We reproduce the
//! published network *structure* exactly; the conditional probability tables
//! are generated deterministically from a fixed seed with strongly peaked
//! rows, which preserves the property Fig. 15 needs — a known ground-truth
//! network with non-trivial dependencies whose exact query answers can be
//! computed (see DESIGN.md §2).

use crate::domain::Domain;
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use rand::prelude::*;
use std::sync::Arc;

/// One node of the CHILD network.
#[derive(Debug, Clone)]
pub struct ChildNode {
    /// Node / attribute name.
    pub name: &'static str,
    /// Cardinality of the node's domain.
    pub card: usize,
    /// Parent node indices (into [`ChildNetwork::nodes`], which is
    /// topologically ordered).
    pub parents: Vec<usize>,
    /// Conditional probability table, laid out row-major:
    /// `cpt[config * card + value]` where `config` is the mixed-radix index
    /// of the parent assignment (first parent most significant).
    pub cpt: Vec<f64>,
}

/// The CHILD network: 20 nodes, published structure, seeded CPTs.
#[derive(Debug, Clone)]
pub struct ChildNetwork {
    /// Nodes in topological order.
    pub nodes: Vec<ChildNode>,
}

/// `(name, cardinality, parent names)` for the published CHILD structure,
/// listed in topological order.
const STRUCTURE: [(&str, usize, &[&str]); 20] = [
    ("BirthAsphyxia", 2, &[]),
    ("Disease", 6, &["BirthAsphyxia"]),
    ("Sick", 2, &["Disease"]),
    ("Age", 3, &["Disease", "Sick"]),
    ("LVH", 2, &["Disease"]),
    ("DuctFlow", 3, &["Disease"]),
    ("CardiacMixing", 4, &["Disease"]),
    ("LungParench", 3, &["Disease"]),
    ("LungFlow", 3, &["Disease"]),
    ("HypDistrib", 2, &["DuctFlow", "CardiacMixing"]),
    ("HypoxiaInO2", 3, &["CardiacMixing", "LungParench"]),
    ("CO2", 3, &["LungParench"]),
    ("ChestXray", 5, &["LungParench", "LungFlow"]),
    ("Grunting", 2, &["LungParench", "Sick"]),
    ("LVHreport", 2, &["LVH"]),
    ("LowerBodyO2", 3, &["HypDistrib", "HypoxiaInO2"]),
    ("RUQO2", 3, &["HypoxiaInO2"]),
    ("CO2Report", 2, &["CO2"]),
    ("XrayReport", 5, &["ChestXray"]),
    ("GruntingReport", 2, &["Grunting"]),
];

impl ChildNetwork {
    /// Build the network with the default CPT seed.
    pub fn new() -> Self {
        Self::with_seed(0x000C_411D)
    }

    /// Build the network with seeded CPTs. Every row of every CPT is peaked
    /// on a (config-dependent) preferred value so attributes are genuinely
    /// dependent on their parents.
    pub fn with_seed(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let name_index = |n: &str| {
            STRUCTURE
                .iter()
                .position(|(name, _, _)| *name == n)
                // themis-lint: allow(no-panic-in-libs) reason=parent names come from the const STRUCTURE table itself; a miss is a compile-time typo
                .unwrap_or_else(|| panic!("unknown CHILD node {n}"))
        };
        let nodes = STRUCTURE
            .iter()
            .map(|(name, card, parent_names)| {
                let parents: Vec<usize> = parent_names.iter().map(|p| name_index(p)).collect();
                let configs: usize = parents
                    .iter()
                    .map(|&p| STRUCTURE[p].1)
                    .product::<usize>()
                    .max(1);
                let mut cpt = Vec::with_capacity(configs * card);
                for _ in 0..configs {
                    cpt.extend(peaked_row(*card, &mut rng));
                }
                ChildNode {
                    name,
                    card: *card,
                    parents,
                    cpt,
                }
            })
            .collect();
        Self { nodes }
    }

    /// Number of nodes (20).
    pub fn arity(&self) -> usize {
        self.nodes.len()
    }

    /// Schema with one attribute per node, in topological node order.
    pub fn schema(&self) -> Arc<Schema> {
        Schema::new(
            self.nodes
                .iter()
                .map(|n| Attribute::new(n.name, Domain::indexed(n.name, n.card)))
                .collect(),
        )
    }

    /// Mixed-radix index of a parent assignment for `node`, first parent
    /// most significant.
    pub fn parent_config(&self, node: usize, values: &[u32]) -> usize {
        let n = &self.nodes[node];
        let mut idx = 0usize;
        for &p in &n.parents {
            idx = idx * self.nodes[p].card + values[p] as usize;
        }
        idx
    }

    /// Conditional probability `Pr(node = value | parents as in values)`.
    pub fn cond_prob(&self, node: usize, value: u32, values: &[u32]) -> f64 {
        let n = &self.nodes[node];
        let config = self.parent_config(node, values);
        n.cpt[config * n.card + value as usize]
    }

    /// Joint probability of a full assignment (one value per node, in node
    /// order).
    pub fn joint_prob(&self, values: &[u32]) -> f64 {
        assert_eq!(values.len(), self.nodes.len());
        (0..self.nodes.len())
            .map(|i| self.cond_prob(i, values[i], values))
            .product()
    }

    /// Ancestral (forward) sampling of `n` tuples.
    pub fn sample<R: Rng>(&self, n: usize, rng: &mut R) -> Relation {
        let mut rel = Relation::with_capacity(self.schema(), n);
        let mut values = vec![0u32; self.nodes.len()];
        for _ in 0..n {
            for (i, node) in self.nodes.iter().enumerate() {
                let config = self.parent_config(i, &values);
                let row = &node.cpt[config * node.card..(config + 1) * node.card];
                values[i] = sample_categorical(row, rng);
            }
            rel.push_row(&values);
        }
        rel
    }
}

impl Default for ChildNetwork {
    fn default() -> Self {
        Self::new()
    }
}

/// A probability row peaked on a random preferred value: the peak gets
/// 0.5–0.75 of the mass, the rest is spread by random proportions.
fn peaked_row<R: Rng>(card: usize, rng: &mut R) -> Vec<f64> {
    if card == 1 {
        return vec![1.0];
    }
    let peak = rng.gen_range(0..card);
    let peak_mass = rng.gen_range(0.5..0.75);
    let mut rest: Vec<f64> = (0..card - 1).map(|_| rng.gen_range(0.1..1.0)).collect();
    let rest_sum: f64 = rest.iter().sum();
    rest.iter_mut()
        .for_each(|r| *r *= (1.0 - peak_mass) / rest_sum);
    let mut row = Vec::with_capacity(card);
    let mut rest_iter = rest.into_iter();
    for v in 0..card {
        if v == peak {
            row.push(peak_mass);
        } else {
            // themis-lint: allow(no-panic-in-libs) reason=rest holds exactly card-1 entries and the loop takes one per non-peak value
            row.push(rest_iter.next().expect("rest has card-1 entries"));
        }
    }
    row
}

/// Sample an index from an explicit probability row.
fn sample_categorical<R: Rng>(probs: &[f64], rng: &mut R) -> u32 {
    let mut u: f64 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i as u32;
        }
    }
    (probs.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_twenty_topologically_ordered_nodes() {
        let net = ChildNetwork::new();
        assert_eq!(net.arity(), 20);
        for (i, node) in net.nodes.iter().enumerate() {
            for &p in &node.parents {
                assert!(p < i, "parent {p} of node {i} must precede it");
            }
        }
    }

    #[test]
    fn cpt_rows_are_distributions() {
        let net = ChildNetwork::new();
        for node in &net.nodes {
            let configs = node.cpt.len() / node.card;
            for c in 0..configs {
                let row = &node.cpt[c * node.card..(c + 1) * node.card];
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "{} config {c}: sum {sum}", node.name);
                assert!(row.iter().all(|&p| p >= 0.0));
            }
        }
    }

    #[test]
    fn sampling_matches_root_marginal() {
        let net = ChildNetwork::new();
        let mut rng = SmallRng::seed_from_u64(11);
        let data = net.sample(40_000, &mut rng);
        let counts = data.group_row_counts(&[crate::schema::AttrId(0)]);
        let p0 = counts.get(&vec![0]).copied().unwrap_or(0) as f64 / 40_000.0;
        let expected = net.nodes[0].cpt[0];
        assert!(
            (p0 - expected).abs() < 0.02,
            "empirical {p0} vs exact {expected}"
        );
    }

    #[test]
    fn joint_prob_multiplies_factors() {
        let net = ChildNetwork::new();
        let values = vec![0u32; 20];
        let expected: f64 = (0..20).map(|i| net.cond_prob(i, 0, &values)).product();
        assert!((net.joint_prob(&values) - expected).abs() < 1e-15);
    }

    #[test]
    fn cpts_are_deterministic_per_seed() {
        let a = ChildNetwork::with_seed(5);
        let b = ChildNetwork::with_seed(5);
        let c = ChildNetwork::with_seed(6);
        assert_eq!(a.nodes[1].cpt, b.nodes[1].cpt);
        assert_ne!(a.nodes[1].cpt, c.nodes[1].cpt);
    }

    #[test]
    fn schema_matches_cardinalities() {
        let net = ChildNetwork::new();
        let schema = net.schema();
        assert_eq!(schema.arity(), 20);
        assert_eq!(schema.attr_id("Disease").map(|a| schema.domain(a).size()), Some(6));
        assert_eq!(schema.attr_id("ChestXray").map(|a| schema.domain(a).size()), Some(5));
    }

    #[test]
    fn dependencies_are_nontrivial() {
        // Disease must actually depend on BirthAsphyxia: the two CPT rows
        // should differ substantially.
        let net = ChildNetwork::new();
        let d = &net.nodes[1];
        let row0 = &d.cpt[0..d.card];
        let row1 = &d.cpt[d.card..2 * d.card];
        let l1: f64 = row0.iter().zip(row1).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 > 0.2, "rows too similar: L1 = {l1}");
    }
}
