//! Synthetic population generators.
//!
//! The paper evaluates on three datasets: US domestic flights (2005), an
//! IMDB actor–movie join, and data sampled from the CHILD Bayesian network.
//! We do not have the original data, so each generator synthesizes a
//! population with the same schema shape and — critically — the same
//! *structural* properties the experiments exercise: skewed marginals,
//! cross-attribute correlations, a very dense attribute (IMDB's `name`), and
//! a known ground-truth network (CHILD). See DESIGN.md §2 for the full
//! substitution table.

pub mod child;
pub mod flights;
pub mod imdb;

pub use child::{ChildNetwork, ChildNode};
pub use flights::{FlightsConfig, FlightsDataset};
pub use imdb::{ImdbConfig, ImdbDataset};
