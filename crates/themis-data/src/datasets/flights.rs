//! Synthetic US-flights population.
//!
//! Stands in for the BTS 2005 flights dataset (n = 6,992,839) used in §6.2.
//! Attributes and abbreviations follow Table 2 of the paper:
//!
//! | attribute      | abrv | domain                          |
//! |----------------|------|---------------------------------|
//! | `fl_date`      | F    | 12 months                       |
//! | `origin_state` | O    | 20 states, Zipf-skewed traffic  |
//! | `dest_state`   | DE   | 20 states                       |
//! | `elapsed_time` | E    | 12 equi-width buckets           |
//! | `distance`     | DT   | 12 equi-width buckets           |
//!
//! The generator builds in the correlations the experiments rely on:
//! distance is determined by the origin/destination pair (plus noise),
//! elapsed time is strongly correlated with distance (the correlation that
//! makes LinReg reweighting misbehave in Fig. 14), and month has a seasonal
//! skew. The paper's biased samples are provided as
//! [`FlightsDataset::sample_unif`], [`sample_june`](FlightsDataset::sample_june),
//! [`sample_scorners`](FlightsDataset::sample_scorners), and
//! [`sample_corners`](FlightsDataset::sample_corners).

use crate::domain::Domain;
use crate::relation::Relation;
use crate::sampling::{RowFilter, SampleSpec};
use crate::schema::{AttrId, Attribute, Schema};
use rand::distributions::WeightedIndex;
use rand::prelude::*;
use std::sync::Arc;

/// The 20 states of the synthetic flights population; the first four are the
/// paper's "four corner" states CA, NY, FL, WA.
pub const STATES: [&str; 20] = [
    "CA", "NY", "FL", "WA", "TX", "IL", "GA", "CO", "AZ", "NC", "VA", "NV", "PA", "MN", "MI",
    "OH", "NJ", "MA", "OR", "UT",
];

/// Pseudo-geographic coordinate of each state on a west–east axis, used to
/// derive flight distances.
const STATE_POS: [f64; 20] = [
    0.0, 9.0, 8.5, 0.5, 5.0, 6.5, 7.8, 3.5, 1.5, 8.2, 8.6, 1.0, 8.8, 6.0, 7.0, 7.4, 9.2, 9.6,
    0.3, 2.0,
];

/// Seasonal month weights (summer-heavy, like real flight volumes).
const MONTH_WEIGHTS: [f64; 12] = [
    0.85, 0.80, 0.95, 1.00, 1.05, 1.30, 1.40, 1.35, 1.00, 0.95, 0.90, 1.05,
];

/// Number of elapsed-time and distance buckets.
pub const TIME_BUCKETS: usize = 12;

/// Configuration for the flights generator.
#[derive(Debug, Clone)]
pub struct FlightsConfig {
    /// Population size.
    pub n: usize,
    /// RNG seed for the population draw.
    pub seed: u64,
    /// Zipf exponent for origin-state popularity.
    pub zipf: f64,
    /// Sample fraction for the paper's samples (paper: 0.1).
    pub sample_fraction: f64,
}

impl Default for FlightsConfig {
    fn default() -> Self {
        Self {
            n: 500_000,
            seed: 0x7EE1_5F11,
            zipf: 0.9,
            sample_fraction: 0.1,
        }
    }
}

/// A generated flights population together with its schema handles.
#[derive(Debug, Clone)]
pub struct FlightsDataset {
    /// The full population `P`.
    pub population: Relation,
    config: FlightsConfig,
}

/// Attribute ids of the flights schema, in schema order.
#[derive(Debug, Clone, Copy)]
pub struct FlightsAttrs {
    /// `fl_date` (F)
    pub f: AttrId,
    /// `origin_state` (O)
    pub o: AttrId,
    /// `dest_state` (DE)
    pub de: AttrId,
    /// `elapsed_time` (E)
    pub e: AttrId,
    /// `distance` (DT)
    pub dt: AttrId,
}

impl FlightsDataset {
    /// The flights schema.
    pub fn schema() -> Arc<Schema> {
        let months: Vec<String> = (1..=12).map(|m| format!("{m:02}")).collect();
        Schema::new(vec![
            Attribute::new("fl_date", Domain::labeled("fl_date", months)),
            Attribute::new("origin_state", Domain::of("origin_state", &STATES)),
            Attribute::new("dest_state", Domain::of("dest_state", &STATES)),
            Attribute::new("elapsed_time", Domain::indexed("elapsed_time", TIME_BUCKETS)),
            Attribute::new("distance", Domain::indexed("distance", TIME_BUCKETS)),
        ])
    }

    /// Attribute-id handles into the schema.
    pub fn attrs() -> FlightsAttrs {
        FlightsAttrs {
            f: AttrId(0),
            o: AttrId(1),
            de: AttrId(2),
            e: AttrId(3),
            dt: AttrId(4),
        }
    }

    /// Generate the population.
    pub fn generate(config: FlightsConfig) -> Self {
        let schema = Self::schema();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut population = Relation::with_capacity(schema, config.n);

        // Zipf-skewed origin popularity over the 20 states.
        let origin_weights: Vec<f64> = (0..STATES.len())
            .map(|i| 1.0 / ((i + 1) as f64).powf(config.zipf))
            .collect();
        // themis-lint: allow(no-panic-in-libs) reason=weights are strictly positive Zipf terms and a const table, so construction cannot fail
        let origin_dist = WeightedIndex::new(&origin_weights).expect("valid weights");
        // themis-lint: allow(no-panic-in-libs) reason=MONTH_WEIGHTS is a const table of positive weights
        let month_dist = WeightedIndex::new(MONTH_WEIGHTS).expect("valid weights");

        let mut row = [0u32; 5];
        for _ in 0..config.n {
            let o = origin_dist.sample(&mut rng);
            // Destinations mix short-haul affinity with the global skew.
            let de = if rng.gen_bool(0.3) {
                // Short-haul: a state geographically near the origin.
                nearest_state(o, rng.gen_range(0..4))
            } else {
                origin_dist.sample(&mut rng)
            };

            // Distance bucket from pseudo-geography plus noise.
            let geo = (STATE_POS[o] - STATE_POS[de]).abs() / 9.6; // 0..1
            let base = (geo * (TIME_BUCKETS - 2) as f64).round() as i64;
            let dt = (base + rng.gen_range(-1i64..=1)).clamp(0, TIME_BUCKETS as i64 - 1) as u32;

            // Elapsed time strongly correlated with distance (±1 bucket).
            let jitter = [-1i64, 0, 0, 0, 1][rng.gen_range(0..5usize)];
            let e = (dt as i64 + jitter).clamp(0, TIME_BUCKETS as i64 - 1) as u32;

            // Seasonal month; southern states skew slightly to winter.
            let mut month = month_dist.sample(&mut rng);
            if matches!(STATES[o], "FL" | "AZ" | "TX") && rng.gen_bool(0.2) {
                month = rng.gen_range(0..3); // Jan-Mar tourist season
            }

            row[0] = month as u32;
            row[1] = o as u32;
            row[2] = de as u32;
            row[3] = e;
            row[4] = dt;
            population.push_row(&row);
        }

        Self { population, config }
    }

    /// The paper's `Unif` sample: uniform `sample_fraction` of the
    /// population.
    pub fn sample_unif<R: Rng>(&self, rng: &mut R) -> Relation {
        SampleSpec::uniform(self.config.sample_fraction).draw(&self.population, rng)
    }

    /// The paper's `June` sample: 90% of rows have flight month June.
    pub fn sample_june<R: Rng>(&self, rng: &mut R) -> Relation {
        self.sample_biased_on_month(5, 0.9, rng)
    }

    /// A month-biased sample with explicit bias level.
    pub fn sample_biased_on_month<R: Rng>(&self, month: u32, bias: f64, rng: &mut R) -> Relation {
        let filter = RowFilter::Eq(Self::attrs().f, month);
        SampleSpec::biased(self.config.sample_fraction, filter, bias).draw(&self.population, rng)
    }

    /// The paper's `SCorners` sample: 90% of rows originate from one of the
    /// four corner states (CA, NY, FL, WA).
    pub fn sample_scorners<R: Rng>(&self, rng: &mut R) -> Relation {
        self.sample_corners_with_bias(0.9, rng)
    }

    /// The paper's `Corners` sample: 100%-biased corner-state selection; the
    /// sample's support differs from the population's.
    pub fn sample_corners<R: Rng>(&self, rng: &mut R) -> Relation {
        self.sample_corners_with_bias(1.0, rng)
    }

    /// Corner-state sample with an explicit bias level (used for the Fig. 5
    /// bias sweep from 1.0 down to 0.9).
    pub fn sample_corners_with_bias<R: Rng>(&self, bias: f64, rng: &mut R) -> Relation {
        let filter = RowFilter::In(Self::attrs().o, vec![0, 1, 2, 3]);
        SampleSpec::biased(self.config.sample_fraction, filter, bias).draw(&self.population, rng)
    }

    /// Population size `n`.
    pub fn population_size(&self) -> usize {
        self.population.len()
    }
}

/// The `k`-th nearest state to `origin` by the west–east coordinate
/// (excluding the origin itself).
fn nearest_state(origin: usize, k: usize) -> usize {
    let mut others: Vec<usize> = (0..STATES.len()).filter(|&s| s != origin).collect();
    others.sort_by(|&a, &b| {
        let da = (STATE_POS[a] - STATE_POS[origin]).abs();
        let db = (STATE_POS[b] - STATE_POS[origin]).abs();
        da.total_cmp(&db)
    });
    others[k.min(others.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FlightsDataset {
        FlightsDataset::generate(FlightsConfig {
            n: 20_000,
            ..Default::default()
        })
    }

    #[test]
    fn generates_requested_size() {
        let d = small();
        assert_eq!(d.population.len(), 20_000);
    }

    #[test]
    fn origin_states_are_zipf_skewed() {
        let d = small();
        let counts = d.population.group_counts(&[FlightsDataset::attrs().o]);
        let ca = counts.get(&vec![0]).copied().unwrap_or(0.0);
        let ut = counts.get(&vec![19]).copied().unwrap_or(0.0);
        assert!(ca > 3.0 * ut, "CA ({ca}) should dominate UT ({ut})");
    }

    #[test]
    fn elapsed_time_tracks_distance() {
        let d = small();
        let a = FlightsDataset::attrs();
        let mut close = 0usize;
        for r in 0..d.population.len() {
            let e = d.population.value(r, a.e) as i64;
            let dt = d.population.value(r, a.dt) as i64;
            if (e - dt).abs() <= 1 {
                close += 1;
            }
        }
        assert_eq!(close, d.population.len(), "E must be within 1 bucket of DT");
    }

    #[test]
    fn corners_sample_is_pure_selection() {
        let d = small();
        let mut rng = SmallRng::seed_from_u64(7);
        let s = d.sample_corners(&mut rng);
        let a = FlightsDataset::attrs();
        for r in 0..s.len() {
            assert!(s.value(r, a.o) < 4, "corners sample must only hold corner origins");
        }
    }

    #[test]
    fn scorners_sample_is_ninety_percent_biased() {
        let d = small();
        let mut rng = SmallRng::seed_from_u64(8);
        let s = d.sample_scorners(&mut rng);
        let a = FlightsDataset::attrs();
        let corners = (0..s.len()).filter(|&r| s.value(r, a.o) < 4).count();
        let frac = corners as f64 / s.len() as f64;
        assert!((frac - 0.9).abs() < 0.02, "corner fraction {frac} should be ~0.9");
    }

    #[test]
    fn june_sample_is_month_biased() {
        let d = small();
        let mut rng = SmallRng::seed_from_u64(9);
        let s = d.sample_june(&mut rng);
        let a = FlightsDataset::attrs();
        let june = (0..s.len()).filter(|&r| s.value(r, a.f) == 5).count();
        let frac = june as f64 / s.len() as f64;
        assert!(frac > 0.85, "June fraction {frac} should be ~0.9");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = FlightsDataset::generate(FlightsConfig {
            n: 1000,
            ..Default::default()
        });
        let b = FlightsDataset::generate(FlightsConfig {
            n: 1000,
            ..Default::default()
        });
        for r in (0..1000).step_by(97) {
            assert_eq!(a.population.row(r), b.population.row(r));
        }
    }
}
