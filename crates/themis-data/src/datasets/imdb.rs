//! Synthetic IMDB actor–movie population.
//!
//! Stands in for the IMDB dataset of §6.2 (actor–movie pairs released in the
//! US, Great Britain, and Canada; n = 846,380). Attributes follow Table 2:
//!
//! | attribute       | abrv | domain                                   |
//! |-----------------|------|------------------------------------------|
//! | `movie_year`    | MY   | 15 year buckets                          |
//! | `movie_country` | MC   | {US, GB, CA}, skewed                     |
//! | `name`          | N    | very dense (default 20,000 actor names)  |
//! | `gender`        | G    | {M, F}                                   |
//! | `actor_birth`   | B    | 15 year buckets, correlated with MY      |
//! | `rating`        | RG   | 10 ratings (1..10), unimodal, MC-shifted |
//! | `top_250_rank`  | TR   | {unranked, decile 1..10}, mostly unranked|
//! | `runtime`       | RT   | 12 buckets, correlated with MY and RG    |
//!
//! The dense `N` attribute reproduces the paper's key IMDB failure mode: a
//! Bayesian network learns `N` as (nearly) uniform and badly underestimates
//! point queries over it (§6.4). The paper's aggregates only ever cover
//! {MY, MC, G, RG, RT}, exercising non-covering aggregate sets.

use crate::domain::Domain;
use crate::relation::Relation;
use crate::sampling::{RowFilter, SampleSpec};
use crate::schema::{AttrId, Attribute, Schema};
use rand::distributions::WeightedIndex;
use rand::prelude::*;
use std::sync::Arc;

/// Number of movie-year and actor-birth buckets.
pub const YEAR_BUCKETS: usize = 15;
/// Number of runtime buckets.
pub const RUNTIME_BUCKETS: usize = 12;
/// Number of distinct ratings.
pub const RATINGS: usize = 10;

/// Configuration for the IMDB generator.
#[derive(Debug, Clone)]
pub struct ImdbConfig {
    /// Population size.
    pub n: usize,
    /// Number of distinct actor names (the dense `N` domain). The paper's
    /// dataset has ~48,000; default here is 20,000.
    pub names: usize,
    /// RNG seed.
    pub seed: u64,
    /// Sample fraction for the paper's samples (paper: 0.1).
    pub sample_fraction: f64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        Self {
            n: 200_000,
            names: 20_000,
            seed: 0x1_4DB5,
            sample_fraction: 0.1,
        }
    }
}

/// Attribute ids of the IMDB schema, in schema order.
#[derive(Debug, Clone, Copy)]
pub struct ImdbAttrs {
    /// `movie_year` (MY)
    pub my: AttrId,
    /// `movie_country` (MC)
    pub mc: AttrId,
    /// `name` (N)
    pub n: AttrId,
    /// `gender` (G)
    pub g: AttrId,
    /// `actor_birth` (B)
    pub b: AttrId,
    /// `rating` (RG)
    pub rg: AttrId,
    /// `top_250_rank` (TR)
    pub tr: AttrId,
    /// `runtime` (RT)
    pub rt: AttrId,
}

/// A generated IMDB population.
#[derive(Debug, Clone)]
pub struct ImdbDataset {
    /// The full population `P`.
    pub population: Relation,
    config: ImdbConfig,
}

impl ImdbDataset {
    /// Build the IMDB schema for a given dense-name domain size.
    pub fn schema(names: usize) -> Arc<Schema> {
        Schema::new(vec![
            Attribute::new("movie_year", Domain::indexed("movie_year", YEAR_BUCKETS)),
            Attribute::new("movie_country", Domain::of("movie_country", &["US", "GB", "CA"])),
            Attribute::new("name", Domain::indexed("name", names)),
            Attribute::new("gender", Domain::of("gender", &["M", "F"])),
            Attribute::new("actor_birth", Domain::indexed("actor_birth", YEAR_BUCKETS)),
            Attribute::new(
                "rating",
                Domain::labeled("rating", (1..=RATINGS).map(|r| r.to_string()).collect()),
            ),
            Attribute::new("top_250_rank", Domain::indexed("top_250_rank", 11)),
            Attribute::new("runtime", Domain::indexed("runtime", RUNTIME_BUCKETS)),
        ])
    }

    /// Attribute-id handles into the schema.
    pub fn attrs() -> ImdbAttrs {
        ImdbAttrs {
            my: AttrId(0),
            mc: AttrId(1),
            n: AttrId(2),
            g: AttrId(3),
            b: AttrId(4),
            rg: AttrId(5),
            tr: AttrId(6),
            rt: AttrId(7),
        }
    }

    /// Generate the population.
    pub fn generate(config: ImdbConfig) -> Self {
        let schema = Self::schema(config.names);
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut population = Relation::with_capacity(schema, config.n);

        // Movie years skew recent.
        let year_weights: Vec<f64> = (0..YEAR_BUCKETS).map(|i| 0.5 + i as f64 * 0.15).collect();
        // themis-lint: allow(no-panic-in-libs) reason=year weights are strictly positive by construction
        let year_dist = WeightedIndex::new(&year_weights).expect("valid weights");
        // Country skew: mostly US.
        // themis-lint: allow(no-panic-in-libs) reason=country weights are a positive literal array
        let country_dist = WeightedIndex::new([0.62, 0.23, 0.15]).expect("valid weights");
        // Actor names: Zipf-skewed over a dense domain (prolific actors).
        let name_weights: Vec<f64> = (0..config.names)
            .map(|i| 1.0 / ((i + 1) as f64).powf(1.07))
            .collect();
        // themis-lint: allow(no-panic-in-libs) reason=Zipf name weights are strictly positive for every domain size
        let name_dist = WeightedIndex::new(&name_weights).expect("valid weights");

        let mut row = [0u32; 8];
        for _ in 0..config.n {
            let my = year_dist.sample(&mut rng);
            let mc = country_dist.sample(&mut rng);
            let name = name_dist.sample(&mut rng);
            let g = usize::from(rng.gen_bool(0.35)); // 0 = M, 1 = F

            // Actors are typically born ~2 buckets before their movies.
            let b = (my as i64 - 2 + rng.gen_range(-2i64..=1)).clamp(0, YEAR_BUCKETS as i64 - 1);

            // Ratings unimodal around 6, GB slightly higher, CA slightly
            // lower (MC↔RG correlation, the SR159 bias attribute).
            let shift: i64 = match mc {
                1 => 1,
                2 => -1,
                _ => 0,
            };
            let base: i64 = 5 + shift;
            let spread = rng.gen_range(-3i64..=3) + rng.gen_range(-2i64..=2);
            let rg = (base + spread / 2).clamp(0, RATINGS as i64 - 1);

            // Only highly rated movies enter the top 250 (TR 0 = unranked).
            let tr = if rg >= 8 && rng.gen_bool(0.25) {
                rng.gen_range(1..=10)
            } else {
                0
            };

            // Runtime grows with year and rating.
            let rt = ((my as f64 * 0.45) + (rg as f64 * 0.35) + rng.gen_range(-1.5f64..=1.5))
                .round()
                .clamp(0.0, RUNTIME_BUCKETS as f64 - 1.0) as u32;

            row[0] = my as u32;
            row[1] = mc as u32;
            row[2] = name as u32;
            row[3] = g as u32;
            row[4] = b as u32;
            row[5] = rg as u32;
            row[6] = tr as u32;
            row[7] = rt;
            population.push_row(&row);
        }

        Self { population, config }
    }

    /// The paper's `Unif` sample.
    pub fn sample_unif<R: Rng>(&self, rng: &mut R) -> Relation {
        SampleSpec::uniform(self.config.sample_fraction).draw(&self.population, rng)
    }

    /// The paper's `GB` sample: 90% of rows have movie country Great
    /// Britain.
    pub fn sample_gb<R: Rng>(&self, rng: &mut R) -> Relation {
        let filter = RowFilter::Eq(Self::attrs().mc, 1);
        SampleSpec::biased(self.config.sample_fraction, filter, 0.9).draw(&self.population, rng)
    }

    /// The paper's `SR159` sample: 90% of rows have rating 1, 5, or 9.
    pub fn sample_sr159<R: Rng>(&self, rng: &mut R) -> Relation {
        self.sample_r159_with_bias(0.9, rng)
    }

    /// The paper's `R159` sample: a pure (100%-biased) selection of ratings
    /// 1, 5, 9 — support differs from the population.
    pub fn sample_r159<R: Rng>(&self, rng: &mut R) -> Relation {
        self.sample_r159_with_bias(1.0, rng)
    }

    /// Ratings-{1,5,9} sample with an explicit bias level.
    pub fn sample_r159_with_bias<R: Rng>(&self, bias: f64, rng: &mut R) -> Relation {
        // Ratings 1, 5, 9 are domain ids 0, 4, 8.
        let filter = RowFilter::In(Self::attrs().rg, vec![0, 4, 8]);
        SampleSpec::biased(self.config.sample_fraction, filter, bias).draw(&self.population, rng)
    }

    /// Population size `n`.
    pub fn population_size(&self) -> usize {
        self.population.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ImdbDataset {
        ImdbDataset::generate(ImdbConfig {
            n: 20_000,
            names: 2_000,
            ..Default::default()
        })
    }

    #[test]
    fn generates_requested_size_and_arity() {
        let d = small();
        assert_eq!(d.population.len(), 20_000);
        assert_eq!(d.population.schema().arity(), 8);
    }

    #[test]
    fn names_are_dense_and_skewed() {
        let d = small();
        let counts = d.population.group_row_counts(&[ImdbDataset::attrs().n]);
        assert!(counts.len() > 1_000, "should touch many distinct names");
        let top = counts.values().max().copied().unwrap();
        assert!(top > 50, "most prolific actor should dominate");
    }

    #[test]
    fn gb_movies_rate_higher_than_ca() {
        let d = small();
        let a = ImdbDataset::attrs();
        let mean_rating = |mc: u32| {
            let mut sum = 0.0;
            let mut cnt = 0.0;
            for r in 0..d.population.len() {
                if d.population.value(r, a.mc) == mc {
                    sum += d.population.value(r, a.rg) as f64;
                    cnt += 1.0;
                }
            }
            sum / cnt
        };
        assert!(mean_rating(1) > mean_rating(2), "GB should out-rate CA");
    }

    #[test]
    fn top250_requires_high_rating() {
        let d = small();
        let a = ImdbDataset::attrs();
        for r in 0..d.population.len() {
            if d.population.value(r, a.tr) != 0 {
                assert!(d.population.value(r, a.rg) >= 8);
            }
        }
    }

    #[test]
    fn r159_sample_only_holds_selected_ratings() {
        let d = small();
        let mut rng = SmallRng::seed_from_u64(3);
        let s = d.sample_r159(&mut rng);
        let a = ImdbDataset::attrs();
        for r in 0..s.len() {
            assert!(matches!(s.value(r, a.rg), 0 | 4 | 8));
        }
    }

    #[test]
    fn gb_sample_is_country_biased() {
        let d = small();
        let mut rng = SmallRng::seed_from_u64(4);
        let s = d.sample_gb(&mut rng);
        let a = ImdbDataset::attrs();
        let gb = (0..s.len()).filter(|&r| s.value(r, a.mc) == 1).count();
        assert!(gb as f64 / s.len() as f64 > 0.85);
    }
}
