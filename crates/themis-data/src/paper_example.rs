//! The running example from the paper (Example 3.1): a toy population and
//! biased sample of domestic US flights.
//!
//! Exposed publicly because downstream crates use it to verify their
//! algorithms against the worked examples in the paper (Examples 4.1, 4.2,
//! and 5.1 all build on this data).

use crate::domain::Domain;
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use std::sync::Arc;

/// Schema of Example 3.1: `date ∈ {01, 02}`, `o_st, d_st ∈ {FL, NC, NY}`.
pub fn example_schema() -> Arc<Schema> {
    Schema::new(vec![
        Attribute::new("date", Domain::of("date", &["01", "02"])),
        Attribute::new("o_st", Domain::of("o_st", &["FL", "NC", "NY"])),
        Attribute::new("d_st", Domain::of("d_st", &["FL", "NC", "NY"])),
    ])
}

/// The 10-tuple population `P` of Example 3.1.
pub fn example_population() -> Relation {
    let mut p = Relation::new(example_schema());
    for row in [
        ["01", "FL", "FL"],
        ["01", "FL", "FL"],
        ["02", "FL", "NY"],
        ["01", "NC", "FL"],
        ["02", "NC", "NY"],
        ["02", "NC", "NY"],
        ["02", "NC", "NY"],
        ["01", "NY", "FL"],
        ["01", "NY", "NC"],
        ["02", "NY", "NY"],
    ] {
        p.push_row_labels(&row);
    }
    p
}

/// The 4-tuple sample `S` of Example 3.1 (drawn non-uniformly from `P`).
pub fn example_sample() -> Relation {
    let mut s = Relation::new(example_schema());
    for row in [
        ["01", "FL", "FL"],
        ["01", "FL", "FL"],
        ["02", "NC", "NY"],
        ["01", "NY", "NC"],
    ] {
        s.push_row_labels(&row);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    #[test]
    fn sizes_match_paper() {
        assert_eq!(example_population().len(), 10);
        assert_eq!(example_sample().len(), 4);
    }

    #[test]
    fn sample_is_subset_of_population() {
        let p = example_population();
        let s = example_sample();
        let attrs: Vec<AttrId> = p.schema().attr_ids().collect();
        for row in 0..s.len() {
            let vals = s.row(row);
            assert!(p.contains_point(&attrs, &vals));
        }
    }
}
