//! Weighted columnar relations.
//!
//! Themis treats every relation as a sample: each tuple `t` carries a weight
//! `w(t)` giving the number of population tuples it represents (§4.1).
//! Queries over the population are answered by translating `COUNT(*)` into
//! `SUM(weight)`. A freshly built [`Relation`] has all weights set to 1.

use crate::schema::{AttrId, Schema};
use std::collections::HashMap;
use std::sync::Arc;

/// A group-by key: the attribute values of one group, in the order of the
/// grouping attributes.
pub type GroupKey = Vec<u32>;

/// A weighted, column-oriented relation over a [`Schema`].
///
/// Values are dense domain ids (see [`crate::Domain`]); each row also has a
/// `f64` weight. Storage is one `Vec<u32>` per attribute, which keeps point
/// and group-by scans cache friendly.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    columns: Vec<Vec<u32>>,
    weights: Vec<f64>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new(schema: Arc<Schema>) -> Self {
        let columns = (0..schema.arity()).map(|_| Vec::new()).collect();
        Self {
            schema,
            columns,
            weights: Vec::new(),
        }
    }

    /// Create an empty relation with row capacity pre-reserved.
    pub fn with_capacity(schema: Arc<Schema>, rows: usize) -> Self {
        let columns = (0..schema.arity())
            .map(|_| Vec::with_capacity(rows))
            .collect();
        Self {
            schema,
            columns,
            weights: Vec::with_capacity(rows),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Append a row with weight 1.
    ///
    /// # Panics
    /// Panics if `values` does not match the schema arity or contains a value
    /// outside its attribute's active domain.
    pub fn push_row(&mut self, values: &[u32]) {
        self.push_row_weighted(values, 1.0);
    }

    /// Append a row with an explicit weight.
    pub fn push_row_weighted(&mut self, values: &[u32], weight: f64) {
        assert_eq!(
            values.len(),
            self.schema.arity(),
            "row arity mismatch: got {}, schema has {}",
            values.len(),
            self.schema.arity()
        );
        for (i, (&v, col)) in values.iter().zip(&mut self.columns).enumerate() {
            debug_assert!(
                self.schema.attr(AttrId(i)).domain().contains(v),
                "value {v} out of domain for attribute {}",
                self.schema.attr(AttrId(i)).name()
            );
            col.push(v);
        }
        self.weights.push(weight);
    }

    /// Append a row given as labels, resolving each against its domain.
    ///
    /// Convenience for tests and examples.
    ///
    /// # Panics
    /// Panics if a label is unknown.
    pub fn push_row_labels(&mut self, labels: &[&str]) {
        let values: Vec<u32> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                self.schema
                    .attr(AttrId(i))
                    .domain()
                    .id_of(l)
                    // themis-lint: allow(no-panic-in-libs) reason=documented `# Panics` convenience for tests and examples; production ingest goes through ingest_csv
                    .unwrap_or_else(|| panic!("unknown label {l} for attribute {i}"))
            })
            .collect();
        self.push_row(&values);
    }

    /// Column of values for an attribute.
    pub fn column(&self, attr: AttrId) -> &[u32] {
        &self.columns[attr.0]
    }

    /// Value at `(row, attr)`.
    pub fn value(&self, row: usize, attr: AttrId) -> u32 {
        self.columns[attr.0][row]
    }

    /// The full row as a vector of value ids.
    pub fn row(&self, row: usize) -> Vec<u32> {
        self.columns.iter().map(|c| c[row]).collect()
    }

    /// Row weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mutable row weights.
    pub fn weights_mut(&mut self) -> &mut [f64] {
        &mut self.weights
    }

    /// Replace all weights.
    ///
    /// # Panics
    /// Panics if `weights.len() != self.len()`.
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.len(), "weight vector length mismatch");
        self.weights = weights;
    }

    /// Reset every weight to `w`.
    pub fn fill_weights(&mut self, w: f64) {
        self.weights.iter_mut().for_each(|x| *x = w);
    }

    /// Sum of all weights (the relation's estimate of the population size).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Multiply every weight so that the total equals `target`.
    ///
    /// This is the sum-normalization step of §4.1.1: after learning `w(t)`,
    /// weights are rescaled so `Σ_t w(t) = n`.
    ///
    /// # Panics
    /// Panics if the current total weight is zero.
    pub fn normalize_weights_to(&mut self, target: f64) {
        let total = self.total_weight();
        assert!(total > 0.0, "cannot normalize zero total weight");
        let scale = target / total;
        self.weights.iter_mut().for_each(|w| *w *= scale);
    }

    /// Weighted count of rows matching a conjunctive point predicate
    /// `A_{attrs[0]} = values[0] AND ...` — the paper's d-dimensional point
    /// query `SELECT SUM(weight) WHERE ...`.
    pub fn point_count(&self, attrs: &[AttrId], values: &[u32]) -> f64 {
        assert_eq!(attrs.len(), values.len());
        let mut total = 0.0;
        'rows: for row in 0..self.len() {
            for (a, &v) in attrs.iter().zip(values) {
                if self.columns[a.0][row] != v {
                    continue 'rows;
                }
            }
            total += self.weights[row];
        }
        total
    }

    /// Whether any row matches the conjunctive point predicate.
    pub fn contains_point(&self, attrs: &[AttrId], values: &[u32]) -> bool {
        assert_eq!(attrs.len(), values.len());
        'rows: for row in 0..self.len() {
            for (a, &v) in attrs.iter().zip(values) {
                if self.columns[a.0][row] != v {
                    continue 'rows;
                }
            }
            return true;
        }
        false
    }

    /// Weighted `GROUP BY attrs, COUNT(*)`: map from group key to
    /// `SUM(weight)`.
    pub fn group_counts(&self, attrs: &[AttrId]) -> HashMap<GroupKey, f64> {
        let mut out: HashMap<GroupKey, f64> = HashMap::new();
        let mut key = vec![0u32; attrs.len()];
        for row in 0..self.len() {
            for (i, a) in attrs.iter().enumerate() {
                key[i] = self.columns[a.0][row];
            }
            *out.entry(key.clone()).or_insert(0.0) += self.weights[row];
        }
        out
    }

    /// Unweighted `GROUP BY attrs, COUNT(*)`: map from group key to the
    /// number of sample rows in the group.
    pub fn group_row_counts(&self, attrs: &[AttrId]) -> HashMap<GroupKey, usize> {
        let mut out: HashMap<GroupKey, usize> = HashMap::new();
        let mut key = vec![0u32; attrs.len()];
        for row in 0..self.len() {
            for (i, a) in attrs.iter().enumerate() {
                key[i] = self.columns[a.0][row];
            }
            *out.entry(key.clone()).or_insert(0) += 1;
        }
        out
    }

    /// Build a new relation containing the given rows (weights preserved).
    pub fn select_rows(&self, rows: &[usize]) -> Relation {
        let mut out = Relation::with_capacity(self.schema.clone(), rows.len());
        for &r in rows {
            let vals = self.row(r);
            out.push_row_weighted(&vals, self.weights[r]);
        }
        out
    }

    /// Iterate over `(row_values, weight)` pairs.
    pub fn iter_rows(&self) -> impl Iterator<Item = (Vec<u32>, f64)> + '_ {
        (0..self.len()).map(move |r| (self.row(r), self.weights[r]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::example_population;

    #[test]
    fn push_and_read_rows() {
        let p = example_population();
        assert_eq!(p.len(), 10);
        assert_eq!(p.row(2), vec![1, 0, 2]); // 02, FL, NY
        assert_eq!(p.value(3, AttrId(1)), 1); // NC
        assert_eq!(p.total_weight(), 10.0);
    }

    #[test]
    fn point_count_matches_example() {
        let p = example_population();
        // date = 01 has 5 flights.
        assert_eq!(p.point_count(&[AttrId(0)], &[0]), 5.0);
        // o_st = NC, d_st = NY has 3 flights.
        assert_eq!(p.point_count(&[AttrId(1), AttrId(2)], &[1, 2]), 3.0);
        // o_st = FL, d_st = NC does not occur.
        assert_eq!(p.point_count(&[AttrId(1), AttrId(2)], &[0, 1]), 0.0);
        assert!(!p.contains_point(&[AttrId(1), AttrId(2)], &[0, 1]));
        assert!(p.contains_point(&[AttrId(1), AttrId(2)], &[1, 2]));
    }

    #[test]
    fn group_counts_match_example_aggregates() {
        let p = example_population();
        let g1 = p.group_counts(&[AttrId(0)]);
        assert_eq!(g1[&vec![0]], 5.0);
        assert_eq!(g1[&vec![1]], 5.0);
        let g2 = p.group_counts(&[AttrId(1), AttrId(2)]);
        assert_eq!(g2.len(), 7);
        assert_eq!(g2[&vec![0, 0]], 2.0); // FL,FL -> 2
        assert_eq!(g2[&vec![1, 2]], 3.0); // NC,NY -> 3
    }

    #[test]
    fn weights_normalize_to_population_size() {
        let mut p = example_population();
        p.set_weights(vec![2.0; 10]);
        p.normalize_weights_to(10.0);
        assert!((p.total_weight() - 10.0).abs() < 1e-12);
        assert!(p.weights().iter().all(|&w| (w - 1.0).abs() < 1e-12));
    }

    #[test]
    fn select_rows_preserves_weights() {
        let mut p = example_population();
        p.weights_mut()[3] = 7.0;
        let s = p.select_rows(&[3, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.weights(), &[7.0, 1.0]);
        assert_eq!(s.row(0), p.row(3));
    }

    #[test]
    fn group_row_counts_ignores_weights() {
        let mut p = example_population();
        p.fill_weights(5.0);
        let g = p.group_row_counts(&[AttrId(0)]);
        assert_eq!(g[&vec![0]], 5);
        assert_eq!(g[&vec![1]], 5);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn rejects_wrong_arity() {
        let mut p = example_population();
        p.push_row(&[0, 0]);
    }
}
