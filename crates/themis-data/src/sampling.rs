//! Biased sampling mechanisms.
//!
//! The paper's evaluation (§6.2) draws samples from each population with a
//! *selection bias*: an `X` percent sample with a `Y` percent bias means the
//! sample holds `X%` of the population rows and `Y%` of those rows satisfy a
//! selection criterion (e.g. "flight month is June" or "origin state is one
//! of CA, NY, FL, WA"). A 100-percent bias corresponds to a pure selection
//! (the paper's Corners / R159 samples): tuples outside the criterion have
//! zero sampling probability, so the sample's support differs from the
//! population's.
//!
//! The sampling probability `Pr_S(t)` is never exposed to the debiasing
//! algorithms — knowing it would make the Horvitz-Thompson estimator
//! applicable and defeat the point of the system.

use crate::relation::Relation;
use crate::schema::AttrId;
use rand::seq::SliceRandom;
use rand::Rng;

/// A simple row-level selection criterion used to induce sample bias.
#[derive(Debug, Clone, PartialEq)]
pub enum RowFilter {
    /// Attribute equals a value.
    Eq(AttrId, u32),
    /// Attribute value is in a set.
    In(AttrId, Vec<u32>),
    /// Conjunction of filters.
    And(Vec<RowFilter>),
}

impl RowFilter {
    /// Whether the filter matches `row` of `rel`.
    pub fn matches(&self, rel: &Relation, row: usize) -> bool {
        match self {
            RowFilter::Eq(a, v) => rel.value(row, *a) == *v,
            RowFilter::In(a, vs) => vs.contains(&rel.value(row, *a)),
            RowFilter::And(fs) => fs.iter().all(|f| f.matches(rel, row)),
        }
    }
}

/// Specification of a biased sample draw.
#[derive(Debug, Clone)]
pub struct SampleSpec {
    /// Fraction of the population to include, in `(0, 1]`.
    pub fraction: f64,
    /// Bias and its selection criterion: `Some((criterion, bias))` draws
    /// `bias` of the sample rows from tuples matching the criterion
    /// (`bias = 1.0` is a pure selection); `None` draws uniformly.
    pub bias: Option<(RowFilter, f64)>,
}

impl SampleSpec {
    /// A uniform sample of the given fraction.
    pub fn uniform(fraction: f64) -> Self {
        Self {
            fraction,
            bias: None,
        }
    }

    /// A biased sample: `bias` of the rows match `filter`, the rest are
    /// drawn from the complement.
    pub fn biased(fraction: f64, filter: RowFilter, bias: f64) -> Self {
        Self {
            fraction,
            bias: Some((filter, bias)),
        }
    }

    /// Draw the sample from `population`.
    ///
    /// Rows are drawn without replacement; weights of the sample are reset
    /// to 1 (the sample itself carries no information about `Pr_S`).
    ///
    /// # Panics
    /// Panics if `fraction` is outside `(0, 1]` or `bias` outside `[0, 1]`.
    pub fn draw<R: Rng>(&self, population: &Relation, rng: &mut R) -> Relation {
        assert!(
            self.fraction > 0.0 && self.fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let n = population.len();
        let ns = ((n as f64) * self.fraction).round().max(1.0) as usize;

        let rows: Vec<usize> = match &self.bias {
            None => sample_without_replacement(n, ns, rng),
            Some((filter, bias)) => {
                assert!((0.0..=1.0).contains(bias), "bias must be in [0, 1]");
                let mut matching = Vec::new();
                let mut other = Vec::new();
                for r in 0..n {
                    if filter.matches(population, r) {
                        matching.push(r);
                    } else {
                        other.push(r);
                    }
                }
                let want_biased = ((ns as f64) * bias).round() as usize;
                let take_biased = want_biased.min(matching.len());
                let take_other = (ns - take_biased).min(other.len());
                matching.shuffle(rng);
                other.shuffle(rng);
                let mut rows: Vec<usize> = matching[..take_biased].to_vec();
                rows.extend_from_slice(&other[..take_other]);
                rows
            }
        };

        let mut sample = population.select_rows(&rows);
        sample.fill_weights(1.0);
        sample
    }
}

/// Draw `k` distinct indices from `0..n` (k clamped to n).
fn sample_without_replacement<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let k = k.min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::example_population;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_sample_has_requested_size() {
        let p = example_population();
        let mut rng = SmallRng::seed_from_u64(1);
        let s = SampleSpec::uniform(0.5).draw(&p, &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn fully_biased_sample_only_matches_filter() {
        let p = example_population();
        let mut rng = SmallRng::seed_from_u64(2);
        // 100% bias towards date = 01 (value id 0).
        let filter = RowFilter::Eq(AttrId(0), 0);
        let s = SampleSpec::biased(0.4, filter.clone(), 1.0).draw(&p, &mut rng);
        assert_eq!(s.len(), 4);
        for r in 0..s.len() {
            assert!(filter.matches(&s, r));
        }
    }

    #[test]
    fn partial_bias_mixes_matching_and_other() {
        let p = example_population();
        let mut rng = SmallRng::seed_from_u64(3);
        let filter = RowFilter::Eq(AttrId(0), 0); // date = 01 (5 of 10 rows)
        // 50% bias of a 40% sample: 2 matching + 2 non-matching rows.
        let s = SampleSpec::biased(0.4, filter.clone(), 0.5).draw(&p, &mut rng);
        let matching = (0..s.len()).filter(|&r| filter.matches(&s, r)).count();
        assert_eq!(s.len(), 4);
        assert_eq!(matching, 2);
    }

    #[test]
    fn bias_clamps_when_selection_is_small() {
        let p = example_population();
        let mut rng = SmallRng::seed_from_u64(4);
        // Only one row has o_st = NC, d_st = FL... use In filter on a rare
        // value: o_st = FL appears 3 times; ask for 80% of 10 rows biased.
        let filter = RowFilter::Eq(AttrId(1), 0);
        let s = SampleSpec::biased(1.0, filter.clone(), 0.8).draw(&p, &mut rng);
        // Wanted 8 biased rows, only 3 exist; sample tops up from others.
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn and_filter_requires_all_conjuncts() {
        let p = example_population();
        let f = RowFilter::And(vec![
            RowFilter::Eq(AttrId(1), 1), // o_st = NC
            RowFilter::Eq(AttrId(2), 2), // d_st = NY
        ]);
        let matches: Vec<usize> = (0..p.len()).filter(|&r| f.matches(&p, r)).collect();
        assert_eq!(matches, vec![4, 5, 6]);
    }

    #[test]
    fn in_filter_matches_any_listed_value() {
        let p = example_population();
        let f = RowFilter::In(AttrId(1), vec![0, 2]); // o_st in {FL, NY}
        let count = (0..p.len()).filter(|&r| f.matches(&p, r)).count();
        assert_eq!(count, 6);
    }
}
