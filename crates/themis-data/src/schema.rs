//! Relation schemas: named attributes with discrete active domains.

use crate::domain::Domain;
use std::fmt;
use std::sync::Arc;

/// Index of an attribute within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub usize);

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// A named attribute with its active domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    name: String,
    domain: Domain,
}

impl Attribute {
    /// Create an attribute.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        Self {
            name: name.into(),
            domain,
        }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Active domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }
}

/// An ordered list of attributes `A = {A_1, ..., A_m}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from attributes.
    ///
    /// # Panics
    /// Panics if two attributes share a name.
    pub fn new(attributes: Vec<Attribute>) -> Arc<Self> {
        for i in 0..attributes.len() {
            for j in (i + 1)..attributes.len() {
                assert_ne!(
                    attributes[i].name(),
                    attributes[j].name(),
                    "duplicate attribute name"
                );
            }
        }
        Arc::new(Self { attributes })
    }

    /// Number of attributes (`m` in the paper).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute by id.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attributes[id.0]
    }

    /// Domain of an attribute.
    pub fn domain(&self, id: AttrId) -> &Domain {
        self.attributes[id.0].domain()
    }

    /// Resolve an attribute name to its id.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attributes
            .iter()
            .position(|a| a.name() == name)
            .map(AttrId)
    }

    /// All attribute ids in schema order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attributes.len()).map(AttrId)
    }

    /// All attributes in schema order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Total one-hot width `sum_i N_i` over all attributes.
    pub fn one_hot_width(&self) -> usize {
        self.attributes.iter().map(|a| a.domain().size()).sum()
    }

    /// Number of cells in the full cross-product of the active domains,
    /// saturating at `usize::MAX`.
    pub fn joint_cells(&self) -> usize {
        self.attributes
            .iter()
            .fold(1usize, |acc, a| acc.saturating_mul(a.domain().size()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            Attribute::new("date", Domain::of("date", &["01", "02"])),
            Attribute::new("o_st", Domain::of("o_st", &["FL", "NC", "NY"])),
            Attribute::new("d_st", Domain::of("d_st", &["FL", "NC", "NY"])),
        ])
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_id("o_st"), Some(AttrId(1)));
        assert_eq!(s.attr(AttrId(1)).name(), "o_st");
        assert_eq!(s.domain(AttrId(2)).size(), 3);
        assert_eq!(s.attr_id("missing"), None);
    }

    #[test]
    fn one_hot_width_sums_domains() {
        assert_eq!(schema().one_hot_width(), 2 + 3 + 3);
    }

    #[test]
    fn joint_cells_multiplies() {
        assert_eq!(schema().joint_cells(), 2 * 3 * 3);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn rejects_duplicate_names() {
        Schema::new(vec![
            Attribute::new("a", Domain::indexed("a", 2)),
            Attribute::new("a", Domain::indexed("a", 3)),
        ]);
    }
}
