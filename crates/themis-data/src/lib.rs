//! # themis-data
//!
//! Data model substrate for the Themis open-world database system.
//!
//! Themis (Orr, Balazinska, Suciu — SIGMOD 2020) assumes a well-defined but
//! unavailable population `P` with `m` attributes whose active domains are
//! discrete and ordered (continuous attributes are bucketized). This crate
//! provides:
//!
//! * [`Domain`] / [`Schema`] — discrete ordered active domains and relation
//!   schemas,
//! * [`Relation`] — a weighted columnar relation (every tuple carries a
//!   weight `w(t)`, the number of population tuples it represents),
//! * [`bucketize`] — equi-width bucketization of real-valued attributes,
//! * [`sampling`] — biased sampling mechanisms reproducing the paper's
//!   sample designs (uniform, 90%-biased, 100%-biased selections),
//! * [`datasets`] — synthetic population generators standing in for the
//!   paper's Flights, IMDB, and CHILD datasets (see DESIGN.md §2 for the
//!   substitution rationale).

#![forbid(unsafe_code)]

pub mod bucketize;
pub mod datasets;
pub mod domain;
pub mod ingest;
pub mod paper_example;
pub mod relation;
pub mod sampling;
pub mod schema;

pub use domain::Domain;
pub use relation::{GroupKey, Relation};
pub use schema::{AttrId, Attribute, Schema};
