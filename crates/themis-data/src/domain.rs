//! Discrete, ordered active domains.
//!
//! Themis assumes the active domain of each attribute is discrete and
//! ordered (§3 of the paper); continuous attributes are bucketized into
//! equi-width buckets before ingestion. A [`Domain`] maps dense value ids
//! (`0..size`) to human-readable labels and back.

use std::collections::HashMap;

/// A discrete, ordered active domain for one attribute.
///
/// Values are stored in relations as dense `u32` ids indexing into this
/// domain's label table. The ordering of ids is the domain order, which is
/// what range predicates (`<`, `<=`, ...) compare against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    name: String,
    labels: Vec<String>,
    
    index: HashMap<String, u32>,
}

impl Domain {
    /// Build a domain from an ordered list of labels.
    ///
    /// # Panics
    /// Panics if `labels` is empty or contains duplicates.
    pub fn labeled(name: impl Into<String>, labels: Vec<String>) -> Self {
        assert!(!labels.is_empty(), "domain must have at least one value");
        let mut index = HashMap::with_capacity(labels.len());
        for (i, l) in labels.iter().enumerate() {
            let prev = index.insert(l.clone(), i as u32);
            assert!(prev.is_none(), "duplicate domain label: {l}");
        }
        Self {
            name: name.into(),
            labels,
            index,
        }
    }

    /// Build a domain of `size` values labeled `"0"`, `"1"`, ... in order.
    pub fn indexed(name: impl Into<String>, size: usize) -> Self {
        Self::labeled(name, (0..size).map(|i| i.to_string()).collect())
    }

    /// Build a domain from string slices.
    pub fn of(name: impl Into<String>, labels: &[&str]) -> Self {
        Self::labeled(name, labels.iter().map(|s| s.to_string()).collect())
    }

    /// Domain name (usually the attribute name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values in the active domain (`N_i` in the paper).
    pub fn size(&self) -> usize {
        self.labels.len()
    }

    /// Label for a value id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn label(&self, id: u32) -> &str {
        &self.labels[id as usize]
    }

    /// Look up the value id of a label, if present.
    pub fn id_of(&self, label: &str) -> Option<u32> {
        self.index.get(label).copied()
    }

    /// All labels in domain order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Iterate over all value ids.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        0..self.size() as u32
    }

    /// Whether `id` is a valid value of this domain.
    pub fn contains(&self, id: u32) -> bool {
        (id as usize) < self.labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_round_trips() {
        let d = Domain::of("state", &["CA", "NY", "FL"]);
        assert_eq!(d.size(), 3);
        assert_eq!(d.label(1), "NY");
        assert_eq!(d.id_of("FL"), Some(2));
        assert_eq!(d.id_of("WA"), None);
        assert!(d.contains(2));
        assert!(!d.contains(3));
    }

    #[test]
    fn indexed_labels_are_numeric() {
        let d = Domain::indexed("bucket", 4);
        assert_eq!(d.labels(), &["0", "1", "2", "3"]);
        assert_eq!(d.id_of("2"), Some(2));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_labels() {
        Domain::of("x", &["a", "a"]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_domain() {
        Domain::labeled("x", vec![]);
    }

    #[test]
    fn ids_iterates_in_order() {
        let d = Domain::indexed("x", 3);
        assert_eq!(d.ids().collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
