//! Property-based tests: the query engine against a naive reference
//! evaluator, and parser/engine robustness.

use proptest::prelude::*;
use themis_data::{Attribute, Domain, Relation, Schema};
use themis_query::{Catalog, EngineOptions, Value};

/// Small morsels + a few threads so merging is genuinely exercised.
fn opts() -> EngineOptions {
    EngineOptions {
        threads: 3,
        morsel_rows: 7,
        ..EngineOptions::default()
    }
}

fn random_relation(rows: &[(u32, u32, f64)]) -> Relation {
    let schema = Schema::new(vec![
        Attribute::new("a", Domain::indexed("a", 4)),
        Attribute::new("b", Domain::indexed("b", 3)),
    ]);
    let mut rel = Relation::new(schema);
    for &(a, b, w) in rows {
        rel.push_row_weighted(&[a, b], w);
    }
    rel
}

fn rows_strategy() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0u32..4, 0u32..3, 0.1f64..10.0), 1..60)
}

proptest! {
    #[test]
    fn count_star_equals_total_weight(rows in rows_strategy()) {
        let rel = random_relation(&rows);
        let total = rel.total_weight();
        let mut c = Catalog::new();
        c.register("t", rel);
        let r = themis_query::run_sql(&c, "SELECT COUNT(*) FROM t", &opts()).unwrap();
        prop_assert!((r.scalar().unwrap() - total).abs() < 1e-9);
    }

    #[test]
    fn group_by_matches_reference(rows in rows_strategy()) {
        let rel = random_relation(&rows);
        // Naive reference: sum weights per `a` value.
        let mut expected = [0.0f64; 4];
        for &(a, _, w) in &rows {
            expected[a as usize] += w;
        }
        let mut c = Catalog::new();
        c.register("t", rel);
        let r = themis_query::run_sql(&c, "SELECT a, COUNT(*) FROM t GROUP BY a", &opts()).unwrap();
        let m = r.to_map();
        for (a, &e) in expected.iter().enumerate() {
            let key = vec![a.to_string()];
            match m.get(&key) {
                Some(v) => prop_assert!((v[0] - e).abs() < 1e-9),
                None => prop_assert!(e == 0.0, "group {a} missing with weight {e}"),
            }
        }
    }

    #[test]
    fn filters_match_reference(rows in rows_strategy(), cut in 0u32..4) {
        let rel = random_relation(&rows);
        let expected: f64 = rows
            .iter()
            .filter(|&&(a, _, _)| a <= cut)
            .map(|&(_, _, w)| w)
            .sum();
        let mut c = Catalog::new();
        c.register("t", rel);
        let sql = format!("SELECT COUNT(*) FROM t WHERE a <= {cut}");
        let r = themis_query::run_sql(&c, &sql, &opts()).unwrap();
        prop_assert!((r.scalar().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn avg_matches_reference(rows in rows_strategy()) {
        let rel = random_relation(&rows);
        let wsum: f64 = rows.iter().map(|&(_, _, w)| w).sum();
        let vsum: f64 = rows.iter().map(|&(_, b, w)| w * b as f64).sum();
        let mut c = Catalog::new();
        c.register("t", rel);
        let r = themis_query::run_sql(&c, "SELECT AVG(b) FROM t", &opts()).unwrap();
        prop_assert!((r.scalar().unwrap() - vsum / wsum).abs() < 1e-9);
    }

    #[test]
    fn self_join_count_matches_reference(rows in rows_strategy()) {
        // Reference: Σ over join key v of (Σ w where b = v)(Σ w where a = v)
        // — join `t.b = s.a` over min(4,3) shared ids.
        let rel = random_relation(&rows);
        let mut by_b = [0.0f64; 3];
        let mut by_a = [0.0f64; 4];
        for &(a, b, w) in &rows {
            by_b[b as usize] += w;
            by_a[a as usize] += w;
        }
        let expected: f64 = (0..3).map(|v| by_b[v] * by_a[v]).sum();
        let mut c = Catalog::new();
        c.register("t", rel);
        let r = themis_query::run_sql(&c, "SELECT COUNT(*) FROM t x, t y WHERE x.b = y.a", &opts()).unwrap();
        prop_assert!((r.scalar().unwrap() - expected).abs() < 1e-6);
    }

    #[test]
    fn group_values_are_labels(rows in rows_strategy()) {
        let rel = random_relation(&rows);
        let mut c = Catalog::new();
        c.register("t", rel);
        let r = themis_query::run_sql(&c, "SELECT b, COUNT(*) FROM t GROUP BY b", &opts()).unwrap();
        for row in &r.rows {
            prop_assert!(matches!(&row[0], Value::Str(_)));
            prop_assert!(matches!(&row[1], Value::Num(_)));
        }
    }
}
