//! Query governance: cooperative deadlines, cancellation, and budgets.
//!
//! A long-lived process serving many sessions cannot let one pathological
//! query (a cross-join blowup, a huge GROUP BY key space) run unboundedly or
//! abort the process. This module is the governance layer both engines share:
//!
//! * [`Limits`] — a wall-clock deadline, a row budget, and a group budget,
//!   carried in [`crate::EngineOptions`];
//! * [`CancelToken`] — a shared flag another thread (a Ctrl-C handler, a
//!   server connection reaper) can set to stop a running query;
//! * [`QueryGuard`] — the per-execution state: it arms the deadline at query
//!   start and is checked **cooperatively** at morsel boundaries and every
//!   [`GUARD_STRIDE`] folded rows. Nothing is killed from outside; workers
//!   observe the guard and return a typed
//!   [`ExecError::Governed`].
//! * [`FaultPlan`] — deterministic fault injection (slow morsel, worker
//!   panic at morsel N, instant budget exhaustion) so every failure path is
//!   reachable from tests on both engines.
//!
//! ## Determinism
//!
//! Row budgets charge *exact* row counts per morsel, so the total charged is
//! identical no matter how many threads run: a row budget trips if and only
//! if the query examines more rows than the limit, on either engine. Group
//! budgets are checked against the final distinct-group count (plus early
//! per-morsel checks, which can only fire when the final check would too).
//! Deadlines and cancellation are inherently wall-clock/racy, but always
//! produce the same typed error when they fire.

use crate::exec::ExecError;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows folded between cooperative cancel/deadline checks (and budget
/// flushes) inside a morsel. Small enough to bound overrun, large enough to
/// keep the guard off the per-row hot path.
pub const GUARD_STRIDE: u64 = 1024;

/// Cooperative resource limits for one query execution. All `None` by
/// default: an unlimited guard compiles to a handful of untaken branches.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Limits {
    /// Wall-clock budget, armed when execution starts.
    pub deadline: Option<Duration>,
    /// Maximum input rows examined (scan rows; for joins: build rows +
    /// probe rows + joined pairs folded).
    pub max_rows: Option<u64>,
    /// Maximum distinct groups materialized (before LIMIT truncation).
    pub max_groups: Option<usize>,
}

impl Limits {
    /// True when no limit is configured.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_rows.is_none() && self.max_groups.is_none()
    }

    /// One-line description for shells and status displays.
    pub fn describe(&self) -> String {
        if self.is_unlimited() {
            return "off".to_string();
        }
        let mut parts = Vec::new();
        if let Some(d) = self.deadline {
            parts.push(format!("deadline {:.0}ms", d.as_secs_f64() * 1e3));
        }
        if let Some(n) = self.max_rows {
            parts.push(format!("max {n} rows"));
        }
        if let Some(n) = self.max_groups {
            parts.push(format!("max {n} groups"));
        }
        parts.join(", ")
    }
}

/// A shared cancellation flag. Clones observe the same flag; cancelling is
/// idempotent and visible to every execution carrying a clone.
///
/// Cancellation is *cooperative*: running queries observe the token at
/// morsel/stride boundaries and return
/// [`Trip::Cancelled`] — no thread is ever killed.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation of every execution carrying a clone of this
    /// token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Tokens compare by identity: two tokens are equal iff they share the flag.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for CancelToken {}

/// Deterministic fault injection, carried in [`crate::EngineOptions`].
/// Production configurations leave this at [`FaultPlan::None`]; tests use it
/// to make every governance failure path reachable on both engines.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FaultPlan {
    /// No injected faults.
    #[default]
    None,
    /// Sleep `delay` at the start of morsel `morsel` (exercises deadlines).
    SlowMorsel {
        /// Zero-based morsel index (row offset / `morsel_rows`).
        morsel: u64,
        /// How long the morsel stalls.
        delay: Duration,
    },
    /// Panic inside the worker processing morsel `morsel` (exercises panic
    /// containment; surfaces as [`ExecError::Internal`]).
    PanicAtMorsel {
        /// Zero-based morsel index.
        morsel: u64,
    },
    /// Trip the row budget at the first morsel boundary, regardless of the
    /// configured limit.
    BudgetExhaust,
}

/// Why a governed query was stopped. Carried inside
/// [`ExecError::Governed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trip {
    /// The configured deadline passed.
    Deadline,
    /// The query's [`CancelToken`] was cancelled.
    Cancelled,
    /// More rows examined than [`Limits::max_rows`].
    RowBudget {
        /// The configured limit.
        limit: u64,
    },
    /// More distinct groups materialized than [`Limits::max_groups`].
    GroupBudget {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for Trip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trip::Deadline => write!(f, "deadline exceeded"),
            Trip::Cancelled => write!(f, "cancelled"),
            Trip::RowBudget { limit } => write!(f, "row budget exceeded (limit {limit})"),
            Trip::GroupBudget { limit } => write!(f, "group budget exceeded (limit {limit})"),
        }
    }
}

impl From<Trip> for ExecError {
    fn from(t: Trip) -> Self {
        ExecError::Governed(t)
    }
}

/// Per-execution governance state, armed from [`crate::EngineOptions`] when
/// execution starts and shared by reference across all workers.
///
/// All checks are cooperative and cheap: an unarmed guard (no limits, no
/// token, no faults) short-circuits on one boolean.
#[derive(Debug)]
pub struct QueryGuard {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    max_rows: Option<u64>,
    max_groups: Option<usize>,
    /// Rows charged so far, shared across workers. Morsels charge exact
    /// counts, so the total — and therefore whether the budget trips — is
    /// thread-count independent.
    rows: AtomicU64,
    fault: FaultPlan,
    /// False when nothing can trip; every check short-circuits.
    active: bool,
}

impl QueryGuard {
    /// Arm a guard from engine options: the deadline clock starts now.
    pub fn arm(opts: &crate::EngineOptions) -> Self {
        let l = &opts.limits;
        QueryGuard {
            deadline: l.deadline.map(|d| Instant::now() + d),
            cancel: opts.cancel.clone(),
            max_rows: l.max_rows,
            max_groups: l.max_groups,
            rows: AtomicU64::new(0),
            fault: opts.fault_plan.clone(),
            active: !l.is_unlimited()
                || opts.cancel.is_some()
                || opts.fault_plan != FaultPlan::None,
        }
    }

    /// A guard that never trips (for the unguarded oracle path).
    pub fn unlimited() -> Self {
        QueryGuard {
            deadline: None,
            cancel: None,
            max_rows: None,
            max_groups: None,
            rows: AtomicU64::new(0),
            fault: FaultPlan::None,
            active: false,
        }
    }

    /// Cancel/deadline check; called at morsel boundaries and every
    /// [`GUARD_STRIDE`] folded rows.
    pub fn check(&self) -> Result<(), ExecError> {
        if !self.active {
            return Ok(());
        }
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Err(Trip::Cancelled.into());
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(Trip::Deadline.into());
            }
        }
        Ok(())
    }

    /// Boundary hook at the start of morsel `morsel`. Both engines number
    /// morsels identically (row offset / `morsel_rows`, per input side), so
    /// injected faults fire at the same points and produce the same typed
    /// error from either engine.
    pub fn at_morsel(&self, morsel: u64) -> Result<(), ExecError> {
        if !self.active {
            return Ok(());
        }
        match &self.fault {
            FaultPlan::SlowMorsel { morsel: m, delay } if *m == morsel => {
                std::thread::sleep(*delay);
            }
            FaultPlan::PanicAtMorsel { morsel: m } if *m == morsel => {
                // Deliberate: this is the injected worker-panic fault. The
                // pool's catch_unwind containment turns it into
                // ExecError::Internal; tests assert no panic ever escapes.
                // themis-lint: allow(no-panic-in-libs) reason=test-only injected fault from FaultPlan::PanicAtMorsel; contained by the pool's catch_unwind and surfaced as ExecError::Internal
                panic!("injected worker panic at morsel {morsel}");
            }
            FaultPlan::BudgetExhaust => {
                return Err(Trip::RowBudget {
                    limit: self.max_rows.unwrap_or(0),
                }
                .into());
            }
            _ => {}
        }
        self.check()
    }

    /// Charge `n` examined rows against the row budget.
    pub fn charge_rows(&self, n: u64) -> Result<(), ExecError> {
        if !self.active || n == 0 {
            return Ok(());
        }
        let Some(limit) = self.max_rows else {
            return Ok(());
        };
        let total = self.rows.fetch_add(n, Ordering::Relaxed) + n;
        if total > limit {
            return Err(Trip::RowBudget { limit }.into());
        }
        Ok(())
    }

    /// Check a distinct-group count against the group budget. Called with
    /// per-morsel counts (early exit; a subset of the final count) and with
    /// the final merged count.
    pub fn check_groups(&self, count: usize) -> Result<(), ExecError> {
        if !self.active {
            return Ok(());
        }
        if let Some(limit) = self.max_groups {
            if count > limit {
                return Err(Trip::GroupBudget { limit }.into());
            }
        }
        Ok(())
    }
}

/// Per-morsel row meter: counts folded rows locally and flushes exact
/// charges (plus a cancel/deadline check) every [`GUARD_STRIDE`] rows, so
/// the shared atomic is touched at stride granularity, not per row.
pub(crate) struct RowMeter<'g> {
    guard: &'g QueryGuard,
    pending: u64,
    /// Flushes that actually ran a cooperative check. Together with the
    /// one `at_morsel` check per morsel this is the trace's `guard_checks`
    /// counter — a pure function of the rows the morsel examined, so it is
    /// identical at every thread count (unlike e.g. the join build's
    /// per-partition checks, which scale with the pool size and are
    /// deliberately *not* counted).
    checks: u64,
}

impl<'g> RowMeter<'g> {
    pub(crate) fn new(guard: &'g QueryGuard) -> Self {
        RowMeter {
            guard,
            pending: 0,
            checks: 0,
        }
    }

    /// Count one examined row.
    #[inline]
    pub(crate) fn tick(&mut self) -> Result<(), ExecError> {
        self.pending += 1;
        if self.pending >= GUARD_STRIDE {
            self.flush()
        } else {
            Ok(())
        }
    }

    /// Charge pending rows and run the cooperative check. Called at stride
    /// boundaries and at the end of each morsel, so charges are exact.
    pub(crate) fn flush(&mut self) -> Result<(), ExecError> {
        if self.pending > 0 {
            self.checks += 1;
            self.guard.charge_rows(self.pending)?;
            self.pending = 0;
            self.guard.check()?;
        }
        Ok(())
    }

    /// Cooperative checks this meter has run (for trace counters).
    pub(crate) fn checks(&self) -> u64 {
        self.checks
    }
}

/// Run `f` with panics contained: a panic below (e.g. an injected
/// [`FaultPlan::PanicAtMorsel`] on the serial engine, which has no pool to
/// contain it) surfaces as [`ExecError::Internal`] with the same message the
/// parallel engine produces for a contained worker panic, so the engines
/// stay error-identical.
pub(crate) fn contain_panics<R>(
    f: impl FnOnce() -> Result<R, ExecError>,
) -> Result<R, ExecError> {
    // AssertUnwindSafe: on panic every partial result is discarded and only
    // the typed error escapes, so no broken invariant is observable.
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(ExecError::Internal(format!("worker panicked: {message}")))
        }
    }
}

/// The parallel engine's mapping from a contained pool panic to the same
/// typed error [`contain_panics`] produces on the serial engine. The task
/// index is deliberately dropped: the engines must return *identical*
/// errors for the same injected fault.
pub(crate) fn task_panic_error(p: rayon::TaskPanic) -> ExecError {
    ExecError::Internal(format!("worker panicked: {}", p.message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineOptions;

    #[test]
    fn unarmed_guard_never_trips() {
        let g = QueryGuard::arm(&EngineOptions::with_threads(2));
        assert!(g.check().is_ok());
        assert!(g.at_morsel(0).is_ok());
        assert!(g.charge_rows(u64::MAX / 2).is_ok());
        assert!(g.check_groups(usize::MAX).is_ok());
    }

    #[test]
    fn row_budget_trips_exactly_past_the_limit() {
        let opts = EngineOptions {
            limits: Limits {
                max_rows: Some(100),
                ..Limits::default()
            },
            ..EngineOptions::default()
        };
        let g = QueryGuard::arm(&opts);
        assert!(g.charge_rows(100).is_ok());
        assert_eq!(
            g.charge_rows(1),
            Err(ExecError::Governed(Trip::RowBudget { limit: 100 }))
        );
    }

    #[test]
    fn cancellation_is_shared_and_idempotent() {
        let token = CancelToken::new();
        let opts = EngineOptions {
            cancel: Some(token.clone()),
            ..EngineOptions::default()
        };
        let g = QueryGuard::arm(&opts);
        assert!(g.check().is_ok());
        token.cancel();
        token.cancel();
        assert_eq!(g.check(), Err(ExecError::Governed(Trip::Cancelled)));
        assert!(token == token.clone());
        assert!(token != CancelToken::new());
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let opts = EngineOptions {
            limits: Limits {
                deadline: Some(Duration::ZERO),
                ..Limits::default()
            },
            ..EngineOptions::default()
        };
        let g = QueryGuard::arm(&opts);
        assert_eq!(g.check(), Err(ExecError::Governed(Trip::Deadline)));
    }

    #[test]
    fn group_budget_checks_counts() {
        let opts = EngineOptions {
            limits: Limits {
                max_groups: Some(3),
                ..Limits::default()
            },
            ..EngineOptions::default()
        };
        let g = QueryGuard::arm(&opts);
        assert!(g.check_groups(3).is_ok());
        assert_eq!(
            g.check_groups(4),
            Err(ExecError::Governed(Trip::GroupBudget { limit: 3 }))
        );
    }

    #[test]
    fn budget_exhaust_fault_trips_at_first_boundary() {
        let opts = EngineOptions {
            fault_plan: FaultPlan::BudgetExhaust,
            ..EngineOptions::default()
        };
        let g = QueryGuard::arm(&opts);
        assert_eq!(
            g.at_morsel(0),
            Err(ExecError::Governed(Trip::RowBudget { limit: 0 }))
        );
    }

    #[test]
    fn limits_describe_reads_well() {
        assert_eq!(Limits::default().describe(), "off");
        let l = Limits {
            deadline: Some(Duration::from_millis(250)),
            max_rows: Some(1000),
            max_groups: None,
        };
        assert_eq!(l.describe(), "deadline 250ms, max 1000 rows");
    }

    #[test]
    fn trip_messages_are_specific() {
        assert_eq!(Trip::Deadline.to_string(), "deadline exceeded");
        assert_eq!(
            Trip::RowBudget { limit: 7 }.to_string(),
            "row budget exceeded (limit 7)"
        );
        assert_eq!(
            Trip::GroupBudget { limit: 2 }.to_string(),
            "group budget exceeded (limit 2)"
        );
        assert_eq!(Trip::Cancelled.to_string(), "cancelled");
    }
}
