//! Morsel-driven parallel query execution.
//!
//! The serial engine in [`crate::exec`] interprets one row at a time against
//! hash tables keyed by `Vec<u32>`, allocating per row. This module drives
//! the *same* compiled plans (`plan_scan` / `plan_join` in
//! [`crate::exec`]) and the *same* per-row fold (`fold_row`) over
//! fixed-size **morsels** — contiguous row
//! ranges claimed dynamically by a scoped worker pool (`shims/rayon`). Each
//! morsel fills a private accumulator block; blocks are merged **in morsel
//! order**, so the result is deterministic for a given morsel size no
//! matter how many threads run or in what order morsels finish.
//!
//! Two accumulator layouts keep the hot loop allocation-free:
//!
//! * **dense** — when the product of the grouping domains is at most
//!   `DENSE_GROUP_LIMIT` (4096), group keys pack into a single array index
//!   (mixed-radix over the domain sizes) and accumulators live in flat
//!   `Vec<f64>` blocks;
//! * **sparse** — otherwise, a `HashMap` from key to a slot in the same
//!   flat block layout, creating slots in first-touch order.
//!
//! Joins are evaluated as **partitioned hash joins**: the build side is
//! split into `threads` partitions by join-key hash, each partition built by
//! one task (scanning in row order, so per-key match lists are ordered
//! exactly as the serial engine's), then probe morsels look up the partition
//! for each key. Determinism is unaffected by the partition count because
//! partitioning only routes keys to tables.
//!
//! Floating-point caveat: merging morsel blocks associates additions at
//! morsel boundaries differently from the serial left-to-right fold, so
//! serial and parallel sums can differ by ~1 ulp per boundary (they are
//! bit-identical when the input fits in one morsel, and for exactly
//! representable weights). The differential test suite pins both engines to
//! within `1e-9` of each other; results across *thread counts* are
//! bit-identical by construction.

use crate::catalog::Catalog;
use crate::exec::{
    agg_numeric_tables, apply_order_by, fold_row, plan_join, plan_scan, Accum, AccumRef,
    CompiledAgg, CompiledSelect, ExecError, Resolved, ScanPlan,
};
use crate::guard::{task_panic_error, CancelToken, FaultPlan, Limits, QueryGuard, RowMeter};
use crate::value::QueryResult;
use rayon::Pool;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use themis_data::Relation;
use themis_obs::TraceSink;
use themis_sql::Query;

/// Rows per morsel. Fixed (not derived from the thread count) so that the
/// morsel decomposition — and therefore the merged floating-point result —
/// is identical at every thread count.
pub const DEFAULT_MORSEL_ROWS: usize = 2048;

/// Largest packed group-key space evaluated with dense (flat-array)
/// accumulators; bigger key spaces fall back to the sparse layout.
const DENSE_GROUP_LIMIT: usize = 4096;

/// Explicit engine configuration, threaded through [`crate::run_sql`] and
/// [`execute_parallel`] by every caller.
///
/// Library code never reads environment variables: a session (or any other
/// caller) owns its `EngineOptions`. Binaries that honour a thread-count
/// environment variable (the CLI shell) parse it *into* this struct at
/// their own edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineOptions {
    /// Worker threads (1 ⇒ every morsel runs inline on the caller; results
    /// are bit-identical at every thread count for a fixed `morsel_rows`).
    pub threads: usize,
    /// Rows per morsel. Changing this changes how floating-point merges
    /// associate; keep it fixed across runs you want to compare exactly.
    pub morsel_rows: usize,
    /// Cooperative governance limits (deadline, row budget, group budget),
    /// checked at morsel and row-fold boundaries. Unlimited by default;
    /// tripping a limit yields [`ExecError::Governed`], never a panic.
    pub limits: Limits,
    /// Cancellation token observed cooperatively by running queries.
    /// `None` (the default) means not cancellable.
    pub cancel: Option<CancelToken>,
    /// Deterministic fault injection for tests; [`FaultPlan::None`] in
    /// production configurations.
    pub fault_plan: FaultPlan,
    /// Trace sink for query observability. Disabled by default: every
    /// instrumentation call short-circuits on a `None` inside the sink, so
    /// untraced execution pays one branch per morsel. Like
    /// [`CancelToken`], sinks compare by identity, which keeps
    /// `EngineOptions` comparable.
    pub trace: TraceSink,
}

impl Default for EngineOptions {
    /// Hardware threads, default morsel size, no limits, faults, or tracing.
    fn default() -> Self {
        EngineOptions {
            threads: rayon::available_threads(),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            limits: Limits::default(),
            cancel: None,
            fault_plan: FaultPlan::default(),
            trace: TraceSink::default(),
        }
    }
}

impl EngineOptions {
    /// Explicit thread count, default morsel size.
    pub fn with_threads(threads: usize) -> Self {
        EngineOptions {
            threads: threads.max(1),
            ..EngineOptions::default()
        }
    }

    /// One-line description of the configured engine, for shells and status
    /// displays. Governance limits are appended only when armed.
    pub fn describe(&self) -> String {
        let mut d = format!(
            "morsel-driven ({} thread{}, {} rows/morsel)",
            self.threads.max(1),
            if self.threads.max(1) == 1 { "" } else { "s" },
            self.morsel_rows.max(1)
        );
        if !self.limits.is_unlimited() {
            d.push_str(&format!(", limits: {}", self.limits.describe()));
        }
        d
    }
}

/// Execute a parsed query on the morsel-driven parallel engine.
///
/// Semantics (including every error) match [`crate::execute`]; aggregate
/// values may differ from the serial engine by floating-point association
/// at morsel boundaries only.
///
/// Execution is governed by the [`QueryGuard`] armed from `opts`: workers
/// observe the deadline/cancellation token and charge row budgets at morsel
/// and stride boundaries, a tripped limit surfaces as
/// [`ExecError::Governed`], and a worker panic is contained by the pool and
/// surfaces as [`ExecError::Internal`] — identical to the errors the guarded
/// serial engine ([`crate::execute_guarded`]) produces for the same fault.
pub fn execute_parallel(
    catalog: &Catalog,
    query: &Query,
    opts: &EngineOptions,
) -> Result<QueryResult, ExecError> {
    let guard = QueryGuard::arm(opts);
    let _span = opts.trace.span("execute_parallel");
    let mut result = match query.from.len() {
        1 => scan_parallel(catalog, query, opts, &guard)?,
        2 => join_parallel(catalog, query, opts, &guard)?,
        n => return Err(ExecError::Unsupported(format!("{n} tables in FROM"))),
    };
    if let Some(order) = &query.order_by {
        apply_order_by(&mut result, order)?;
    }
    if let Some(limit) = query.limit {
        result.rows.truncate(limit);
    }
    opts.trace.add("groups_out", result.rows.len() as u64);
    Ok(result)
}

/// How group keys map to accumulator slots.
enum KeyCodec {
    /// Packed mixed-radix index into a flat table of `space` slots.
    Dense { strides: Vec<usize>, space: usize },
    /// Generic keys hashed to slots created in first-touch order.
    Sparse,
}

impl KeyCodec {
    /// Choose the layout for a compiled SELECT's grouping columns.
    fn choose(select: &CompiledSelect, bindings: &[(&str, &Relation)]) -> KeyCodec {
        let mut strides = Vec::with_capacity(select.group_cols.len());
        let mut space: usize = 1;
        for r in &select.group_cols {
            let size = bindings[r.table].1.schema().domain(r.attr).size();
            strides.push(space);
            match space.checked_mul(size) {
                Some(s) if s <= DENSE_GROUP_LIMIT => space = s,
                _ => return KeyCodec::Sparse,
            }
        }
        KeyCodec::Dense { strides, space }
    }
}

/// Everything a morsel task needs to accumulate groups: the compiled select,
/// bindings, precomputed numeric tables, and the key layout. Immutable and
/// `Sync`, shared by reference across workers.
struct GroupSpec<'a> {
    select: &'a CompiledSelect,
    bindings: &'a [(&'a str, &'a Relation)],
    numeric: &'a [Option<Vec<f64>>],
    codec: &'a KeyCodec,
}

impl GroupSpec<'_> {
    fn n_aggs(&self) -> usize {
        self.select.aggs.len()
    }

    /// Group values of one input row, in grouping-column order.
    fn key_of(&self, rows: &[usize]) -> Vec<u32> {
        self.select
            .group_cols
            .iter()
            .map(|r| self.bindings[r.table].1.value(rows[r.table], r.attr))
            .collect()
    }

    /// Fold one input row into a morsel's accumulator block.
    fn fold(&self, g: &mut GroupBlock, rows: &[usize], weight: f64) {
        let slot = match self.codec {
            KeyCodec::Dense { strides, .. } => {
                let mut idx = 0usize;
                for (r, &stride) in self.select.group_cols.iter().zip(strides) {
                    idx += self.bindings[r.table].1.value(rows[r.table], r.attr) as usize
                        * stride;
                }
                g.occupied[idx] = true;
                idx
            }
            KeyCodec::Sparse => g.sparse_slot(self.key_of(rows), self.n_aggs()),
        };
        let n = self.n_aggs();
        fold_row(
            self.select,
            self.bindings,
            self.numeric,
            AccumRef {
                weight: &mut g.weight[slot],
                sums: &mut g.sums[slot * n..(slot + 1) * n],
                seen: &mut g.seen[slot],
            },
            rows,
            weight,
        );
    }

    /// Merge `from` into `into`, slot by slot, preserving `from`'s slot
    /// order (morsel-order merging makes the result thread-count
    /// independent).
    fn merge(&self, into: &mut GroupBlock, from: &GroupBlock) {
        let n = self.n_aggs();
        match self.codec {
            KeyCodec::Dense { .. } => {
                for idx in 0..from.weight.len() {
                    if from.occupied[idx] {
                        into.occupied[idx] = true;
                        self.merge_slot(into, idx, from, idx, n);
                    }
                }
            }
            KeyCodec::Sparse => {
                for (s, key) in from.keys.iter().enumerate() {
                    let t = into.sparse_slot(key.clone(), n);
                    self.merge_slot(into, t, from, s, n);
                }
            }
        }
    }

    fn merge_slot(&self, into: &mut GroupBlock, t: usize, from: &GroupBlock, s: usize, n: usize) {
        into.weight[t] += from.weight[s];
        for (i, agg) in self.select.aggs.iter().enumerate() {
            match agg {
                CompiledAgg::CountStar
                | CompiledAgg::SumWeight
                | CompiledAgg::Sum(_)
                | CompiledAgg::Avg(_) => into.sums[t * n + i] += from.sums[s * n + i],
                CompiledAgg::Min(_) => {
                    if from.seen[s] {
                        into.sums[t * n + i] = if into.seen[t] {
                            into.sums[t * n + i].min(from.sums[s * n + i])
                        } else {
                            from.sums[s * n + i]
                        };
                    }
                }
                CompiledAgg::Max(_) => {
                    if from.seen[s] {
                        into.sums[t * n + i] = if into.seen[t] {
                            into.sums[t * n + i].max(from.sums[s * n + i])
                        } else {
                            from.sums[s * n + i]
                        };
                    }
                }
            }
        }
        into.seen[t] |= from.seen[s];
    }

    /// Decode a dense slot index back into group values.
    fn decode(&self, idx: usize) -> Vec<u32> {
        match self.codec {
            KeyCodec::Dense { strides, .. } => self
                .select
                .group_cols
                .iter()
                .zip(strides)
                .map(|(r, &stride)| {
                    let size = self.bindings[r.table].1.schema().domain(r.attr).size();
                    ((idx / stride) % size) as u32
                })
                .collect(),
            KeyCodec::Sparse => unreachable!("decode is dense-only"),
        }
    }

    /// Drain a merged block into `(key, Accum)` pairs for
    /// [`crate::exec::finalize_groups`].
    fn entries(&self, g: GroupBlock) -> Vec<(Vec<u32>, Accum)> {
        let n = self.n_aggs();
        match self.codec {
            KeyCodec::Dense { .. } => (0..g.weight.len())
                .filter(|&idx| g.occupied[idx])
                .map(|idx| {
                    (
                        self.decode(idx),
                        Accum {
                            weight: g.weight[idx],
                            sums: g.sums[idx * n..(idx + 1) * n].to_vec(),
                            seen: g.seen[idx],
                        },
                    )
                })
                .collect(),
            KeyCodec::Sparse => g
                .keys
                .iter()
                .enumerate()
                .map(|(s, key)| {
                    (
                        key.clone(),
                        Accum {
                            weight: g.weight[s],
                            sums: g.sums[s * n..(s + 1) * n].to_vec(),
                            seen: g.seen[s],
                        },
                    )
                })
                .collect(),
        }
    }
}

/// One morsel's (or the merged) accumulator block: struct-of-arrays, one
/// slot per group.
struct GroupBlock {
    /// Dense layout: which slots were ever touched (a zero-weight row still
    /// creates its group, matching the serial engine).
    occupied: Vec<bool>,
    /// Sparse layout: key → slot, plus keys in slot-creation order.
    map: HashMap<Vec<u32>, usize>,
    keys: Vec<Vec<u32>>,
    weight: Vec<f64>,
    sums: Vec<f64>,
    seen: Vec<bool>,
}

impl GroupBlock {
    fn new(codec: &KeyCodec, n_aggs: usize) -> Self {
        match codec {
            KeyCodec::Dense { space, .. } => GroupBlock {
                occupied: vec![false; *space],
                map: HashMap::new(),
                keys: Vec::new(),
                weight: vec![0.0; *space],
                sums: vec![0.0; space * n_aggs],
                seen: vec![false; *space],
            },
            KeyCodec::Sparse => GroupBlock {
                occupied: Vec::new(),
                map: HashMap::new(),
                keys: Vec::new(),
                weight: Vec::new(),
                sums: Vec::new(),
                seen: Vec::new(),
            },
        }
    }

    /// Slot of `key` in the sparse layout, creating it on first touch.
    fn sparse_slot(&mut self, key: Vec<u32>, n_aggs: usize) -> usize {
        if let Some(&s) = self.map.get(&key) {
            return s;
        }
        let s = self.keys.len();
        self.map.insert(key.clone(), s);
        self.keys.push(key);
        self.weight.push(0.0);
        self.sums.resize(self.sums.len() + n_aggs, 0.0);
        self.seen.push(false);
        s
    }
}

/// Merge morsel blocks in morsel order into one block.
fn merge_morsels(spec: &GroupSpec<'_>, morsels: Vec<GroupBlock>) -> GroupBlock {
    let mut it = morsels.into_iter();
    let mut acc = it
        .next()
        .unwrap_or_else(|| GroupBlock::new(spec.codec, spec.n_aggs()));
    for m in it {
        spec.merge(&mut acc, &m);
    }
    acc
}

/// Finish a merged block: guarantee the scalar zero-row and hand off to the
/// shared result builder.
fn finish(spec: &GroupSpec<'_>, mut block: GroupBlock) -> QueryResult {
    if spec.select.group_cols.is_empty() {
        // Aggregate-only queries return a single all-zero row over empty
        // input. Group-free ⇒ key space 1 ⇒ always the dense layout.
        // themis-lint: allow(no-panic-in-libs) reason=group-free spec allocates the dense one-slot layout, so occupied always has exactly one entry
        block.occupied[0] = true;
    }
    crate::exec::finalize_groups(spec.select, spec.bindings, spec.entries(block))
}

/// Collect per-morsel results, surfacing the first error **in morsel
/// order** (deterministic no matter which worker tripped first).
fn first_error_wins<T>(
    results: Result<Vec<Result<T, ExecError>>, rayon::TaskPanic>,
) -> Result<Vec<T>, ExecError> {
    results
        .map_err(task_panic_error)?
        .into_iter()
        .collect::<Result<Vec<T>, ExecError>>()
}

fn scan_parallel(
    catalog: &Catalog,
    query: &Query,
    opts: &EngineOptions,
    guard: &QueryGuard,
) -> Result<QueryResult, ExecError> {
    let ScanPlan {
        rel,
        bindings,
        masks,
        select,
    } = plan_scan(catalog, query)?;
    let numeric = agg_numeric_tables(&select, &bindings);
    let codec = KeyCodec::choose(&select, &bindings);
    let spec = GroupSpec {
        select: &select,
        bindings: &bindings,
        numeric: &numeric,
        codec: &codec,
    };

    // Evaluate predicates directly off the column slices.
    let mask_cols: Vec<(&[u32], &[bool])> = masks
        .iter()
        .map(|(attr, mask)| (rel.column(*attr), mask.as_slice()))
        .collect();
    let weights = rel.weights();

    let morsel_rows = opts.morsel_rows.max(1);
    // Hoisted so the hot loop sees a plain bool; counters are morsel-local
    // and batched into the sink with one lock per morsel, which also makes
    // their totals independent of thread count (morsels always partition
    // the input the same way).
    let traced = opts.trace.is_enabled();
    let pool = Pool::new(opts.threads);
    let morsels = first_error_wins(pool.try_par_ranges(rel.len(), morsel_rows, |range| {
        guard.at_morsel((range.start / morsel_rows) as u64)?;
        let mut meter = RowMeter::new(guard);
        let mut block = GroupBlock::new(spec.codec, spec.n_aggs());
        let rows_scanned = range.len() as u64;
        let mut rows_masked = 0u64;
        let mut rows_folded = 0u64;
        'rows: for r in range {
            meter.tick()?;
            for (col, mask) in &mask_cols {
                if !mask[col[r] as usize] {
                    rows_masked += 1;
                    continue 'rows;
                }
            }
            rows_folded += 1;
            spec.fold(&mut block, &[r], weights[r]);
        }
        meter.flush()?;
        if traced {
            opts.trace.add_counts(&[
                ("guard_checks", 1 + meter.checks()),
                ("morsels", 1),
                ("rows_folded", rows_folded),
                ("rows_masked", rows_masked),
                ("rows_scanned", rows_scanned),
            ]);
        }
        // Early per-morsel group check (sparse only: dense blocks are
        // bounded by DENSE_GROUP_LIMIT and scanning them per morsel would
        // cost more than it saves). A morsel's groups are a subset of the
        // final merged set, so this can only trip when the final check
        // below would too.
        if matches!(spec.codec, KeyCodec::Sparse) {
            guard.check_groups(block.keys.len())?;
        }
        Ok(block)
    }))?;
    let result = finish(&spec, merge_morsels(&spec, morsels));
    guard.check_groups(result.rows.len())?;
    Ok(result)
}

/// Stable partition index for a join key (`DefaultHasher` is deterministic
/// within a process; the partition choice never affects results, only which
/// build table holds a key).
fn partition_of(key: &[u32], partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

fn join_parallel(
    catalog: &Catalog,
    query: &Query,
    opts: &EngineOptions,
    guard: &QueryGuard,
) -> Result<QueryResult, ExecError> {
    let plan = plan_join(catalog, query)?;
    let (left, right) = (plan.left, plan.right);
    let numeric = agg_numeric_tables(&plan.select, &plan.bindings);
    let codec = KeyCodec::choose(&plan.select, &plan.bindings);
    let spec = GroupSpec {
        select: &plan.select,
        bindings: &plan.bindings,
        numeric: &numeric,
        codec: &codec,
    };

    let morsel_rows = opts.morsel_rows.max(1);
    let traced = opts.trace.is_enabled();
    let pool = Pool::new(opts.threads);
    let partitions = pool.threads();

    // Build phase, one scan of the right side total: morsels filter rows
    // and route (key, row) pairs into per-partition buckets, then one task
    // per partition folds its buckets into a hash table, visiting morsels
    // in order. Buckets are appended in (morsel, row) order, so per-key
    // match lists come out in ascending row order — exactly the order of
    // the serial engine's single build loop.
    let right_key = |row: usize| -> Vec<u32> {
        plan.join_keys
            .iter()
            .map(|(_, r): &(Resolved, Resolved)| right.value(row, r.attr))
            .collect()
    };
    type Bucket = Vec<(Vec<u32>, usize)>;
    let bucketed: Vec<Vec<Bucket>> =
        first_error_wins(pool.try_par_ranges(right.len(), morsel_rows, |range| {
            guard.at_morsel((range.start / morsel_rows) as u64)?;
            let mut meter = RowMeter::new(guard);
            let mut buckets: Vec<Bucket> = vec![Vec::new(); partitions];
            let rows_scanned = range.len() as u64;
            let mut rows_masked = 0u64;
            for row in range {
                meter.tick()?;
                if !plan.passes(1, row) {
                    rows_masked += 1;
                    continue;
                }
                let key = right_key(row);
                buckets[partition_of(&key, partitions)].push((key, row));
            }
            meter.flush()?;
            if traced {
                // Guard checks in the partition-fold tasks below are *not*
                // counted: there is one per partition and partitions track
                // the pool size, so counting them would make traces differ
                // across thread counts.
                opts.trace.add_counts(&[
                    ("guard_checks", 1 + meter.checks()),
                    ("morsels", 1),
                    ("rows_masked", rows_masked),
                    ("rows_scanned", rows_scanned),
                ]);
            }
            Ok(buckets)
        }))?;
    let parts: Vec<HashMap<Vec<u32>, Vec<usize>>> =
        first_error_wins(pool.try_par_indexed(partitions, |p| {
            // Partition tasks re-visit already-charged rows, so they only
            // observe cancellation/deadline, not the row budget.
            guard.check()?;
            let mut table: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
            for morsel in &bucketed {
                for (key, row) in &morsel[p] {
                    // Clone the key only on first touch of a distinct value.
                    match table.get_mut(key) {
                        Some(rows) => rows.push(*row),
                        None => {
                            table.insert(key.clone(), vec![*row]);
                        }
                    }
                }
            }
            Ok(table)
        }))?;

    // Probe phase: morsels over the left side.
    let (lw, rw) = (left.weights(), right.weights());
    let morsels = first_error_wins(pool.try_par_ranges(left.len(), morsel_rows, |range| {
        guard.at_morsel((range.start / morsel_rows) as u64)?;
        let mut meter = RowMeter::new(guard);
        let mut block = GroupBlock::new(spec.codec, spec.n_aggs());
        let rows_scanned = range.len() as u64;
        let mut rows_masked = 0u64;
        let mut pairs_folded = 0u64;
        for lrow in range {
            meter.tick()?;
            if !plan.passes(0, lrow) {
                rows_masked += 1;
                continue;
            }
            let key: Vec<u32> = plan
                .join_keys
                .iter()
                .map(|(l, _)| left.value(lrow, l.attr))
                .collect();
            if let Some(matches) = parts[partition_of(&key, partitions)].get(&key) {
                for &rrow in matches {
                    // Joined pairs are charged too: a key-skew blowup trips
                    // the row budget even when the inputs are small.
                    meter.tick()?;
                    pairs_folded += 1;
                    spec.fold(&mut block, &[lrow, rrow], lw[lrow] * rw[rrow]);
                }
            }
        }
        meter.flush()?;
        if traced {
            opts.trace.add_counts(&[
                ("guard_checks", 1 + meter.checks()),
                ("morsels", 1),
                ("pairs_folded", pairs_folded),
                ("rows_masked", rows_masked),
                ("rows_scanned", rows_scanned),
            ]);
        }
        if matches!(spec.codec, KeyCodec::Sparse) {
            guard.check_groups(block.keys.len())?;
        }
        Ok(block)
    }))?;
    let result = finish(&spec, merge_morsels(&spec, morsels));
    guard.check_groups(result.rows.len())?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use themis_data::paper_example::{example_population, example_sample};
    use themis_data::{Attribute, Domain, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register("flights", example_population());
        c.register("sample", example_sample());
        c
    }

    /// Tiny morsels + more threads than morsels, to exercise merging.
    fn opts() -> EngineOptions {
        EngineOptions {
            threads: 4,
            morsel_rows: 3,
            ..EngineOptions::default()
        }
    }

    fn run(c: &Catalog, sql: &str) -> QueryResult {
        crate::run_sql(c, sql, &opts()).unwrap()
    }

    #[test]
    fn scan_matches_serial_engine() {
        let c = catalog();
        for sql in [
            "SELECT COUNT(*) FROM flights",
            "SELECT o_st, COUNT(*) FROM flights WHERE date = '01' GROUP BY o_st",
            "SELECT o_st, MIN(date), MAX(date) FROM flights GROUP BY o_st",
            "SELECT COUNT(*) FROM flights WHERE o_st IN ('FL', 'NY')",
            "SELECT AVG(date) FROM flights WHERE date <= 1",
            "SELECT o_st, COUNT(*) AS n FROM flights GROUP BY o_st ORDER BY n DESC LIMIT 1",
        ] {
            let query = themis_sql::parse(sql).unwrap();
            let serial = crate::exec::execute(&c, &query).unwrap();
            // Integer-valued weights ⇒ merges are exact ⇒ full equality.
            assert_eq!(run(&c, sql), serial, "{sql}");
        }
    }

    #[test]
    fn join_matches_serial_engine() {
        let c = catalog();
        for sql in [
            "SELECT COUNT(*) FROM flights t, flights s WHERE t.d_st = s.o_st",
            "SELECT t.o_st, s.d_st, COUNT(*) FROM flights t, flights s \
             WHERE t.d_st = s.o_st AND t.d_st IN ('NC') GROUP BY t.o_st, s.d_st",
        ] {
            let query = themis_sql::parse(sql).unwrap();
            let serial = crate::exec::execute(&c, &query).unwrap();
            assert_eq!(run(&c, sql), serial, "{sql}");
        }
    }

    #[test]
    fn scalar_query_over_empty_selection_returns_zero_row() {
        let c = catalog();
        let r = run(
            &c,
            "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NC'",
        );
        assert_eq!(r.scalar(), Some(0.0));
    }

    #[test]
    fn sparse_layout_handles_large_key_spaces() {
        // One grouping domain bigger than DENSE_GROUP_LIMIT forces the
        // sparse accumulator path.
        let schema = Schema::new(vec![Attribute::new(
            "x",
            Domain::indexed("x", DENSE_GROUP_LIMIT + 10),
        )]);
        let mut rel = Relation::new(schema);
        for v in [0u32, 4100, 4100, 7, 0] {
            rel.push_row(&[v]);
        }
        let mut c = Catalog::new();
        c.register("t", rel);
        let sql = "SELECT x, COUNT(*) FROM t GROUP BY x";
        let query = themis_sql::parse(sql).unwrap();
        let serial = crate::exec::execute(&c, &query).unwrap();
        let parallel = crate::run_sql(
            &c,
            sql,
            &EngineOptions {
                threads: 4,
                morsel_rows: 2,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(parallel, serial);
        assert_eq!(parallel.rows.len(), 3);
    }

    #[test]
    fn min_ignores_zero_weight_rows_across_morsels() {
        let mut c = Catalog::new();
        let mut s = example_sample();
        // Zero-weight rows land in different morsels (morsel size 1).
        s.set_weights(vec![0.0, 0.0, 3.0, 0.0]);
        c.register("s", s);
        let r = crate::run_sql(
            &c,
            "SELECT MIN(date) AS lo, MAX(date) AS hi FROM s",
            &EngineOptions {
                threads: 4,
                morsel_rows: 1,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.to_map()[&Vec::<String>::new()], vec![2.0, 2.0]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let c = catalog();
        let sql = "SELECT o_st, COUNT(*), AVG(date) FROM flights GROUP BY o_st ORDER BY o_st";
        let base = crate::run_sql(&c, sql, &EngineOptions::with_threads(1)).unwrap();
        for threads in [2, 3, 8] {
            let r = crate::run_sql(&c, sql, &EngineOptions::with_threads(threads)).unwrap();
            assert_eq!(r, base, "threads = {threads}");
        }
    }

    #[test]
    fn errors_match_serial_engine() {
        let c = catalog();
        for sql in [
            "SELECT COUNT(*) FROM missing",
            "SELECT COUNT(*) FROM flights WHERE nope = 1",
            "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st ORDER BY nope",
            "SELECT o_st FROM flights",
            "SELECT COUNT(*) FROM flights t, flights s",
        ] {
            let query = themis_sql::parse(sql).unwrap();
            let serial = crate::exec::execute(&c, &query).unwrap_err();
            let parallel = execute_parallel(&c, &query, &opts()).unwrap_err();
            assert_eq!(parallel, serial, "{sql}");
        }
    }

    #[test]
    fn engine_description_names_the_configuration() {
        let d = EngineOptions::with_threads(1).describe();
        assert!(d.contains("1 thread,"), "{d}");
        let d = EngineOptions {
            threads: 4,
            morsel_rows: 512,
            ..EngineOptions::default()
        }
        .describe();
        assert!(d.contains("4 threads") && d.contains("512 rows/morsel"), "{d}");
        assert!(!d.contains("limits:"), "unarmed options stay terse: {d}");
        let d = EngineOptions {
            limits: crate::guard::Limits {
                max_rows: Some(10),
                ..crate::guard::Limits::default()
            },
            ..EngineOptions::default()
        }
        .describe();
        assert!(d.contains("limits: max 10 rows"), "{d}");
    }

    #[test]
    fn group_values_are_labels() {
        let c = catalog();
        let r = run(&c, "SELECT d_st, COUNT(*) FROM flights GROUP BY d_st");
        for row in &r.rows {
            assert!(matches!(&row[0], Value::Str(_)));
            assert!(matches!(&row[1], Value::Num(_)));
        }
    }
}
