//! Serial query execution: name resolution, predicate compilation, hash
//! group-by, and hash self-join.
//!
//! This module is the **reference engine**: a straightforward single-threaded
//! interpreter whose behaviour defines the semantics the morsel-driven
//! parallel engine ([`crate::exec_parallel`]) must reproduce exactly. The
//! query *planning* layer (name resolution, mask compilation, select
//! compilation — `plan_scan` / `plan_join`) and the per-row aggregate
//! *fold* (`fold_row`) are shared by both engines so they cannot drift
//! apart; only the drive loop differs.

use crate::catalog::Catalog;
use crate::guard::{QueryGuard, RowMeter};
use crate::value::{QueryResult, Value};
use std::collections::HashMap;
use std::fmt;
use themis_data::{AttrId, Relation};
use themis_sql::{
    AggFunc, ColumnRef, Comparison, Literal, Predicate, Query, SelectItem,
};

/// Execution error.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// FROM references a table not in the catalog.
    UnknownTable(String),
    /// A column does not resolve against any bound table.
    UnknownColumn(String),
    /// A query shape the engine does not support.
    Unsupported(String),
    /// SQL failed to parse (from [`run_sql`]).
    Parse(String),
    /// A governance limit tripped: the deadline passed, the query was
    /// cancelled, or a row/group budget was exceeded (see [`crate::guard`]).
    Governed(crate::guard::Trip),
    /// A worker panicked; the panic was contained (it never unwinds the
    /// caller) and surfaced as this typed error.
    Internal(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table {t}"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            ExecError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            ExecError::Parse(m) => write!(f, "{m}"),
            ExecError::Governed(t) => write!(f, "query stopped: {t}"),
            ExecError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Parse and execute a SQL string against a catalog on the morsel-driven
/// engine configured by `opts`.
///
/// This is the production entry point: at `threads: 1` the morsels run
/// inline on the caller, and for a fixed `morsel_rows` the result is
/// bit-identical at every thread count. This module's serial interpreter
/// ([`execute`]) stays available as the differential-testing oracle.
pub fn run_sql(
    catalog: &Catalog,
    sql: &str,
    opts: &crate::exec_parallel::EngineOptions,
) -> Result<QueryResult, ExecError> {
    let query = themis_sql::parse(sql).map_err(|e| ExecError::Parse(e.to_string()))?;
    crate::exec_parallel::execute_parallel(catalog, &query, opts)
}

/// Execute a parsed query on the serial reference engine.
pub fn execute(catalog: &Catalog, query: &Query) -> Result<QueryResult, ExecError> {
    let mut result = match query.from.len() {
        1 => execute_scan(catalog, query)?,
        2 => execute_join(catalog, query)?,
        n => return Err(ExecError::Unsupported(format!("{n} tables in FROM"))),
    };
    if let Some(order) = &query.order_by {
        apply_order_by(&mut result, order)?;
    }
    if let Some(limit) = query.limit {
        result.rows.truncate(limit);
    }
    Ok(result)
}

/// Execute a parsed query on the serial engine under a
/// [`QueryGuard`] armed from `opts` — the serial
/// counterpart to the governed [`crate::execute_parallel`].
///
/// With no limits, token, or fault plan configured this is bit-identical to
/// [`execute`] (the guard is inert and the drive loops fold rows in the same
/// order). `opts.threads` is ignored — execution is serial — but
/// `opts.morsel_rows` is honoured as the boundary stride so morsel indices
/// (and therefore injected [`FaultPlan`](crate::guard::FaultPlan) faults and
/// cooperative checks) line up with the parallel engine's decomposition: the
/// same fault trips at the same point on both engines, yielding the same
/// typed error. Panics below (e.g. the injected worker-panic fault) are
/// contained and surface as [`ExecError::Internal`].
pub fn execute_guarded(
    catalog: &Catalog,
    query: &Query,
    opts: &crate::EngineOptions,
) -> Result<QueryResult, ExecError> {
    let guard = QueryGuard::arm(opts);
    let morsel_rows = opts.morsel_rows.max(1);
    let _span = opts.trace.span("execute_serial");
    crate::guard::contain_panics(|| {
        let mut result = match query.from.len() {
            1 => scan_guarded(catalog, query, morsel_rows, &guard, &opts.trace)?,
            2 => join_guarded(catalog, query, morsel_rows, &guard, &opts.trace)?,
            n => return Err(ExecError::Unsupported(format!("{n} tables in FROM"))),
        };
        if let Some(order) = &query.order_by {
            apply_order_by(&mut result, order)?;
        }
        if let Some(limit) = query.limit {
            result.rows.truncate(limit);
        }
        opts.trace.add("groups_out", result.rows.len() as u64);
        Ok(result)
    })
}

/// Sort the result rows by a named output column (the engines call this for
/// `ORDER BY`; the hybrid query router re-applies it after unioning BN
/// groups into an ordered result).
pub fn apply_order_by(
    result: &mut QueryResult,
    order: &themis_sql::OrderBy,
) -> Result<(), ExecError> {
    let idx = result
        .columns
        .iter()
        .position(|c| c.eq_ignore_ascii_case(&order.column))
        .ok_or_else(|| {
            ExecError::UnknownColumn(format!("ORDER BY {} (not an output column)", order.column))
        })?;
    result.rows.sort_by(|a, b| {
        let ord = match (&a[idx], &b[idx]) {
            (Value::Num(x), Value::Num(y)) => x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal),
            (Value::Str(x), Value::Str(y)) => x.cmp(y),
            // Mixed cell types cannot arise within one column.
            _ => std::cmp::Ordering::Equal,
        };
        if order.desc {
            ord.reverse()
        } else {
            ord
        }
    });
    Ok(())
}

/// A column resolved to (table slot, attribute).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Resolved {
    pub(crate) table: usize,
    pub(crate) attr: AttrId,
}

/// Resolve a column against the bound tables. The magic column `weight`
/// (absent from the schema) resolves to `None` — it denotes the implicit
/// weight column.
fn resolve(
    col: &ColumnRef,
    bindings: &[(&str, &Relation)],
) -> Result<Option<Resolved>, ExecError> {
    let candidates: Vec<usize> = bindings
        .iter()
        .enumerate()
        .filter(|(_, (name, _))| col.table.as_deref().is_none_or(|t| t == *name))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return Err(ExecError::UnknownColumn(col.to_string()));
    }
    let mut found = None;
    for i in candidates {
        if let Some(attr) = bindings[i].1.schema().attr_id(&col.column) {
            if found.is_some() {
                return Err(ExecError::Unsupported(format!(
                    "ambiguous column {col}; qualify it with a table alias"
                )));
            }
            found = Some(Resolved { table: i, attr });
        }
    }
    match found {
        Some(r) => Ok(Some(r)),
        None if col.column.eq_ignore_ascii_case("weight") => Ok(None),
        None => Err(ExecError::UnknownColumn(col.to_string())),
    }
}

/// Numeric key of one domain value: the label parsed as a number when
/// possible, else the value id. Used for range comparisons and AVG/SUM.
pub(crate) fn numeric_key(label: &str, id: usize) -> f64 {
    label.parse::<f64>().unwrap_or(id as f64)
}

/// Numeric keys of every value of a domain, materialized for per-row
/// aggregate lookups (SUM/AVG/MIN/MAX evaluate one of these per input row,
/// so the table pays for itself; predicate compilation instead streams
/// [`numeric_key`] straight off the label slice — see [`compile_mask`]).
pub(crate) fn numeric_keys(rel: &Relation, attr: AttrId) -> Vec<f64> {
    rel.schema()
        .domain(attr)
        .labels()
        .iter()
        .enumerate()
        .map(|(i, l)| numeric_key(l, i))
        .collect()
}

/// Compile a non-join predicate into a per-value-id admission mask.
pub(crate) fn compile_mask(
    rel: &Relation,
    attr: AttrId,
    op: Comparison,
    value: &Literal,
) -> Result<Vec<bool>, ExecError> {
    let domain = rel.schema().domain(attr);
    let n = domain.size();
    let mask: Vec<bool> = match value {
        Literal::Str(s) => {
            let id = domain.id_of(s);
            match op {
                Comparison::Eq => (0..n).map(|i| Some(i as u32) == id).collect(),
                Comparison::Ne => (0..n).map(|i| Some(i as u32) != id).collect(),
                // Ordered comparison against a label uses domain order.
                _ => {
                    let Some(id) = id else {
                        return Err(ExecError::Unsupported(format!(
                            "label '{s}' not in domain for ordered comparison"
                        )));
                    };
                    (0..n)
                        .map(|i| apply_cmp(op, i as f64, id as f64))
                        .collect()
                }
            }
        }
        // Stream the numeric key of each label directly rather than
        // materializing a Vec<f64> per predicate.
        Literal::Num(x) => domain
            .labels()
            .iter()
            .enumerate()
            .map(|(i, l)| apply_cmp(op, numeric_key(l, i), *x))
            .collect(),
    };
    Ok(mask)
}

fn apply_cmp(op: Comparison, lhs: f64, rhs: f64) -> bool {
    match op {
        Comparison::Eq => lhs == rhs,
        Comparison::Ne => lhs != rhs,
        Comparison::Lt => lhs < rhs,
        Comparison::Le => lhs <= rhs,
        Comparison::Gt => lhs > rhs,
        Comparison::Ge => lhs >= rhs,
    }
}

/// Compile an IN predicate to a mask.
pub(crate) fn compile_in_mask(
    rel: &Relation,
    attr: AttrId,
    values: &[Literal],
) -> Result<Vec<bool>, ExecError> {
    let domain = rel.schema().domain(attr);
    let mut mask = vec![false; domain.size()];
    for v in values {
        match v {
            Literal::Str(s) => {
                if let Some(id) = domain.id_of(s) {
                    mask[id as usize] = true;
                }
            }
            Literal::Num(x) => {
                for (i, l) in domain.labels().iter().enumerate() {
                    if numeric_key(l, i) == *x {
                        mask[i] = true;
                    }
                }
            }
        }
    }
    Ok(mask)
}

/// One compiled aggregate.
pub(crate) enum CompiledAgg {
    CountStar,
    /// SUM over the implicit weight column (≡ COUNT(*) in the open-world
    /// model).
    SumWeight,
    Sum(Resolved),
    Avg(Resolved),
    Min(Resolved),
    Max(Resolved),
}

/// The compiled SELECT list: grouping columns and aggregates with their
/// output names.
pub(crate) struct CompiledSelect {
    pub(crate) group_cols: Vec<Resolved>,
    pub(crate) group_names: Vec<String>,
    pub(crate) aggs: Vec<CompiledAgg>,
    pub(crate) agg_names: Vec<String>,
}

pub(crate) fn compile_select(
    query: &Query,
    bindings: &[(&str, &Relation)],
) -> Result<CompiledSelect, ExecError> {
    let mut group_cols = Vec::new();
    let mut group_names = Vec::new();
    for g in &query.group_by {
        let r = resolve(g, bindings)?
            .ok_or_else(|| ExecError::Unsupported("GROUP BY weight".into()))?;
        group_cols.push(r);
        group_names.push(g.to_string());
    }

    let mut aggs = Vec::new();
    let mut agg_names = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Column(c) => {
                let r = resolve(c, bindings)?
                    .ok_or_else(|| ExecError::Unsupported("SELECT weight".into()))?;
                if !group_cols.contains(&r) {
                    // Implicit GROUP BY for bare columns in aggregate-free
                    // position is not supported; require explicit grouping
                    // unless the query has no GROUP BY at all (then treat
                    // the bare column list as the grouping, matching the
                    // paper's shorthand in Table 5).
                    if query.group_by.is_empty() {
                        group_cols.push(r);
                        group_names.push(c.to_string());
                    } else {
                        return Err(ExecError::Unsupported(format!(
                            "column {c} must appear in GROUP BY"
                        )));
                    }
                }
            }
            SelectItem::Aggregate { func, arg, alias } => {
                let compiled = match (func, arg) {
                    (AggFunc::Count, None) => CompiledAgg::CountStar,
                    (AggFunc::Count, Some(_)) => CompiledAgg::CountStar,
                    (AggFunc::Sum, Some(c)) => match resolve(c, bindings)? {
                        Some(r) => CompiledAgg::Sum(r),
                        None => CompiledAgg::SumWeight,
                    },
                    (AggFunc::Avg, Some(c)) => match resolve(c, bindings)? {
                        Some(r) => CompiledAgg::Avg(r),
                        None => {
                            return Err(ExecError::Unsupported("AVG(weight)".into()));
                        }
                    },
                    (AggFunc::Min, Some(c)) => match resolve(c, bindings)? {
                        Some(r) => CompiledAgg::Min(r),
                        None => return Err(ExecError::Unsupported("MIN(weight)".into())),
                    },
                    (AggFunc::Max, Some(c)) => match resolve(c, bindings)? {
                        Some(r) => CompiledAgg::Max(r),
                        None => return Err(ExecError::Unsupported("MAX(weight)".into())),
                    },
                    (f, None) => {
                        return Err(ExecError::Unsupported(format!("{}()", f.name())));
                    }
                };
                let name = alias.clone().unwrap_or_else(|| match item {
                    SelectItem::Aggregate { func, arg, .. } => match arg {
                        Some(c) => format!("{}({c})", func.name()),
                        None => format!("{}(*)", func.name()),
                    },
                    SelectItem::Column(_) => unreachable!(),
                });
                aggs.push(compiled);
                agg_names.push(name);
            }
        }
    }
    if aggs.is_empty() {
        return Err(ExecError::Unsupported(
            "queries must contain at least one aggregate".into(),
        ));
    }
    Ok(CompiledSelect {
        group_cols,
        group_names,
        aggs,
        agg_names,
    })
}

/// Accumulator per group: total weight plus per-aggregate (weighted sum)
/// state.
pub(crate) struct Accum {
    pub(crate) weight: f64,
    pub(crate) sums: Vec<f64>,
    /// Whether any positive-weight row has been folded in (MIN/MAX need a
    /// first-value seed and must ignore zero-weight rows).
    pub(crate) seen: bool,
}

impl Accum {
    /// A zeroed accumulator for `n_aggs` aggregates.
    pub(crate) fn zero(n_aggs: usize) -> Self {
        Accum {
            weight: 0.0,
            sums: vec![0.0; n_aggs],
            seen: false,
        }
    }
}

/// Precompute the per-aggregate numeric-key tables ([`numeric_keys`]) used
/// by SUM/AVG/MIN/MAX. Shared by both engines so each query computes them
/// once (the parallel engine hands references to every morsel task).
pub(crate) fn agg_numeric_tables(
    select: &CompiledSelect,
    bindings: &[(&str, &Relation)],
) -> Vec<Option<Vec<f64>>> {
    select
        .aggs
        .iter()
        .map(|a| match a {
            CompiledAgg::Sum(r)
            | CompiledAgg::Avg(r)
            | CompiledAgg::Min(r)
            | CompiledAgg::Max(r) => Some(numeric_keys(bindings[r.table].1, r.attr)),
            _ => None,
        })
        .collect()
}

/// A mutable view of one group's accumulator state, independent of where it
/// lives (a serial [`Accum`] or a slot in a parallel flat block).
pub(crate) struct AccumRef<'a> {
    pub(crate) weight: &'a mut f64,
    pub(crate) sums: &'a mut [f64],
    pub(crate) seen: &'a mut bool,
}

/// Fold one input row into an accumulator. `rows[t]` is the row index of
/// table slot `t`. This is the single definition of per-row aggregate
/// semantics — the serial and parallel engines both call it, so they agree
/// bit-for-bit on every fold.
pub(crate) fn fold_row(
    select: &CompiledSelect,
    bindings: &[(&str, &Relation)],
    numeric: &[Option<Vec<f64>>],
    acc: AccumRef<'_>,
    rows: &[usize],
    weight: f64,
) {
    let AccumRef {
        weight: acc_weight,
        sums: acc_sums,
        seen: acc_seen,
    } = acc;
    *acc_weight += weight;
    for (i, agg) in select.aggs.iter().enumerate() {
        match agg {
            CompiledAgg::CountStar | CompiledAgg::SumWeight => acc_sums[i] += weight,
            CompiledAgg::Sum(r) | CompiledAgg::Avg(r) => {
                let v = bindings[r.table].1.value(rows[r.table], r.attr);
                // themis-lint: allow(no-panic-in-libs) reason=compile_select precomputes numeric tables for every SUM/AVG/MIN/MAX; this is the per-row hot path
                acc_sums[i] += weight * numeric[i].as_ref().expect("precomputed")[v as usize];
            }
            CompiledAgg::Min(r) => {
                if weight > 0.0 {
                    let v = bindings[r.table].1.value(rows[r.table], r.attr);
                    // themis-lint: allow(no-panic-in-libs) reason=compile_select precomputes numeric tables for every SUM/AVG/MIN/MAX; this is the per-row hot path
                    let key = numeric[i].as_ref().expect("precomputed")[v as usize];
                    acc_sums[i] = if *acc_seen { acc_sums[i].min(key) } else { key };
                }
            }
            CompiledAgg::Max(r) => {
                if weight > 0.0 {
                    let v = bindings[r.table].1.value(rows[r.table], r.attr);
                    // themis-lint: allow(no-panic-in-libs) reason=compile_select precomputes numeric tables for every SUM/AVG/MIN/MAX; this is the per-row hot path
                    let key = numeric[i].as_ref().expect("precomputed")[v as usize];
                    acc_sums[i] = if *acc_seen { acc_sums[i].max(key) } else { key };
                }
            }
        }
    }
    // Only positive-weight rows seed MIN/MAX: a zero-weight row must not
    // plant a stale 0.0 that a later min()/max() folds in.
    if weight > 0.0 {
        *acc_seen = true;
    }
}

/// Fresh group table for a serial drive loop, pre-seeded with the implicit
/// scalar group (SQL semantics: an aggregate-only query over an empty input
/// returns a single all-zero row, not an empty result).
fn new_groups(select: &CompiledSelect) -> HashMap<Vec<u32>, Accum> {
    let mut groups = HashMap::new();
    if select.group_cols.is_empty() {
        groups.insert(Vec::new(), Accum::zero(select.aggs.len()));
    }
    groups
}

/// Fold one input row into the serial group table (key lookup + shared
/// [`fold_row`]). Both serial drive loops (plain and guarded) go through
/// this, so they agree bit-for-bit.
fn fold_into(
    select: &CompiledSelect,
    bindings: &[(&str, &Relation)],
    numeric: &[Option<Vec<f64>>],
    groups: &mut HashMap<Vec<u32>, Accum>,
    row_idx: &[usize],
    weight: f64,
) {
    let key: Vec<u32> = select
        .group_cols
        .iter()
        .map(|r| bindings[r.table].1.value(row_idx[r.table], r.attr))
        .collect();
    let acc = groups
        .entry(key)
        .or_insert_with(|| Accum::zero(select.aggs.len()));
    fold_row(
        select,
        bindings,
        numeric,
        AccumRef {
            weight: &mut acc.weight,
            sums: &mut acc.sums,
            seen: &mut acc.seen,
        },
        row_idx,
        weight,
    );
}

/// Shared aggregation driver over an iterator of joined rows.
fn aggregate_rows(
    select: &CompiledSelect,
    bindings: &[(&str, &Relation)],
    rows: impl Iterator<Item = (Vec<usize>, f64)>,
) -> QueryResult {
    let numeric = agg_numeric_tables(select, bindings);
    let mut groups = new_groups(select);
    for (row_idx, weight) in rows {
        fold_into(select, bindings, &numeric, &mut groups, &row_idx, weight);
    }
    finalize_groups(select, bindings, groups)
}

/// Turn accumulated groups into the final sorted [`QueryResult`]. Shared by
/// both engines so output formatting and row order are identical.
pub(crate) fn finalize_groups(
    select: &CompiledSelect,
    bindings: &[(&str, &Relation)],
    groups: impl IntoIterator<Item = (Vec<u32>, Accum)>,
) -> QueryResult {
    let mut rows_out: Vec<Vec<Value>> = groups
        .into_iter()
        .map(|(key, acc)| {
            let mut row: Vec<Value> = key
                .iter()
                .zip(&select.group_cols)
                .map(|(&v, r)| {
                    Value::Str(
                        bindings[r.table]
                            .1
                            .schema()
                            .domain(r.attr)
                            .label(v)
                            .to_string(),
                    )
                })
                .collect();
            for (i, agg) in select.aggs.iter().enumerate() {
                let v = match agg {
                    CompiledAgg::Avg(_) => {
                        if acc.weight > 0.0 {
                            acc.sums[i] / acc.weight
                        } else {
                            0.0
                        }
                    }
                    _ => acc.sums[i],
                };
                row.push(Value::Num(v));
            }
            row
        })
        .collect();
    rows_out.sort_by(|a, b| {
        let ka: Vec<&str> = a
            .iter()
            .filter_map(|v| match v {
                Value::Str(s) => Some(s.as_str()),
                Value::Num(_) => None,
            })
            .collect();
        let kb: Vec<&str> = b
            .iter()
            .filter_map(|v| match v {
                Value::Str(s) => Some(s.as_str()),
                Value::Num(_) => None,
            })
            .collect();
        ka.cmp(&kb)
    });

    let mut columns = select.group_names.clone();
    columns.extend(select.agg_names.iter().cloned());
    QueryResult {
        columns,
        rows: rows_out,
        group_arity: select.group_cols.len(),
    }
}

/// A compiled single-table scan: the bound relation, per-attribute admission
/// masks, and the compiled SELECT. Built once per query and shared by both
/// engines, so name-resolution and compilation errors are identical.
pub(crate) struct ScanPlan<'a> {
    pub(crate) rel: &'a Relation,
    pub(crate) bindings: Vec<(&'a str, &'a Relation)>,
    pub(crate) masks: Vec<(AttrId, Vec<bool>)>,
    pub(crate) select: CompiledSelect,
}

/// Compile a single-table query into a [`ScanPlan`].
pub(crate) fn plan_scan<'a>(
    catalog: &'a Catalog,
    query: &'a Query,
) -> Result<ScanPlan<'a>, ExecError> {
    let table = &query.from[0];
    let rel = catalog
        .get(&table.name)
        .ok_or_else(|| ExecError::UnknownTable(table.name.clone()))?;
    let bindings: Vec<(&str, &Relation)> = vec![(table.binding(), rel)];

    // Compile predicates to masks.
    let mut masks: Vec<(AttrId, Vec<bool>)> = Vec::new();
    for p in &query.predicates {
        match p {
            Predicate::Compare { col, op, value } => {
                let r = resolve(col, &bindings)?
                    .ok_or_else(|| ExecError::Unsupported("predicate on weight".into()))?;
                masks.push((r.attr, compile_mask(rel, r.attr, *op, value)?));
            }
            Predicate::In { col, values } => {
                let r = resolve(col, &bindings)?
                    .ok_or_else(|| ExecError::Unsupported("predicate on weight".into()))?;
                masks.push((r.attr, compile_in_mask(rel, r.attr, values)?));
            }
            Predicate::JoinEq { .. } => {
                return Err(ExecError::Unsupported(
                    "join predicate on a single-table query".into(),
                ));
            }
        }
    }

    let select = compile_select(query, &bindings)?;
    Ok(ScanPlan {
        rel,
        bindings,
        masks,
        select,
    })
}

fn execute_scan(catalog: &Catalog, query: &Query) -> Result<QueryResult, ExecError> {
    let ScanPlan {
        rel,
        bindings,
        masks,
        select,
    } = plan_scan(catalog, query)?;
    let weights = rel.weights();
    let rows = (0..rel.len()).filter_map(move |r| {
        for (attr, mask) in &masks {
            if !mask[rel.value(r, *attr) as usize] {
                return None;
            }
        }
        Some((vec![r], weights[r]))
    });
    Ok(aggregate_rows(&select, &bindings, rows))
}

/// Guarded serial scan: same fold order as [`execute_scan`], with guard
/// hooks at morsel boundaries (`row / morsel_rows`, matching the parallel
/// decomposition) and row charges via [`RowMeter`].
fn scan_guarded(
    catalog: &Catalog,
    query: &Query,
    morsel_rows: usize,
    guard: &QueryGuard,
    trace: &themis_obs::TraceSink,
) -> Result<QueryResult, ExecError> {
    let ScanPlan {
        rel,
        bindings,
        masks,
        select,
    } = plan_scan(catalog, query)?;
    let weights = rel.weights();
    let numeric = agg_numeric_tables(&select, &bindings);
    let mut groups = new_groups(&select);
    let mut meter = RowMeter::new(guard);
    let mut morsels = 0u64;
    let mut rows_masked = 0u64;
    let mut rows_folded = 0u64;
    'rows: for r in 0..rel.len() {
        if r % morsel_rows == 0 {
            meter.flush()?;
            morsels += 1;
            guard.at_morsel((r / morsel_rows) as u64)?;
            guard.check_groups(groups.len())?;
        }
        meter.tick()?;
        for (attr, mask) in &masks {
            if !mask[rel.value(r, *attr) as usize] {
                rows_masked += 1;
                continue 'rows;
            }
        }
        rows_folded += 1;
        fold_into(&select, &bindings, &numeric, &mut groups, &[r], weights[r]);
    }
    meter.flush()?;
    guard.check_groups(groups.len())?;
    if trace.is_enabled() {
        // Same counter names and — because the guarded drive loop mirrors
        // the morsel decomposition exactly — the same totals as the
        // parallel engine's per-morsel tallies.
        trace.add_counts(&[
            ("guard_checks", morsels + meter.checks()),
            ("morsels", morsels),
            ("rows_folded", rows_folded),
            ("rows_masked", rows_masked),
            ("rows_scanned", rel.len() as u64),
        ]);
    }
    Ok(finalize_groups(&select, &bindings, groups))
}

/// A compiled two-table equi-join: both bound relations, the join-key column
/// pairs (left side first), per-side admission masks, and the compiled
/// SELECT. Shared by both engines.
pub(crate) struct JoinPlan<'a> {
    pub(crate) left: &'a Relation,
    pub(crate) right: &'a Relation,
    pub(crate) bindings: Vec<(&'a str, &'a Relation)>,
    pub(crate) join_keys: Vec<(Resolved, Resolved)>,
    pub(crate) masks: Vec<(Resolved, Vec<bool>)>,
    pub(crate) select: CompiledSelect,
}

impl JoinPlan<'_> {
    /// Whether `row` of table slot `table` passes every mask on that side.
    pub(crate) fn passes(&self, table: usize, row: usize) -> bool {
        self.masks
            .iter()
            .filter(|(r, _)| r.table == table)
            .all(|(r, mask)| mask[self.bindings[table].1.value(row, r.attr) as usize])
    }
}

/// Compile a two-table query into a [`JoinPlan`].
pub(crate) fn plan_join<'a>(
    catalog: &'a Catalog,
    query: &'a Query,
) -> Result<JoinPlan<'a>, ExecError> {
    let left_ref = &query.from[0];
    let right_ref = &query.from[1];
    let left = catalog
        .get(&left_ref.name)
        .ok_or_else(|| ExecError::UnknownTable(left_ref.name.clone()))?;
    let right = catalog
        .get(&right_ref.name)
        .ok_or_else(|| ExecError::UnknownTable(right_ref.name.clone()))?;
    let bindings: Vec<(&str, &Relation)> =
        vec![(left_ref.binding(), left), (right_ref.binding(), right)];

    // Split predicates into join keys and per-side filters.
    let mut join_keys: Vec<(Resolved, Resolved)> = Vec::new();
    let mut masks: Vec<(Resolved, Vec<bool>)> = Vec::new();
    for p in &query.predicates {
        match p {
            Predicate::JoinEq { left: l, right: r } => {
                let lr = resolve(l, &bindings)?
                    .ok_or_else(|| ExecError::Unsupported("join on weight".into()))?;
                let rr = resolve(r, &bindings)?
                    .ok_or_else(|| ExecError::Unsupported("join on weight".into()))?;
                if lr.table == rr.table {
                    return Err(ExecError::Unsupported(
                        "join predicate must span both tables".into(),
                    ));
                }
                let (a, b) = if lr.table == 0 { (lr, rr) } else { (rr, lr) };
                join_keys.push((a, b));
            }
            Predicate::Compare { col, op, value } => {
                let r = resolve(col, &bindings)?
                    .ok_or_else(|| ExecError::Unsupported("predicate on weight".into()))?;
                let rel = bindings[r.table].1;
                masks.push((r, compile_mask(rel, r.attr, *op, value)?));
            }
            Predicate::In { col, values } => {
                let r = resolve(col, &bindings)?
                    .ok_or_else(|| ExecError::Unsupported("predicate on weight".into()))?;
                let rel = bindings[r.table].1;
                masks.push((r, compile_in_mask(rel, r.attr, values)?));
            }
        }
    }
    if join_keys.is_empty() {
        return Err(ExecError::Unsupported(
            "two-table query without a join condition (cross products are not supported)".into(),
        ));
    }

    let select = compile_select(query, &bindings)?;
    Ok(JoinPlan {
        left,
        right,
        bindings,
        join_keys,
        masks,
        select,
    })
}

fn execute_join(catalog: &Catalog, query: &Query) -> Result<QueryResult, ExecError> {
    let plan = plan_join(catalog, query)?;
    let (left, right) = (plan.left, plan.right);

    // Build a hash table over the right side keyed by the join columns.
    let mut built: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for row in 0..right.len() {
        if !plan.passes(1, row) {
            continue;
        }
        let key: Vec<u32> = plan
            .join_keys
            .iter()
            .map(|(_, r)| right.value(row, r.attr))
            .collect();
        built.entry(key).or_default().push(row);
    }

    let mut joined: Vec<(Vec<usize>, f64)> = Vec::new();
    for lrow in 0..left.len() {
        if !plan.passes(0, lrow) {
            continue;
        }
        let key: Vec<u32> = plan
            .join_keys
            .iter()
            .map(|(l, _)| left.value(lrow, l.attr))
            .collect();
        if let Some(matches) = built.get(&key) {
            for &rrow in matches {
                joined.push((
                    vec![lrow, rrow],
                    left.weights()[lrow] * right.weights()[rrow],
                ));
            }
        }
    }
    Ok(aggregate_rows(&plan.select, &plan.bindings, joined.into_iter()))
}

/// Guarded serial hash join: same build/probe/fold order as
/// [`execute_join`] (probe pairs fold inline instead of materializing, which
/// preserves the order exactly), with guard hooks at morsel boundaries on
/// both sides. Charges mirror the parallel engine's: every build row, every
/// probe row, and every joined pair folded.
fn join_guarded(
    catalog: &Catalog,
    query: &Query,
    morsel_rows: usize,
    guard: &QueryGuard,
    trace: &themis_obs::TraceSink,
) -> Result<QueryResult, ExecError> {
    let plan = plan_join(catalog, query)?;
    let (left, right) = (plan.left, plan.right);
    let numeric = agg_numeric_tables(&plan.select, &plan.bindings);
    let mut meter = RowMeter::new(guard);
    let mut morsels = 0u64;
    let mut rows_masked = 0u64;
    let mut pairs_folded = 0u64;

    let mut built: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
    for row in 0..right.len() {
        if row % morsel_rows == 0 {
            meter.flush()?;
            morsels += 1;
            guard.at_morsel((row / morsel_rows) as u64)?;
        }
        meter.tick()?;
        if !plan.passes(1, row) {
            rows_masked += 1;
            continue;
        }
        let key: Vec<u32> = plan
            .join_keys
            .iter()
            .map(|(_, r)| right.value(row, r.attr))
            .collect();
        built.entry(key).or_default().push(row);
    }
    meter.flush()?;

    let mut groups = new_groups(&plan.select);
    let (lw, rw) = (left.weights(), right.weights());
    for (lrow, &lweight) in lw.iter().enumerate() {
        if lrow % morsel_rows == 0 {
            meter.flush()?;
            morsels += 1;
            guard.at_morsel((lrow / morsel_rows) as u64)?;
            guard.check_groups(groups.len())?;
        }
        meter.tick()?;
        if !plan.passes(0, lrow) {
            rows_masked += 1;
            continue;
        }
        let key: Vec<u32> = plan
            .join_keys
            .iter()
            .map(|(l, _)| left.value(lrow, l.attr))
            .collect();
        if let Some(matches) = built.get(&key) {
            for &rrow in matches {
                meter.tick()?;
                pairs_folded += 1;
                fold_into(
                    &plan.select,
                    &plan.bindings,
                    &numeric,
                    &mut groups,
                    &[lrow, rrow],
                    lweight * rw[rrow],
                );
            }
        }
    }
    meter.flush()?;
    guard.check_groups(groups.len())?;
    if trace.is_enabled() {
        trace.add_counts(&[
            ("guard_checks", morsels + meter.checks()),
            ("morsels", morsels),
            ("pairs_folded", pairs_folded),
            ("rows_masked", rows_masked),
            ("rows_scanned", (right.len() + left.len()) as u64),
        ]);
    }
    Ok(finalize_groups(&plan.select, &plan.bindings, groups))
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_data::paper_example::{example_population, example_sample};

    /// These are semantics tests for the serial reference engine, so run
    /// straight through [`execute`] (shadows the crate-level `run_sql`,
    /// which drives the morsel engine).
    fn run_sql(catalog: &Catalog, sql: &str) -> Result<QueryResult, ExecError> {
        let query = themis_sql::parse(sql).map_err(|e| ExecError::Parse(e.to_string()))?;
        execute(catalog, &query)
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register("flights", example_population());
        c.register("sample", example_sample());
        c
    }

    #[test]
    fn count_star_sums_weights() {
        let c = catalog();
        let r = run_sql(&c, "SELECT COUNT(*) FROM flights").unwrap();
        assert_eq!(r.scalar(), Some(10.0));
    }

    #[test]
    fn sum_weight_is_count_star() {
        let mut c = Catalog::new();
        let mut s = example_sample();
        s.fill_weights(2.5);
        c.register("s", s);
        let r = run_sql(&c, "SELECT SUM(weight) AS n FROM s").unwrap();
        assert_eq!(r.scalar(), Some(10.0));
        assert_eq!(r.columns, vec!["n"]);
    }

    #[test]
    fn filtered_group_by_count() {
        let c = catalog();
        let r = run_sql(
            &c,
            "SELECT o_st, COUNT(*) FROM flights WHERE date = '01' GROUP BY o_st",
        )
        .unwrap();
        let m = r.to_map();
        assert_eq!(m[&vec!["FL".to_string()]], vec![2.0]);
        assert_eq!(m[&vec!["NC".to_string()]], vec![1.0]);
        assert_eq!(m[&vec!["NY".to_string()]], vec![2.0]);
    }

    #[test]
    fn bare_select_columns_group_implicitly() {
        // Table 5 writes "SELECT O, AVG(E) FROM F" leaving GROUP BY implied.
        let c = catalog();
        let a = run_sql(&c, "SELECT o_st, COUNT(*) FROM flights").unwrap();
        let b = run_sql(&c, "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st").unwrap();
        assert_eq!(a.to_map(), b.to_map());
    }

    #[test]
    fn avg_is_weighted() {
        let mut c = Catalog::new();
        let mut s = example_sample();
        // weights: [1, 1, 8, 2]; date ids: [0, 0, 1, 0].
        s.set_weights(vec![1.0, 1.0, 8.0, 2.0]);
        c.register("s", s);
        let r = run_sql(&c, "SELECT AVG(date) AS a FROM s").unwrap();
        // Weighted mean of date ids (labels "01"/"02" parse to 1.0/2.0):
        // (1*1 + 1*1 + 8*2 + 2*1) / 12 = 20/12.
        assert!((r.scalar().unwrap() - 20.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn in_predicate_filters() {
        let c = catalog();
        let r = run_sql(
            &c,
            "SELECT COUNT(*) FROM flights WHERE o_st IN ('FL', 'NY')",
        )
        .unwrap();
        assert_eq!(r.scalar(), Some(6.0));
    }

    #[test]
    fn numeric_range_predicate() {
        let c = catalog();
        // date labels "01", "02" parse numerically.
        let r = run_sql(&c, "SELECT COUNT(*) FROM flights WHERE date <= 1").unwrap();
        assert_eq!(r.scalar(), Some(5.0));
    }

    #[test]
    fn self_join_counts_connecting_pairs() {
        let c = catalog();
        // Flights into X joined with flights out of X.
        let r = run_sql(
            &c,
            "SELECT COUNT(*) FROM flights t, flights s WHERE t.d_st = s.o_st",
        )
        .unwrap();
        // Hand count: d_st counts FL=4,NC=1,NY=5; o_st counts FL=3,NC=4,NY=3.
        // Σ_x d(x)·o(x) = 4*3 + 1*4 + 5*3 = 31.
        assert_eq!(r.scalar(), Some(31.0));
    }

    #[test]
    fn join_weights_multiply() {
        let mut c = Catalog::new();
        let mut s = example_sample();
        s.fill_weights(2.0);
        c.register("f", s);
        let r = run_sql(&c, "SELECT COUNT(*) FROM f t, f s WHERE t.d_st = s.o_st").unwrap();
        // Unweighted pair count on the sample: d_st [FL,FL,NY,NC] ids, o_st
        // [FL,FL,NC,NY]: d(FL)=2 · o(FL)=2 + d(NY)=1 · o(NY)=1 + d(NC)=1 ·
        // o(NC)=1 = 6 pairs, each weighted 2*2.
        assert_eq!(r.scalar(), Some(24.0));
    }

    #[test]
    fn join_with_group_by_and_filter() {
        let c = catalog();
        let r = run_sql(
            &c,
            "SELECT t.o_st, s.d_st, COUNT(*) FROM flights t, flights s \
             WHERE t.d_st = s.o_st AND t.d_st IN ('NC') GROUP BY t.o_st, s.d_st",
        )
        .unwrap();
        // Only NY→NC joins (1 tuple) with NC→* (4 tuples): NC→FL ×1,
        // NC→NY ×3.
        let m = r.to_map();
        assert_eq!(m[&vec!["NY".to_string(), "FL".to_string()]], vec![1.0]);
        assert_eq!(m[&vec!["NY".to_string(), "NY".to_string()]], vec![3.0]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn unknown_names_error() {
        let c = catalog();
        assert!(matches!(
            run_sql(&c, "SELECT COUNT(*) FROM missing"),
            Err(ExecError::UnknownTable(_))
        ));
        assert!(matches!(
            run_sql(&c, "SELECT COUNT(*) FROM flights WHERE nope = 1"),
            Err(ExecError::UnknownColumn(_))
        ));
    }

    #[test]
    fn order_by_desc_limit_returns_top_groups() {
        let c = catalog();
        let r = run_sql(
            &c,
            "SELECT o_st, COUNT(*) AS n FROM flights GROUP BY o_st ORDER BY n DESC LIMIT 1",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        // NC has 4 flights, the most.
        assert_eq!(r.rows[0][0], Value::Str("NC".into()));
        assert_eq!(r.rows[0][1], Value::Num(4.0));
    }

    #[test]
    fn order_by_group_column_sorts_labels() {
        let c = catalog();
        let r = run_sql(
            &c,
            "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st ORDER BY o_st DESC",
        )
        .unwrap();
        let labels: Vec<String> = r
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Str(s) => s.clone(),
                Value::Num(_) => unreachable!(),
            })
            .collect();
        assert_eq!(labels, vec!["NY", "NC", "FL"]);
    }

    #[test]
    fn order_by_unknown_output_column_errors() {
        let c = catalog();
        let err = run_sql(
            &c,
            "SELECT o_st, COUNT(*) FROM flights GROUP BY o_st ORDER BY nope",
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::UnknownColumn(_)));
    }

    #[test]
    fn min_max_aggregate_over_groups() {
        let c = catalog();
        let r = run_sql(
            &c,
            "SELECT o_st, MIN(date), MAX(date) FROM flights GROUP BY o_st",
        )
        .unwrap();
        let m = r.to_map();
        // FL flies in months 01 and 02 (labels parse to 1.0 / 2.0).
        assert_eq!(m[&vec!["FL".to_string()]], vec![1.0, 2.0]);
        // NC: one 01 flight, three 02 flights.
        assert_eq!(m[&vec!["NC".to_string()]], vec![1.0, 2.0]);
    }

    #[test]
    fn min_ignores_zero_weight_rows() {
        let mut c = Catalog::new();
        let mut s = example_sample();
        // Zero out the single date=02 row; MIN/MAX over date must then see
        // only date=01.
        s.set_weights(vec![1.0, 1.0, 0.0, 1.0]);
        c.register("s", s);
        let r = run_sql(&c, "SELECT MIN(date) AS lo, MAX(date) AS hi FROM s").unwrap();
        let m = r.to_map();
        assert_eq!(m[&Vec::<String>::new()], vec![1.0, 1.0]);
    }

    #[test]
    fn min_not_seeded_by_leading_zero_weight_row() {
        let mut c = Catalog::new();
        let mut s = example_sample();
        // First row has weight 0: MIN/MAX must take their seed from the
        // first *positive*-weight row, not a stale 0.0.
        // date ids: [0, 0, 1, 0] → labels "01","01","02","01".
        s.set_weights(vec![0.0, 0.0, 3.0, 0.0]);
        c.register("s", s);
        let r = run_sql(&c, "SELECT MIN(date) AS lo, MAX(date) AS hi FROM s").unwrap();
        let m = r.to_map();
        // Only the date=02 row counts.
        assert_eq!(m[&Vec::<String>::new()], vec![2.0, 2.0]);
    }

    #[test]
    fn empty_filter_returns_zero_row() {
        let c = catalog();
        let r = run_sql(&c, "SELECT COUNT(*) FROM flights WHERE o_st = 'FL' AND d_st = 'NC'")
            .unwrap();
        assert_eq!(r.scalar(), Some(0.0));
    }

    #[test]
    fn aggregate_free_queries_are_rejected() {
        let c = catalog();
        assert!(matches!(
            run_sql(&c, "SELECT o_st FROM flights"),
            Err(ExecError::Unsupported(_))
        ));
    }
}
