//! Query output values and result sets.

use std::collections::HashMap;
use std::fmt;

/// An output cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A group-by column value (the domain label).
    Str(String),
    /// An aggregate value.
    Num(f64),
}

impl Value {
    /// Total order over cells, comparing **borrowed** contents (no clones):
    /// labels lexicographically, numbers by value (NaN compares equal to
    /// everything numeric), and — should mixed types ever meet in one
    /// column — numbers before labels.
    pub fn cmp_cell(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a.as_str().cmp(b.as_str()),
            (Value::Num(a), Value::Num(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Value::Num(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Num(_)) => Ordering::Greater,
        }
    }
}

/// Compare two result rows by their leading `arity` cells (the group-by
/// prefix), borrowed — the comparator never clones a label and never drops
/// a cell from the sort key, whatever its type.
pub fn cmp_group_prefix(a: &[Value], b: &[Value], arity: usize) -> std::cmp::Ordering {
    let a = &a[..arity.min(a.len())];
    let b = &b[..arity.min(b.len())];
    for (x, y) in a.iter().zip(b) {
        let ord = x.cmp_cell(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Num(n) => write!(f, "{n:.4}"),
        }
    }
}

/// A query result: column headers plus rows, sorted by the group columns
/// for deterministic output.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Column headers (group columns first, then aggregates).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// How many leading columns are group-by keys.
    pub group_arity: usize,
}

impl QueryResult {
    /// Map from group-key labels to the row's aggregate values. For
    /// aggregate-only queries the single row is keyed by the empty vector.
    pub fn to_map(&self) -> HashMap<Vec<String>, Vec<f64>> {
        let mut out = HashMap::with_capacity(self.rows.len());
        for row in &self.rows {
            let key: Vec<String> = row[..self.group_arity]
                .iter()
                .map(|v| match v {
                    Value::Str(s) => s.clone(),
                    Value::Num(n) => n.to_string(),
                })
                .collect();
            let aggs: Vec<f64> = row[self.group_arity..]
                .iter()
                .map(|v| match v {
                    Value::Num(n) => *n,
                    Value::Str(_) => f64::NAN,
                })
                .collect();
            out.insert(key, aggs);
        }
        out
    }

    /// The single aggregate value of a scalar (no GROUP BY, one aggregate)
    /// result; `None` if the shape doesn't match.
    pub fn scalar(&self) -> Option<f64> {
        if self.group_arity != 0 {
            return None;
        }
        let [row] = self.rows.as_slice() else {
            return None;
        };
        match row.as_slice() {
            [Value::Num(n)] => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> QueryResult {
        QueryResult {
            columns: vec!["state".into(), "count".into()],
            rows: vec![
                vec![Value::Str("CA".into()), Value::Num(10.0)],
                vec![Value::Str("NY".into()), Value::Num(5.0)],
            ],
            group_arity: 1,
        }
    }

    #[test]
    fn to_map_keys_by_group() {
        let m = result().to_map();
        assert_eq!(m[&vec!["CA".to_string()]], vec![10.0]);
        assert_eq!(m[&vec!["NY".to_string()]], vec![5.0]);
    }

    #[test]
    fn scalar_requires_scalar_shape() {
        assert_eq!(result().scalar(), None);
        let s = QueryResult {
            columns: vec!["count".into()],
            rows: vec![vec![Value::Num(7.0)]],
            group_arity: 0,
        };
        assert_eq!(s.scalar(), Some(7.0));
    }

    #[test]
    fn display_renders_rows() {
        let text = result().to_string();
        assert!(text.contains("state | count"));
        assert!(text.contains("CA | 10.0000"));
    }

    #[test]
    fn group_prefix_comparison_orders_labels_and_numbers() {
        use std::cmp::Ordering;
        let a = vec![Value::Str("CA".into()), Value::Num(99.0)];
        let b = vec![Value::Str("NY".into()), Value::Num(1.0)];
        // Only the 1-cell group prefix participates: CA < NY regardless of
        // the aggregate cells.
        assert_eq!(cmp_group_prefix(&a, &b, 1), Ordering::Less);
        assert_eq!(cmp_group_prefix(&b, &a, 1), Ordering::Greater);
        assert_eq!(cmp_group_prefix(&a, &a, 1), Ordering::Equal);
        // Numeric cells are compared by value, not dropped from the key.
        let x = vec![Value::Num(2.0), Value::Num(0.0)];
        let y = vec![Value::Num(10.0), Value::Num(0.0)];
        assert_eq!(cmp_group_prefix(&x, &y, 1), Ordering::Less);
        // Mixed cell types still produce a total order (numbers first).
        assert_eq!(
            cmp_group_prefix(&[Value::Num(5.0)], &[Value::Str("0".into())], 1),
            Ordering::Less
        );
    }
}
