//! # themis-query
//!
//! Weighted columnar query execution for Themis.
//!
//! The paper stores reweighted samples in Postgres with the weight as an
//! extra column and translates `COUNT(*)` into `SUM(weight)` (§4.1, §6.1).
//! This crate implements that execution model natively over
//! [`themis_data::Relation`]: selections compile to per-domain value masks,
//! aggregation is hash group-by over `(group key) → Σ weight`, and
//! self-joins (Table 5's Q6) hash-join two weighted scans with the joined
//! row weight being the *product* of the input weights (each sample tuple
//! stands for `w` population tuples, so a joined pair stands for `w_l · w_r`
//! pairs).

//!
//! Two engines share one planner: [`exec`] is the single-threaded reference
//! engine, [`exec_parallel`] the morsel-driven parallel engine. [`run_sql`]
//! dispatches between them based on `THEMIS_THREADS` (serial at 1 thread,
//! parallel otherwise); the serial engine is the testing oracle the parallel
//! engine is differentially checked against.

pub mod catalog;
pub mod exec;
pub mod exec_parallel;
pub mod value;

pub use catalog::Catalog;
pub use exec::{execute, run_sql, ExecError};
pub use exec_parallel::{execute_auto, execute_parallel, run_sql_parallel, ParallelOptions};
pub use value::{QueryResult, Value};
