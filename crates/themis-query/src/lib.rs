//! # themis-query
//!
//! Weighted columnar query execution for Themis.
//!
//! The paper stores reweighted samples in Postgres with the weight as an
//! extra column and translates `COUNT(*)` into `SUM(weight)` (§4.1, §6.1).
//! This crate implements that execution model natively over
//! [`themis_data::Relation`]: selections compile to per-domain value masks,
//! aggregation is hash group-by over `(group key) → Σ weight`, and
//! self-joins (Table 5's Q6) hash-join two weighted scans with the joined
//! row weight being the *product* of the input weights (each sample tuple
//! stands for `w` population tuples, so a joined pair stands for `w_l · w_r`
//! pairs).
//!
//! ## Engine selection is explicit
//!
//! Two engines share one planner. The **morsel-driven engine**
//! ([`execute_parallel`], reached via [`run_sql`]) is the production path;
//! it takes an explicit [`EngineOptions`] — `{ threads, morsel_rows }` —
//! from the caller, runs morsels inline at `threads: 1`, and produces
//! bit-identical results at every thread count for a fixed `morsel_rows`.
//! The **serial interpreter** ([`execute`]) is the reference oracle the
//! morsel engine is differentially tested against.
//!
//! No code in this crate reads environment variables. Binaries that want an
//! environment-driven thread count (the CLI shell) parse it themselves and
//! pass the resulting `EngineOptions` down.
//!
//! ## Query governance
//!
//! [`EngineOptions`] also carries cooperative [`Limits`] (deadline, row
//! budget, group budget), an optional [`CancelToken`], and a test-only
//! [`FaultPlan`] — see [`guard`]. Both engines check the armed
//! [`QueryGuard`] at morsel and row-fold boundaries; a tripped limit is a
//! typed [`ExecError::Governed`] and a contained worker panic is
//! [`ExecError::Internal`] — never a process abort. [`execute_guarded`] is
//! the serial engine under the same guard, used by the fault-injection
//! differential suites.
//!
//! ## Observability
//!
//! [`EngineOptions`] carries a [`TraceSink`] (from `themis-obs`,
//! re-exported here). When enabled, both engines tally per-morsel counters
//! — `morsels`, `rows_scanned`, `rows_masked`, `rows_folded` /
//! `pairs_folded`, `guard_checks`, `groups_out` — into the innermost open
//! span. Counters are summed per morsel, never per worker, so a trace's
//! counter totals are identical at every thread count; tracing never
//! touches result values, so traced execution is bit-identical to
//! untraced. The default sink is disabled and costs one branch per morsel.
//!
//! ## Catalogs share relations
//!
//! [`Catalog`] stores tables behind [`std::sync::Arc`], so binding the same
//! relation under several names (a model's reweighted sample bound to every
//! FROM table of a self-join, say) is a pointer bump per binding — query
//! setup never deep-clones row data.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod exec;
pub mod exec_parallel;
pub mod guard;
pub mod value;

pub use catalog::Catalog;
pub use exec::{apply_order_by, execute, execute_guarded, run_sql, ExecError};
pub use exec_parallel::{execute_parallel, EngineOptions, DEFAULT_MORSEL_ROWS};
pub use guard::{CancelToken, FaultPlan, Limits, QueryGuard, Trip, GUARD_STRIDE};
pub use themis_obs::{saturating_micros, QueryTrace, TraceSink, TraceSpan};
pub use value::{cmp_group_prefix, QueryResult, Value};
