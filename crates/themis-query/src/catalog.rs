//! Named relation catalog.

use std::collections::HashMap;
use themis_data::Relation;

/// A catalog mapping table names to weighted relations.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Relation>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    pub fn register(&mut self, name: impl Into<String>, relation: Relation) {
        self.tables.insert(name.into(), relation);
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.tables.get(name)
    }

    /// Registered table names (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_data::paper_example::example_sample;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register("flights", example_sample());
        assert!(c.get("flights").is_some());
        assert!(c.get("missing").is_none());
        assert_eq!(c.table_names().count(), 1);
    }

    #[test]
    fn register_replaces() {
        let mut c = Catalog::new();
        c.register("t", example_sample());
        let mut r2 = example_sample();
        r2.fill_weights(9.0);
        c.register("t", r2);
        assert_eq!(c.get("t").unwrap().weights()[0], 9.0);
    }
}
