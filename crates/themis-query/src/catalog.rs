//! Named relation catalog.
//!
//! Tables are stored behind [`Arc`] so registering (or re-binding) a
//! relation is a pointer bump, never a deep clone: a session can bind the
//! same reweighted sample — or the same cached BN replicate — under any
//! number of table names per query for free.

use std::collections::HashMap;
use std::sync::Arc;
use themis_data::Relation;

/// A catalog mapping table names to shared, weighted relations.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Relation>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    ///
    /// Accepts either an owned [`Relation`] (moved into a fresh `Arc`) or an
    /// existing `Arc<Relation>` (reference-count bump only). Neither path
    /// copies row data.
    pub fn register(&mut self, name: impl Into<String>, relation: impl Into<Arc<Relation>>) {
        self.tables.insert(name.into(), relation.into());
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.tables.get(name).map(|r| r.as_ref())
    }

    /// Look up a table as its shared handle (for callers that want to keep
    /// the relation alive past the catalog, without cloning data).
    pub fn get_arc(&self, name: &str) -> Option<&Arc<Relation>> {
        self.tables.get(name)
    }

    /// Registered table names (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_data::paper_example::example_sample;

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register("flights", example_sample());
        assert!(c.get("flights").is_some());
        assert!(c.get("missing").is_none());
        assert_eq!(c.table_names().count(), 1);
    }

    #[test]
    fn register_replaces() {
        let mut c = Catalog::new();
        c.register("t", example_sample());
        let mut r2 = example_sample();
        r2.fill_weights(9.0);
        c.register("t", r2);
        assert_eq!(c.get("t").unwrap().weights()[0], 9.0);
    }

    #[test]
    fn register_is_a_pointer_bump_not_a_clone() {
        let shared = Arc::new(example_sample());
        let mut c = Catalog::new();
        c.register("a", Arc::clone(&shared));
        c.register("b", Arc::clone(&shared));
        // Two bindings + the local handle: three refs, one allocation.
        assert_eq!(Arc::strong_count(&shared), 3);
        assert!(std::ptr::eq(c.get("a").unwrap(), shared.as_ref()));
        assert!(std::ptr::eq(c.get("b").unwrap(), shared.as_ref()));
        assert!(Arc::ptr_eq(c.get_arc("a").unwrap(), &shared));
        // Dropping the catalog releases exactly the two bindings.
        drop(c);
        assert_eq!(Arc::strong_count(&shared), 1);
    }
}
