//! fixture-path: crates/themis-cli/src/main.rs
fn main() {
    let threads = std::env::var("THEMIS_THREADS").ok();
    println!("{threads:?}");
}
