//! fixture-path: shims/proptest/src/env_demo.rs
fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}
