//! fixture-path: crates/core/src/det_demo.rs
use std::collections::HashMap;
fn rows(m: HashMap<u32, f64>) -> Vec<(u32, f64)> {
    let mut rows: Vec<(u32, f64)> = m.into_iter().collect();
    rows.sort_by_key(|r| r.0);
    rows
}
