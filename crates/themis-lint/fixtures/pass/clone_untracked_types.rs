//! fixture-path: crates/themis-query/src/clone_demo.rs
fn share(schema: &Schema, rel: &Relation) -> Schema {
    let arc = Arc::new(rel);
    let handle = arc.clone();
    drop(handle);
    schema.clone()
}
