//! fixture-path: crates/themis-query/src/guard_demo.rs
fn fold_rows(rows: &[f64], guard: &QueryGuard) -> Result<f64, ExecError> {
    let mut total = 0.0;
    for (i, w) in rows.iter().enumerate() {
        // Cooperative governance: observe the guard at stride boundaries
        // and surface trips as typed errors — no threads, no panics.
        if i % 1024 == 0 {
            guard.check()?;
        }
        total += w;
    }
    guard.charge_rows(rows.len() as u64)?;
    Ok(total)
}
