//! fixture-path: shims/fake/src/lib.rs
pub fn helper() -> u32 {
    9
}
// ==== file: tests/uses_fake.rs ====
#[test]
fn t() {
    assert_eq!(fake::helper(), 9);
}
