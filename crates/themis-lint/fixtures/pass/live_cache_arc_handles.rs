//! fixture-path: crates/themis-live/src/grow_demo.rs
use std::sync::Arc;

fn pin_sample(sample: &Arc<Relation>) -> Arc<Relation> {
    Arc::clone(sample)
}

fn from_old_sample(sample: &Relation) -> Relation {
    sample.clone()
}
