//! fixture-path: crates/themis-query/src/clone_demo.rs
fn from_relation(rel: &Relation) -> Wrapped {
    Wrapped { rel: rel.clone() }
}

fn with_base(base: &Catalog) -> Wrapped {
    Wrapped::of(base.clone())
}
