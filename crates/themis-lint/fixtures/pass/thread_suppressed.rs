//! fixture-path: crates/themis-query/src/thread_demo.rs
fn fire() {
    // themis-lint: allow(no-raw-threads) reason=one-shot watchdog outside the query path, results never merge
    std::thread::spawn(|| {});
}
