//! fixture-path: crates/themis-cli/src/main.rs
fn main() {
    let n: usize = std::env::args().nth(1).unwrap().parse().unwrap();
    println!("{n}");
}
// ==== file: tests/demo.rs ====
#[test]
fn unwrap_is_fine_in_tests() {
    let v = vec![1];
    assert_eq!(*v.first().unwrap(), 1);
}
