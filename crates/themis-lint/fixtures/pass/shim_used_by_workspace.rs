//! fixture-path: shims/fake/src/lib.rs
pub struct Handle {
    pub id: u32,
}
pub fn open(id: u32) -> Handle {
    Handle { id }
}
// ==== file: crates/themis-query/src/drift_demo.rs ====
fn f() -> u32 {
    fake::open(3).id
}
