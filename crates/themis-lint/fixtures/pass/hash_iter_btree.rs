//! fixture-path: crates/core/src/det_demo.rs
use std::collections::{BTreeMap, HashMap};
fn ordered(m: HashMap<u32, f64>) -> Vec<(u32, f64)> {
    let sorted: BTreeMap<u32, f64> = m.into_iter().collect();
    sorted.into_iter().collect()
}
