//! fixture-path: crates/themis-obs/src/bucket_demo.rs
// Total bucket lookup: saturate to the overflow bucket instead of
// indexing (the no-panic discipline for the histogram hot path).
fn bucket_count(buckets: &[u64], index: usize) -> u64 {
    buckets
        .get(index.min(buckets.len().saturating_sub(1)))
        .copied()
        .unwrap_or(0)
}
