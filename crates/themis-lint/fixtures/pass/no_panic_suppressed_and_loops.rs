//! fixture-path: crates/themis-solver/src/demo.rs
fn head(v: &Vec<f64>) -> f64 {
    // themis-lint: allow(no-panic-in-libs) reason=callers guarantee at least one row
    v[0]
}

fn sum(v: &Vec<f64>) -> f64 {
    let mut s = 0.0;
    for i in 0..v.len() {
        s += v[i];
    }
    s
}
