//! fixture-path: crates/themis-obs/src/export_demo.rs
// The registry export pattern: HashMap state is fine as long as every
// iteration that reaches output is sorted first (deterministic-iteration).
use std::collections::HashMap;
fn export(metrics: HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = metrics.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}
