//! fixture-path: shims/rayon/src/pool_demo.rs
fn run(f: impl FnOnce() + Send) {
    std::thread::scope(|s| {
        s.spawn(f);
    });
}
