//! fixture-path: crates/themis-live/src/fingerprint_demo.rs
use std::collections::HashMap;
fn touched_tables(touched: HashMap<String, u64>) -> Vec<String> {
    let mut tables: Vec<String> = touched.into_iter().map(|(table, _)| table).collect();
    tables.sort();
    tables
}
