//! fixture-path: shims/fake/src/lib.rs
//! expect: shim-api-drift @ shims/fake/src/lib.rs:3
pub fn only_tested() -> u32 {
    7
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert_eq!(super::only_tested(), 7);
    }
}
