//! fixture-path: crates/themis-live/src/fingerprint_demo.rs
//! expect: deterministic-iteration @ crates/themis-live/src/fingerprint_demo.rs:5
use std::collections::HashMap;
fn touched_tables(touched: HashMap<String, u64>) -> Vec<String> {
    touched.into_iter().map(|(table, _)| table).collect()
}
