//! fixture-path: crates/themis-query/src/watchdog_demo.rs
//! expect: no-raw-threads @ crates/themis-query/src/watchdog_demo.rs:6
fn enforce_deadline(flag: Arc<AtomicBool>, deadline: Duration) {
    // A detached watchdog is the wrong cancellation model: governance is
    // cooperative, checked at morsel boundaries, never a raw thread.
    std::thread::spawn(move || {
        std::thread::sleep(deadline);
        flag.store(true, Ordering::Relaxed);
    });
}
