//! fixture-path: crates/themis-live/src/grow_demo.rs
//! expect: no-deep-clone @ crates/themis-live/src/grow_demo.rs:4
fn append_batch(sample: &Relation) -> Relation {
    let grown = sample.clone();
    grown
}
