//! fixture-path: crates/themis-obs/src/hist_demo.rs
//! expect: no-panic-in-libs @ crates/themis-obs/src/hist_demo.rs:6
// A metrics layer that can panic takes the query down with it; bucket
// lookups must stay total.
fn bucket_count(buckets: &[u64], index: usize) -> u64 {
    *buckets.get(index).unwrap()
}
