//! fixture-path: crates/themis-obs/src/env_demo.rs
//! expect: no-env-reads @ crates/themis-obs/src/env_demo.rs:6
// The observability layer must stay configuration-free: tracing is enabled
// by an explicit TraceSink handle, never by ambient environment state.
fn tracing_enabled() -> bool {
    std::env::var("THEMIS_TRACE").is_ok()
}
