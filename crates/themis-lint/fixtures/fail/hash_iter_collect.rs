//! fixture-path: crates/core/src/det_demo.rs
//! expect: deterministic-iteration @ crates/core/src/det_demo.rs:5
use std::collections::HashMap;
fn rows(m: HashMap<u32, f64>) -> Vec<(u32, f64)> {
    m.into_iter().collect()
}
