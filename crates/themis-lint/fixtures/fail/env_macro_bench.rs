//! fixture-path: crates/themis-bench/src/env_demo.rs
//! expect: no-env-reads @ crates/themis-bench/src/env_demo.rs:4
fn manifest_dir() -> &'static str {
    env!("CARGO_MANIFEST_DIR")
}
