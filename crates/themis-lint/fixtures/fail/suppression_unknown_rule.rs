//! fixture-path: crates/themis-bn/src/supp_demo.rs
//! expect: bad-suppression @ crates/themis-bn/src/supp_demo.rs:5
//! expect: no-panic-in-libs @ crates/themis-bn/src/supp_demo.rs:6
fn f(x: Option<u32>) -> u32 {
    // themis-lint: allow(no-panics) reason=typo in the rule name
    x.unwrap()
}
