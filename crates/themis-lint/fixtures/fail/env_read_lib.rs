//! fixture-path: crates/themis-query/src/env_demo.rs
//! expect: no-env-reads @ crates/themis-query/src/env_demo.rs:4
fn threads() -> usize {
    std::env::var("THEMIS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}
