//! fixture-path: shims/fake/src/lib.rs
//! expect: shim-api-drift @ shims/fake/src/lib.rs:6
pub fn used() -> u32 {
    1
}
pub fn dead_helper() -> u32 {
    2
}
// ==== file: crates/themis-query/src/drift_demo.rs ====
fn f() -> u32 {
    fake::used()
}
