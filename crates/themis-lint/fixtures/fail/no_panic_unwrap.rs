//! fixture-path: crates/themis-bn/src/demo.rs
//! expect: no-panic-in-libs @ crates/themis-bn/src/demo.rs:6
//! expect: no-panic-in-libs @ crates/themis-bn/src/demo.rs:7
//! expect: no-panic-in-libs @ crates/themis-bn/src/demo.rs:9
fn lookup(x: Option<u32>, y: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("present");
    if a + b == 0 {
        panic!("zero");
    }
    a + b
}
