//! fixture-path: crates/core/src/det_demo.rs
//! expect: deterministic-iteration @ crates/core/src/det_demo.rs:6
use std::collections::HashMap;
fn keys(m: &HashMap<u32, f64>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _) in m {
        out.push(*k);
    }
    out
}
