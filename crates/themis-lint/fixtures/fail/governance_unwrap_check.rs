//! fixture-path: crates/themis-query/src/guard_unwrap_demo.rs
//! expect: no-panic-in-libs @ crates/themis-query/src/guard_unwrap_demo.rs:5
fn scan(rows: &[f64], guard: &QueryGuard) -> f64 {
    // A tripped limit is a typed error; unwrapping it aborts the process.
    guard.check().unwrap();
    rows.iter().sum()
}
