//! fixture-path: crates/themis-query/src/clone_demo.rs
//! expect: no-deep-clone @ crates/themis-query/src/clone_demo.rs:4
fn snapshot(rel: &Relation) -> Relation {
    rel.clone()
}
