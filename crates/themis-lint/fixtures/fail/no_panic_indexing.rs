//! fixture-path: crates/themis-query/src/demo.rs
//! expect: no-panic-in-libs @ crates/themis-query/src/demo.rs:4
fn first(rows: &Vec<f64>) -> f64 {
    rows[0]
}
