//! fixture-path: crates/core/src/clone_demo.rs
//! expect: no-deep-clone @ crates/core/src/clone_demo.rs:4
fn rebind(catalog: &Catalog) -> Catalog {
    let copy = catalog.clone();
    copy
}
