//! fixture-path: crates/themis-query/src/thread_demo.rs
//! expect: no-raw-threads @ crates/themis-query/src/thread_demo.rs:4
fn fire() {
    std::thread::spawn(|| {});
}
