//! fixture-path: tests/thread_demo.rs
//! expect: no-raw-threads @ tests/thread_demo.rs:5
#[test]
fn scoped() {
    std::thread::scope(|s| {
        let _ = s;
    });
}
