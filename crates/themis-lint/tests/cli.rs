//! End-to-end tests of the `themis-lint` binary: exit codes, rustc-style
//! diagnostics, `--json` output, and the workspace-clean gate that CI relies
//! on. Integration tests run with the package directory as cwd, so fixtures
//! live at `fixtures/` and the repo root at `../..`.

use std::path::Path;
use std::process::Command;

fn lint_bin() -> Command {
    // themis-lint: allow(no-env-reads) reason=CARGO_BIN_EXE is the sanctioned cargo mechanism for locating the binary under test
    Command::new(env!("CARGO_BIN_EXE_themis-lint"))
}

#[test]
fn fail_fixtures_exit_nonzero_with_rustc_style_diagnostics() {
    for entry in std::fs::read_dir("fixtures/fail").expect("fixtures/fail") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "rs") {
            continue;
        }
        let out = lint_bin()
            .arg("check")
            .arg(&path)
            .output()
            .expect("run themis-lint");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{} should exit 1, stdout:\n{}",
            path.display(),
            String::from_utf8_lossy(&out.stdout)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        // rustc-style shape: `error[themis::<rule>]: ...` then `  --> path:line:col`.
        assert!(
            stdout.contains("error[themis::"),
            "{}: missing error header in:\n{stdout}",
            path.display()
        );
        assert!(
            stdout.lines().any(|l| {
                l.trim_start().starts_with("--> ")
                    && l.rsplit(':').take(2).all(|n| n.parse::<u32>().is_ok())
            }),
            "{}: missing `--> path:line:col` span in:\n{stdout}",
            path.display()
        );
    }
}

#[test]
fn pass_fixtures_exit_zero_and_report_clean() {
    for entry in std::fs::read_dir("fixtures/pass").expect("fixtures/pass") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "rs") {
            continue;
        }
        let out = lint_bin()
            .arg("check")
            .arg(&path)
            .output()
            .expect("run themis-lint");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{} should exit 0, stdout:\n{stdout}",
            path.display()
        );
        assert!(stdout.contains("clean"), "{}: {stdout}", path.display());
    }
}

#[test]
fn json_flag_emits_parseable_findings() {
    let out = lint_bin()
        .args(["check", "--json", "fixtures/fail/no_panic_unwrap.rs"])
        .output()
        .expect("run themis-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = themis_lint::json::Json::parse(&stdout).expect("stdout is valid JSON");
    let findings = themis_lint::diag::findings_from_json(&doc).expect("findings decode");
    assert_eq!(findings.len(), 3, "no_panic_unwrap declares 3 findings");
    assert!(findings.iter().all(|f| f.rule == "no-panic-in-libs"));
}

#[test]
fn bad_flag_exits_with_usage_error() {
    let out = lint_bin()
        .args(["check", "--frobnicate"])
        .output()
        .expect("run themis-lint");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn workspace_lints_clean() {
    // The sixth CI gate in library form: the repo itself must stay clean.
    // Running it here means plain `cargo test` enforces it too.
    let report = themis_lint::lint_workspace(Path::new("../..")).expect("walk workspace");
    assert!(report.files_checked > 100, "walked {} files", report.files_checked);
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{:#?}",
        report.findings
    );
}
