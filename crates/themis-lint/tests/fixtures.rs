//! Table test over the fixture corpus.
//!
//! Every file in `fixtures/fail/` declares its expected findings in
//! `//! expect: rule @ path:line` headers; linting it must produce exactly
//! that set. Every file in `fixtures/pass/` must lint clean. Integration
//! tests run with the package directory as the working directory, so the
//! corpus is reachable at a relative path.

use std::fs;
use std::path::PathBuf;
use themis_lint::source::{load_fixture, Expectation};

fn fixture_files(kind: &str) -> Vec<PathBuf> {
    let dir = PathBuf::from("fixtures").join(kind);
    let mut out: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    out.sort();
    assert!(!out.is_empty(), "empty fixture dir {}", dir.display());
    out
}

#[test]
fn pass_fixtures_lint_clean() {
    for path in fixture_files("pass") {
        let fx = load_fixture(&path).expect("load fixture");
        assert!(
            fx.expects.is_empty(),
            "{}: pass fixtures must not declare expectations",
            path.display()
        );
        let report = themis_lint::lint_sources(&fx.files);
        assert!(
            report.is_clean(),
            "{} should be clean but produced: {:#?}",
            path.display(),
            report.findings
        );
    }
}

#[test]
fn fail_fixtures_produce_exactly_their_expected_findings() {
    for path in fixture_files("fail") {
        let fx = load_fixture(&path).expect("load fixture");
        assert!(
            !fx.expects.is_empty(),
            "{}: fail fixtures must declare `//! expect:` headers",
            path.display()
        );
        let report = themis_lint::lint_sources(&fx.files);
        let mut got: Vec<Expectation> = report
            .findings
            .iter()
            .map(|f| Expectation {
                rule: f.rule.to_string(),
                path: f.path.clone(),
                line: f.line,
            })
            .collect();
        let mut want = fx.expects.clone();
        got.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
        want.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
        assert_eq!(
            got,
            want,
            "{}: findings do not match expectations\nfull findings: {:#?}",
            path.display(),
            report.findings
        );
    }
}

#[test]
fn every_rule_has_pass_and_fail_coverage() {
    // The corpus must keep covering each rule from both sides as rules
    // evolve: at least 2 pass and 2 fail fixtures whose primary file (or
    // expectations) exercise the rule.
    let mut fail_hits: std::collections::BTreeMap<String, usize> = Default::default();
    for path in fixture_files("fail") {
        let fx = load_fixture(&path).expect("load fixture");
        let mut rules: Vec<String> = fx.expects.iter().map(|e| e.rule.clone()).collect();
        rules.sort();
        rules.dedup();
        for r in rules {
            *fail_hits.entry(r).or_default() += 1;
        }
    }
    for rule in [
        "no-panic-in-libs",
        "no-env-reads",
        "deterministic-iteration",
        "no-deep-clone",
        "no-raw-threads",
        "shim-api-drift",
        "bad-suppression",
    ] {
        assert!(
            fail_hits.get(rule).copied().unwrap_or(0) >= 2,
            "rule {rule} needs at least 2 fail fixtures, found {fail_hits:?}"
        );
    }
    assert!(
        fixture_files("pass").len() >= 12,
        "need at least 2 pass fixtures per rule (12 total)"
    );
}

#[test]
fn suppression_requires_a_reason() {
    // A reasoned allow suppresses; the same directive without `reason=`
    // both fails to suppress and is reported itself.
    let with_reason = themis_lint::SourceFile::new(
        "crates/themis-bn/src/a.rs",
        "fn f(x: Option<u32>) {\n    // themis-lint: allow(no-panic-in-libs) reason=demo invariant\n    x.unwrap();\n}\n",
    );
    let report = themis_lint::lint_sources(&[with_reason]);
    assert!(report.is_clean(), "reasoned allow must suppress: {:?}", report.findings);
    assert_eq!(report.suppressed, 1);

    let without_reason = themis_lint::SourceFile::new(
        "crates/themis-bn/src/a.rs",
        "fn f(x: Option<u32>) {\n    // themis-lint: allow(no-panic-in-libs)\n    x.unwrap();\n}\n",
    );
    let report = themis_lint::lint_sources(&[without_reason]);
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"bad-suppression"), "got {rules:?}");
    assert!(rules.contains(&"no-panic-in-libs"), "got {rules:?}");
}

#[test]
fn json_output_round_trips() {
    // Lint a fail fixture, render the report to JSON text, parse it back,
    // and require the identical finding list.
    let path = PathBuf::from("fixtures/fail/no_panic_unwrap.rs");
    let fx = load_fixture(&path).expect("load fixture");
    let report = themis_lint::lint_sources(&fx.files);
    assert!(!report.findings.is_empty());

    let text = themis_lint::diag::to_json(&report).render();
    let doc = themis_lint::json::Json::parse(&text).expect("valid JSON");
    let back = themis_lint::diag::findings_from_json(&doc).expect("round-trip");
    assert_eq!(back, report.findings);
}
