//! A minimal Rust lexer for lint matching.
//!
//! This is not a conforming Rust lexer: it exists to turn source text into a
//! token stream that rule matchers can scan without being fooled by comments
//! or string/char literal *contents*. Strings collapse to a single [`Tok::Str`]
//! token, comments are stripped from the token stream but captured separately
//! (the suppression directives of [`crate::suppress`] live in comments), and
//! `::` is fused into one [`Tok::PathSep`] token so path matching stays a
//! simple token-sequence comparison.
//!
//! The lexer also computes the line ranges covered by `#[cfg(test)]` items so
//! rules like `no-panic-in-libs` can exempt in-file test modules.

/// One lexed token. Literal contents are dropped: rules only ever match on
/// identifier spelling and punctuation shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, ...).
    Ident(String),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Any numeric literal.
    Num,
    /// Any string, raw string, byte string, or char literal.
    Str,
    /// The `::` path separator, fused into one token.
    PathSep,
    /// Any other single punctuation character.
    Punct(char),
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
}

/// A comment captured out-of-band for the suppression parser.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// Line the comment starts on.
    pub line: u32,
    /// Whether any token precedes the comment on its start line (a trailing
    /// comment applies to its own line; a standalone one to the next).
    pub trailing: bool,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_line_ranges: Vec<(u32, u32)>,
}

impl Lexed {
    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_line_ranges
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

struct Cursor<'s> {
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn new(text: &'s str) -> Self {
        Cursor {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xc0 != 0x80 {
            // Count code points, not bytes, so columns stay meaningful in
            // files with non-ASCII comments.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `text` into tokens, comments, and `#[cfg(test)]` line ranges.
pub fn lex(text: &str) -> Lexed {
    let mut cur = Cursor::new(text);
    let mut out = Lexed::default();
    let mut last_token_line = 0u32;

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    text.push(char::from(c));
                    cur.bump();
                }
                out.comments.push(Comment {
                    text: text.trim_start_matches(['/', '!']).trim().to_string(),
                    line,
                    trailing: last_token_line == line,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let mut text = String::new();
                let mut depth = 0usize;
                while let Some(c) = cur.peek() {
                    if c == b'/' && cur.peek_at(1) == Some(b'*') {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                        continue;
                    }
                    if c == b'*' && cur.peek_at(1) == Some(b'/') {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                        continue;
                    }
                    text.push(char::from(c));
                    cur.bump();
                }
                out.comments.push(Comment {
                    text: text.trim_matches(['*', '!', ' ', '\n']).trim().to_string(),
                    line,
                    trailing: last_token_line == line,
                });
            }
            b'"' => {
                lex_string(&mut cur);
                push(&mut out, &mut last_token_line, Tok::Str, line, col);
            }
            b'\'' => {
                lex_quote(&mut cur, &mut out, line, col, &mut last_token_line);
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cur);
                push(&mut out, &mut last_token_line, Tok::Num, line, col);
            }
            _ if is_ident_start(b) => {
                let ident = lex_ident(&mut cur);
                // `r"..."` / `b"..."` / `br#"..."#` string prefixes, and
                // `r#raw_ident` raw identifiers.
                if matches!(ident.as_str(), "r" | "b" | "br" | "rb") {
                    match cur.peek() {
                        Some(b'"') => {
                            lex_raw_or_plain_string(&mut cur, &ident);
                            push(&mut out, &mut last_token_line, Tok::Str, line, col);
                            continue;
                        }
                        Some(b'#') if ident != "b" => {
                            let mut hashes = 0usize;
                            while cur.peek_at(hashes) == Some(b'#') {
                                hashes += 1;
                            }
                            if cur.peek_at(hashes) == Some(b'"') {
                                lex_raw_string(&mut cur);
                                push(&mut out, &mut last_token_line, Tok::Str, line, col);
                                continue;
                            }
                            if ident == "r" && hashes == 1 {
                                cur.bump(); // raw identifier `r#name`
                                let raw = lex_ident(&mut cur);
                                push(&mut out, &mut last_token_line, Tok::Ident(raw), line, col);
                                continue;
                            }
                        }
                        Some(b'\'') if ident == "b" => {
                            cur.bump();
                            lex_char_body(&mut cur);
                            push(&mut out, &mut last_token_line, Tok::Str, line, col);
                            continue;
                        }
                        _ => {}
                    }
                }
                push(&mut out, &mut last_token_line, Tok::Ident(ident), line, col);
            }
            b':' if cur.peek_at(1) == Some(b':') => {
                cur.bump();
                cur.bump();
                push(&mut out, &mut last_token_line, Tok::PathSep, line, col);
            }
            _ => {
                cur.bump();
                push(
                    &mut out,
                    &mut last_token_line,
                    Tok::Punct(char::from(b)),
                    line,
                    col,
                );
            }
        }
    }

    out.test_line_ranges = cfg_test_ranges(&out.tokens);
    out
}

fn push(out: &mut Lexed, last_token_line: &mut u32, tok: Tok, line: u32, col: u32) {
    *last_token_line = line;
    out.tokens.push(Token { tok, line, col });
}

fn lex_ident(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek() {
        if !is_ident_continue(c) {
            break;
        }
        s.push(char::from(c));
        cur.bump();
    }
    s
}

fn lex_number(cur: &mut Cursor) {
    // Digits, underscores, type suffixes, hex, and simple float forms.
    // A `.` is part of the number only when followed by a digit, so ranges
    // (`0..n`) and method calls on literals keep their own tokens.
    let mut prev = 0u8;
    while let Some(c) = cur.peek() {
        let take = c.is_ascii_alphanumeric()
            || c == b'_'
            || (c == b'.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()))
            || ((c == b'+' || c == b'-')
                && (prev == b'e' || prev == b'E')
                && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()));
        if !take {
            break;
        }
        prev = c;
        cur.bump();
    }
}

fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

fn lex_raw_or_plain_string(cur: &mut Cursor, prefix: &str) {
    if prefix.contains('r') {
        lex_raw_string(cur);
    } else {
        lex_string(cur);
    }
}

fn lex_raw_string(cur: &mut Cursor) {
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None => break,
            Some(b'"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some(b'#') {
                    seen += 1;
                    cur.bump();
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => {}
        }
    }
}

fn lex_char_body(cur: &mut Cursor) {
    // Called after the opening `'` of a char literal.
    if cur.peek() == Some(b'\\') {
        cur.bump();
        cur.bump();
    } else {
        cur.bump();
    }
    while let Some(c) = cur.peek() {
        cur.bump();
        if c == b'\'' {
            break;
        }
    }
}

fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32, last_token_line: &mut u32) {
    // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`): after the quote, an
    // identifier char NOT later closed by `'` is a lifetime.
    cur.bump(); // the quote
    match cur.peek() {
        Some(c) if is_ident_start(c) => {
            // Scan the identifier run; a closing quote right after makes it
            // a char literal like 'a'.
            let mut len = 0usize;
            while cur.peek_at(len).is_some_and(is_ident_continue) {
                len += 1;
            }
            if cur.peek_at(len) == Some(b'\'') {
                for _ in 0..=len {
                    cur.bump();
                }
                push(out, last_token_line, Tok::Str, line, col);
            } else {
                for _ in 0..len {
                    cur.bump();
                }
                push(out, last_token_line, Tok::Lifetime, line, col);
            }
        }
        Some(_) => {
            lex_char_body(cur);
            push(out, last_token_line, Tok::Str, line, col);
        }
        None => {}
    }
}

/// Compute the inclusive line ranges of items annotated `#[cfg(test)]` (or
/// any `cfg(...)` whose argument mentions `test`, covering `all(test, ...)`).
fn cfg_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test(tokens, i) {
            if let Some((open, close)) = item_braces(tokens, after_attr) {
                let lo = tokens.get(i).map_or(0, |t| t.line);
                let hi = tokens.get(close).map_or(lo, |t| t.line);
                let _ = open;
                ranges.push((lo, hi));
                i = close + 1;
                continue;
            }
            i = after_attr;
            continue;
        }
        i += 1;
    }
    ranges
}

/// If tokens at `i` start `#[cfg(...test...)]`, return the index just past
/// the closing `]`.
fn match_cfg_test(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    expect_punct(tokens, &mut j, '#')?;
    expect_punct(tokens, &mut j, '[')?;
    expect_ident(tokens, &mut j, "cfg")?;
    expect_punct(tokens, &mut j, '(')?;
    let mut depth = 1usize;
    let mut saw_test = false;
    while depth > 0 {
        let t = tokens.get(j)?;
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth -= 1,
            Tok::Ident(s) if s == "test" => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    expect_punct(tokens, &mut j, ']')?;
    saw_test.then_some(j)
}

/// From just past an attribute, skip further attributes and find the brace
/// block of the annotated item: `(open_index, close_index)`. Returns `None`
/// for braceless items (`mod tests;`).
fn item_braces(tokens: &[Token], mut i: usize) -> Option<(usize, usize)> {
    // Skip any further `#[...]` attributes.
    while matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct('#')))
        && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
    {
        let mut depth = 0usize;
        let mut j = i + 1;
        loop {
            let t = tokens.get(j)?;
            match t.tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
    // Scan to the item's opening brace; a `;` first means no body.
    let mut j = i;
    loop {
        let t = tokens.get(j)?;
        match t.tok {
            Tok::Punct('{') => break,
            Tok::Punct(';') => return None,
            _ => j += 1,
        }
    }
    let open = j;
    let mut depth = 0usize;
    loop {
        let t = tokens.get(j)?;
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, j));
                }
            }
            _ => {}
        }
        j += 1;
    }
}

fn expect_punct(tokens: &[Token], i: &mut usize, c: char) -> Option<()> {
    match tokens.get(*i).map(|t| &t.tok) {
        Some(Tok::Punct(p)) if *p == c => {
            *i += 1;
            Some(())
        }
        _ => None,
    }
}

fn expect_ident(tokens: &[Token], i: &mut usize, name: &str) -> Option<()> {
    match tokens.get(*i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) if s == name => {
            *i += 1;
            Some(())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // a comment mentioning unwrap()
            /* block with panic!() inside */
            let s = "call .unwrap() here";
            let r = r#"raw with .expect("x")"#;
            let c = '\n';
            real_ident();
        "##;
        let names = idents(src);
        assert!(names.contains(&"real_ident".to_string()));
        assert!(!names.contains(&"unwrap".to_string()));
        assert!(!names.contains(&"panic".to_string()));
        assert!(!names.contains(&"expect".to_string()));
    }

    #[test]
    fn comments_are_captured_with_trailing_flag() {
        let src = "let x = 1; // trailing note\n// standalone note\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].text, "trailing note");
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn pathsep_is_fused() {
        let lexed = lex("std::env::var(\"X\")");
        let seps = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::PathSep)
            .count();
        assert_eq!(seps, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Str).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1); // just 'x'; `str` and `char` lex as idents
    }

    #[test]
    fn cfg_test_ranges_cover_test_mod() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn after() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.test_line_ranges, vec![(2, 5)]);
        assert!(!lexed.in_test_code(1));
        assert!(lexed.in_test_code(4));
        assert!(!lexed.in_test_code(6));
    }

    #[test]
    fn cfg_test_handles_extra_attributes_and_all() {
        let src = "#[cfg(all(test, feature = \"x\"))]\n#[allow(dead_code)]\nmod m { }\n";
        let lexed = lex(src);
        assert_eq!(lexed.test_line_ranges, vec![(1, 3)]);
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn numeric_literals_do_not_swallow_ranges() {
        let lexed = lex("for i in 0..10 { v(1.5e-3); }");
        let dots = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Punct('.'))
            .count();
        assert_eq!(dots, 2); // the `..` of the range, not the float's dot
    }
}
