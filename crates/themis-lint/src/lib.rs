//! `themis-lint` — project-specific static analysis for the Themis
//! workspace.
//!
//! The repo's correctness story rests on invariants that types alone cannot
//! express: the serial engine is a bit-identical differential oracle, so
//! nothing may leak `HashMap` iteration order into results; library crates
//! must not panic or read the environment; catalogs stay zero-deep-clone;
//! and all threading goes through the rayon shim. With crates.io
//! unreachable, clippy's stock lints are the ceiling — this crate is the
//! project's own lint pass, built on a hand-rolled lexer
//! ([`lexer`]) and per-rule token matchers ([`rules`]), with reasoned
//! suppressions ([`suppress`]) and rustc-style or JSON diagnostics
//! ([`diag`]).
//!
//! Run it as the sixth CI gate:
//!
//! ```text
//! cargo run -p themis-lint -- check [--json]
//! ```
//!
//! # Rules
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-panic-in-libs` | library crates return errors, never panic |
//! | `no-env-reads` | config flows through `EngineOptions`, not the env |
//! | `deterministic-iteration` | hash order never reaches results |
//! | `no-deep-clone` | `Relation`/`Catalog` stay behind `Arc`s |
//! | `no-raw-threads` | all parallelism goes through `shims/rayon` |
//! | `shim-api-drift` | shims stay honest subsets of the crates they mimic |
//!
//! Suppress a finding at its site with a mandatory written reason:
//!
//! ```text
//! // themis-lint: allow(no-panic-in-libs) reason=weights are compile-time constants
//! ```

#![forbid(unsafe_code)]

pub mod diag;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod suppress;

pub use rules::Finding;
pub use source::{FileClass, SourceFile};

use std::io;
use std::path::Path;

/// Result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    pub files_checked: usize,
    /// Findings silenced by a well-formed `allow(...) reason=...` directive.
    pub suppressed: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lint a set of in-memory sources: all per-file rules, the workspace-level
/// `shim-api-drift` rule, and suppression processing.
pub fn lint_sources(files: &[SourceFile]) -> Report {
    let lexed: Vec<lexer::Lexed> = files.iter().map(|f| lexer::lex(&f.text)).collect();

    let mut raw: Vec<Finding> = Vec::new();
    for (file, lx) in files.iter().zip(&lexed) {
        raw.extend(rules::run_file_rules(file, lx));
    }
    raw.extend(rules::shim_api_drift::check(files, &lexed));

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for (file, lx) in files.iter().zip(&lexed) {
        let sup = suppress::parse(&lx.comments, &lx.tokens);
        for bad in &sup.bad {
            findings.push(Finding {
                path: file.path.clone(),
                line: bad.line,
                col: 1,
                rule: "bad-suppression",
                message: bad.message.clone(),
            });
        }
        for f in raw.iter().filter(|f| f.path == file.path) {
            if sup.covers(f.rule, f.line) {
                suppressed += 1;
            } else {
                findings.push(f.clone());
            }
        }
    }
    // Findings for paths not in `files` cannot happen (rules only emit for
    // their input files), so the per-file pass above partitions `raw`.
    findings.sort();
    findings.dedup();
    Report {
        findings,
        files_checked: files.len(),
        suppressed,
    }
}

/// Lint the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = source::load_workspace(root)?;
    Ok(lint_sources(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_with_reason_silences_a_finding() {
        let files = vec![SourceFile::new(
            "crates/themis-bn/src/a.rs",
            "fn f() {\n    // themis-lint: allow(no-panic-in-libs) reason=invariant documented\n    x.unwrap();\n}\n",
        )];
        let report = lint_sources(&files);
        assert!(report.is_clean(), "findings: {:?}", report.findings);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn suppression_without_reason_is_itself_a_finding() {
        let files = vec![SourceFile::new(
            "crates/themis-bn/src/a.rs",
            "fn f() {\n    // themis-lint: allow(no-panic-in-libs)\n    x.unwrap();\n}\n",
        )];
        let report = lint_sources(&files);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"bad-suppression"));
        assert!(rules.contains(&"no-panic-in-libs"), "allow without reason must not suppress");
    }

    #[test]
    fn findings_are_sorted_and_deduped() {
        let files = vec![SourceFile::new(
            "crates/themis-bn/src/a.rs",
            "fn f() {\n    b.unwrap();\n    a.unwrap();\n}\n",
        )];
        let report = lint_sources(&files);
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings[0].line < report.findings[1].line);
    }
}
