//! Diagnostic rendering: rustc-style text and `--json`.

use crate::json::Json;
use crate::rules::Finding;
use crate::Report;

/// Render one finding rustc-style:
///
/// ```text
/// error[themis::no-panic-in-libs]: `.unwrap()` in library crate `themis-bn` can panic
///   --> crates/themis-bn/src/sampling.rs:17:44
/// ```
pub fn render_finding(f: &Finding) -> String {
    format!(
        "error[themis::{rule}]: {msg}\n  --> {path}:{line}:{col}\n",
        rule = f.rule,
        msg = f.message,
        path = f.path,
        line = f.line,
        col = f.col,
    )
}

/// Render the whole report as text, findings first, summary last.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&render_finding(f));
        out.push('\n');
    }
    if report.findings.is_empty() {
        out.push_str(&format!(
            "themis-lint: clean — {} file(s) checked, {} finding(s) suppressed with reasons\n",
            report.files_checked, report.suppressed
        ));
    } else {
        out.push_str(&format!(
            "themis-lint: {} error(s) across {} file(s) checked ({} suppressed)\n",
            report.findings.len(),
            report.files_checked,
            report.suppressed
        ));
    }
    out
}

/// Build the `--json` document for a report.
pub fn to_json(report: &Report) -> Json {
    Json::Obj(vec![
        (
            "findings".to_string(),
            Json::Arr(report.findings.iter().map(finding_to_json).collect()),
        ),
        (
            "files_checked".to_string(),
            Json::Num(report.files_checked as f64),
        ),
        ("suppressed".to_string(), Json::Num(report.suppressed as f64)),
    ])
}

fn finding_to_json(f: &Finding) -> Json {
    Json::Obj(vec![
        ("rule".to_string(), Json::Str(f.rule.to_string())),
        ("path".to_string(), Json::Str(f.path.clone())),
        ("line".to_string(), Json::Num(f.line as f64)),
        ("col".to_string(), Json::Num(f.col as f64)),
        ("message".to_string(), Json::Str(f.message.clone())),
    ])
}

/// Rebuild findings from a `--json` document (the round-trip direction used
/// by tests and tooling that consumes lint output).
pub fn findings_from_json(doc: &Json) -> Result<Vec<Finding>, String> {
    let arr = doc
        .get("findings")
        .and_then(Json::as_arr)
        .ok_or("missing `findings` array")?;
    let mut out = Vec::new();
    for item in arr {
        let rule_name = item
            .get("rule")
            .and_then(Json::as_str)
            .ok_or("finding missing `rule`")?;
        let rule = crate::rules::RULE_NAMES
            .iter()
            .find(|r| **r == rule_name)
            .copied()
            .ok_or_else(|| format!("unknown rule `{rule_name}` in JSON"))?;
        out.push(Finding {
            rule,
            path: item
                .get("path")
                .and_then(Json::as_str)
                .ok_or("finding missing `path`")?
                .to_string(),
            line: item.get("line").and_then(Json::as_num).unwrap_or(0.0) as u32,
            col: item.get("col").and_then(Json::as_num).unwrap_or(0.0) as u32,
            message: item
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        });
    }
    Ok(out)
}
