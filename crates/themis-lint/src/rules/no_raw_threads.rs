//! `no-raw-threads`: all parallelism goes through the `shims/rayon` pool.
//!
//! One scheduling point is what keeps the morsel engine's results
//! bit-identical across thread counts (ordered merges live in the pool, not
//! at call sites). Flags `thread::spawn`, `thread::scope`, and
//! `thread::Builder` everywhere except inside `shims/rayon` itself — tests
//! included, so concurrency tests either drive the pool or carry a reasoned
//! suppression.

use crate::lexer::{Lexed, Tok};
use crate::rules::{pathsep_at, Finding};
use crate::source::{FileClass, SourceFile};

pub const RULE: &str = "no-raw-threads";

const THREAD_ENTRYPOINTS: [&str; 3] = ["spawn", "scope", "Builder"];

pub fn check(file: &SourceFile, lexed: &Lexed) -> Vec<Finding> {
    if matches!(&file.class, FileClass::Shim { shim_name } if shim_name == "rayon") {
        return Vec::new();
    }
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if name == "thread" && pathsep_at(toks, i + 1) {
            if let Some(Tok::Ident(m)) = toks.get(i + 2).map(|t| &t.tok) {
                if THREAD_ENTRYPOINTS.contains(&m.as_str()) {
                    out.push(Finding::new(
                        file,
                        t,
                        RULE,
                        format!(
                            "`thread::{m}` outside shims/rayon; use the rayon shim `Pool` so \
                             scheduling stays deterministic and centralized"
                        ),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::new(path, src);
        let lexed = lex(&file.text);
        check(&file, &lexed)
    }

    #[test]
    fn flags_spawn_and_scope_everywhere_but_rayon() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n    std::thread::scope(|s| {});\n}\n";
        assert_eq!(findings("crates/themis-query/src/a.rs", src).len(), 2);
        assert_eq!(findings("tests/smoke.rs", src).len(), 2);
        assert!(findings("shims/rayon/src/lib.rs", src).is_empty());
    }

    #[test]
    fn benign_thread_uses_pass() {
        let src = "fn f() { let n = std::thread::available_parallelism(); std::thread::sleep(d); }\n";
        assert!(findings("crates/themis-query/src/a.rs", src).is_empty());
    }
}
