//! `no-env-reads`: engine configuration flows through `EngineOptions`, never
//! through the process environment.
//!
//! Only `themis-cli` (which parses `THEMIS_THREADS` into options at startup)
//! and the shims (which own sanctioned knobs like `PROPTEST_CASES`) may read
//! the environment. Everything else — library crates, the bench crate,
//! tests, examples — is flagged on `env::var`-family calls and on the
//! compile-time `env!` / `option_env!` macros. `std::env::args` and
//! `std::env::current_dir` are process inputs, not configuration, and stay
//! allowed.

use crate::lexer::{Lexed, Tok};
use crate::rules::{pathsep_at, punct_at, Finding};
use crate::source::{FileClass, SourceFile};

pub const RULE: &str = "no-env-reads";

const ENV_FNS: [&str; 6] = [
    "var",
    "var_os",
    "vars",
    "vars_os",
    "set_var",
    "remove_var",
];

pub fn check(file: &SourceFile, lexed: &Lexed) -> Vec<Finding> {
    match &file.class {
        FileClass::Tool { crate_name } if crate_name == "themis-cli" => return Vec::new(),
        FileClass::Shim { .. } => return Vec::new(),
        _ => {}
    }
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if name == "env" {
            if pathsep_at(toks, i + 1) {
                if let Some(Tok::Ident(m)) = toks.get(i + 2).map(|t| &t.tok) {
                    if ENV_FNS.contains(&m.as_str()) {
                        out.push(Finding::new(
                            file,
                            t,
                            RULE,
                            format!(
                                "`env::{m}` outside themis-cli/shims; thread configuration through `EngineOptions` instead"
                            ),
                        ));
                    }
                }
            } else if punct_at(toks, i + 1, '!') {
                out.push(Finding::new(
                    file,
                    t,
                    RULE,
                    "`env!` outside themis-cli/shims; compile-time env reads hide configuration",
                ));
            }
        } else if name == "option_env" && punct_at(toks, i + 1, '!') {
            out.push(Finding::new(
                file,
                t,
                RULE,
                "`option_env!` outside themis-cli/shims; compile-time env reads hide configuration",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::new(path, src);
        let lexed = lex(&file.text);
        check(&file, &lexed)
    }

    #[test]
    fn flags_env_reads_in_lib_tests_and_bench() {
        let src = "fn f() { let t = std::env::var(\"THEMIS_THREADS\"); }\n";
        assert_eq!(findings("crates/themis-query/src/a.rs", src).len(), 1);
        assert_eq!(findings("crates/themis-bench/src/setup.rs", src).len(), 1);
        assert_eq!(findings("tests/smoke.rs", src).len(), 1);
    }

    #[test]
    fn flags_env_macro_but_not_args() {
        let src = "fn f() { let d = env!(\"CARGO_MANIFEST_DIR\"); let a = std::env::args(); }\n";
        let got = findings("crates/themis-data/src/a.rs", src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("env!"));
    }

    #[test]
    fn cli_and_shims_are_exempt() {
        let src = "fn f() { std::env::var(\"X\"); env!(\"Y\"); }\n";
        assert!(findings("crates/themis-cli/src/main.rs", src).is_empty());
        assert!(findings("shims/proptest/src/test_runner.rs", src).is_empty());
    }
}
