//! The rule catalog and shared token-stream helpers.
//!
//! Each rule is a function from a lexed file (or, for workspace rules, the
//! whole file set) to findings. Rules are deliberately heuristic: they work
//! on token streams, not types, and they trade a small false-positive rate
//! (answered by an explicit, reasoned suppression) for zero build-time
//! dependencies and sub-second whole-workspace runs.

pub mod deterministic_iteration;
pub mod no_deep_clone;
pub mod no_env_reads;
pub mod no_panic;
pub mod no_raw_threads;
pub mod shim_api_drift;

use crate::lexer::{Lexed, Tok, Token};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Every rule name, including the meta-rule reported for malformed
/// suppression directives.
pub const RULE_NAMES: [&str; 7] = [
    "no-panic-in-libs",
    "no-env-reads",
    "deterministic-iteration",
    "no-deep-clone",
    "no-raw-threads",
    "shim-api-drift",
    "bad-suppression",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, first for derived ordering.
    pub path: String,
    pub line: u32,
    pub col: u32,
    /// One of [`RULE_NAMES`].
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    pub fn new(
        file: &SourceFile,
        at: &Token,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            path: file.path.clone(),
            line: at.line,
            col: at.col,
            rule,
            message: message.into(),
        }
    }
}

/// Run every per-file rule over one lexed file.
pub fn run_file_rules(file: &SourceFile, lexed: &Lexed) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(no_panic::check(file, lexed));
    out.extend(no_env_reads::check(file, lexed));
    out.extend(deterministic_iteration::check(file, lexed));
    out.extend(no_deep_clone::check(file, lexed));
    out.extend(no_raw_threads::check(file, lexed));
    out
}

/// Identifiers bound to one of `type_names` somewhere in the file.
///
/// Recognized binding shapes (a deliberate, documented subset):
///   - type ascription: `name: Type<...>`, `name: &Type`, `name: &mut Type`,
///     `name: &'a Type` — covers `let`s, parameters, and struct fields;
///   - constructor inference: `let [mut] name = Type::...`;
///   - for `Vec` only, macro inference: `let [mut] name = vec![...]`.
///
/// Receivers whose type never appears in the file (trait objects, generics,
/// slices) escape the heuristic; rules built on it say so in their docs.
pub fn typed_idents(tokens: &[Token], type_names: &[&str]) -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    let is_type = |t: Option<&Token>| {
        matches!(t.map(|t| &t.tok), Some(Tok::Ident(s)) if type_names.contains(&s.as_str()))
    };
    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        // `name : [& [lifetime] [mut]] [path::]* Type`
        if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':'))) {
            let mut j = i + 2;
            while matches!(
                tokens.get(j).map(|t| &t.tok),
                Some(Tok::Punct('&')) | Some(Tok::Lifetime)
            ) || matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "mut")
            {
                j += 1;
            }
            j = skip_path_prefix(tokens, j);
            if is_type(tokens.get(j)) {
                found.insert(name.clone());
            }
        }
        // `let [mut] name = Type::...` / `let [mut] name = vec![...]`
        if name == "let" {
            let mut j = i + 1;
            if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "mut") {
                j += 1;
            }
            let Some(Tok::Ident(bound)) = tokens.get(j).map(|t| &t.tok) else {
                continue;
            };
            if !matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('='))) {
                continue;
            }
            let rhs = tokens.get(j + 2).map(|t| &t.tok);
            // `= [path::]* Type :: ctor(...)`: any path segment followed by
            // `::` that names a tracked type marks a constructor call.
            let mut k = j + 2;
            let mut rhs_is_ctor = false;
            while matches!(tokens.get(k).map(|t| &t.tok), Some(Tok::Ident(_)))
                && matches!(tokens.get(k + 1).map(|t| &t.tok), Some(Tok::PathSep))
            {
                if is_type(tokens.get(k)) {
                    rhs_is_ctor = true;
                    break;
                }
                k += 2;
            }
            let rhs_is_vec_macro = type_names.contains(&"Vec")
                && matches!(rhs, Some(Tok::Ident(s)) if s == "vec")
                && matches!(tokens.get(j + 3).map(|t| &t.tok), Some(Tok::Punct('!')));
            if rhs_is_ctor || rhs_is_vec_macro {
                found.insert(bound.clone());
            }
        }
    }
    found
}

/// Skip `ident ::` pairs so `std::collections::HashMap` matches on its
/// final segment. The segment at the returned index is NOT consumed.
fn skip_path_prefix(tokens: &[Token], mut j: usize) -> usize {
    while matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Ident(_)))
        && matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::PathSep))
    {
        j += 2;
    }
    j
}

/// For each token index, the name of the innermost preceding `fn` — a cheap
/// stand-in for "which function am I in" that ignores closures.
pub fn preceding_fn_names(tokens: &[Token]) -> Vec<(usize, String)> {
    let mut fns = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if matches!(&t.tok, Tok::Ident(s) if s == "fn") {
            if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                fns.push((i, name.clone()));
            }
        }
    }
    fns
}

/// Name of the `fn` most recently opened before token index `i`.
pub fn enclosing_fn(fns: &[(usize, String)], i: usize) -> Option<&str> {
    fns.iter()
        .rev()
        .find(|(fi, _)| *fi < i)
        .map(|(_, name)| name.as_str())
}

/// Whether any token within `lines` of `line` (inclusive, forward window)
/// is an identifier from `names`.
pub fn ident_in_window(tokens: &[Token], line: u32, lines: u32, names: &[&str]) -> bool {
    tokens.iter().any(|t| {
        t.line >= line
            && t.line <= line.saturating_add(lines)
            && matches!(&t.tok, Tok::Ident(s) if names.contains(&s.as_str()))
    })
}

/// `tokens[i..]` starts with the given identifier.
pub fn ident_at(tokens: &[Token], i: usize, name: &str) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Ident(s)) if s == name)
}

/// `tokens[i]` is the given punctuation character.
pub fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// `tokens[i]` is the fused `::` separator.
pub fn pathsep_at(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::PathSep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn typed_idents_sees_ascriptions_params_and_ctors() {
        let src = "struct S { rows: Vec<u32> }\nfn f(data: &mut Vec<f64>, r: &'a Relation) {\n    let mut acc = Vec::new();\n    let lits = vec![1, 2];\n    let other: HashMap<u32, f64> = HashMap::new();\n}\n";
        let lexed = lex(src);
        let vecs = typed_idents(&lexed.tokens, &["Vec"]);
        assert!(vecs.contains("rows"));
        assert!(vecs.contains("data"));
        assert!(vecs.contains("acc"));
        assert!(vecs.contains("lits"));
        assert!(!vecs.contains("other"));
        let rels = typed_idents(&lexed.tokens, &["Relation"]);
        assert!(rels.contains("r"));
        let maps = typed_idents(&lexed.tokens, &["HashMap", "HashSet"]);
        assert!(maps.contains("other"));
    }

    #[test]
    fn enclosing_fn_tracks_most_recent() {
        let src = "fn alpha() { x(); }\nfn beta() { y(); }\n";
        let lexed = lex(src);
        let fns = preceding_fn_names(&lexed.tokens);
        let y_idx = lexed
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(s) if s == "y"))
            .expect("y token");
        assert_eq!(enclosing_fn(&fns, y_idx), Some("beta"));
    }
}
