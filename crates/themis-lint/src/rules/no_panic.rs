//! `no-panic-in-libs`: library crates must not contain panic paths.
//!
//! Applies to `crates/*/src` library code (the CLI and bench tool crates are
//! exempt, as are `tests/`, `examples/`, and `#[cfg(test)]` items). Flags:
//!
//!   - `.unwrap()` / `.expect(...)`
//!   - `panic!` / `todo!` / `unimplemented!`
//!   - indexing a receiver the file declares as `Vec` with a *constant*
//!     index (`v[0]` on possibly-empty data — the classic first-element
//!     panic). Loop-variable indexing (`v[i]`, `a[i * n + j]`) is accepted
//!     as invariant-maintained: converting the engine and solver hot loops
//!     to `.get()` would trade a mechanical guarantee for real overhead.
//!     See [`crate::rules::typed_idents`] for the binding heuristic.
//!
//! The fix is to propagate `ThemisError` / `ExecError`; where an invariant
//! genuinely guarantees the panic is unreachable, a suppression with a
//! written reason documents it at the site.

use crate::lexer::{Lexed, Tok};
use crate::rules::{punct_at, typed_idents, Finding};
use crate::source::{FileClass, SourceFile};

pub const RULE: &str = "no-panic-in-libs";

const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

pub fn check(file: &SourceFile, lexed: &Lexed) -> Vec<Finding> {
    let FileClass::Lib { crate_name } = &file.class else {
        return Vec::new();
    };
    let toks = &lexed.tokens;
    let vecs = typed_idents(toks, &["Vec"]);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if lexed.in_test_code(t.line) {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let prev_dot = i > 0 && punct_at(toks, i.wrapping_sub(1), '.');
        if prev_dot && (name == "unwrap" || name == "expect") && punct_at(toks, i + 1, '(') {
            out.push(Finding::new(
                file,
                t,
                RULE,
                format!("`.{name}()` in library crate `{crate_name}` can panic; propagate an error instead"),
            ));
        } else if PANIC_MACROS.contains(&name.as_str()) && punct_at(toks, i + 1, '!') {
            out.push(Finding::new(
                file,
                t,
                RULE,
                format!("`{name}!` in library crate `{crate_name}`; return an error instead"),
            ));
        } else if vecs.contains(name.as_str())
            && punct_at(toks, i + 1, '[')
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Num))
            && punct_at(toks, i + 3, ']')
        {
            out.push(Finding::new(
                file,
                t,
                RULE,
                format!("constant-indexing `{name}[...]` on a `Vec` in library crate `{crate_name}` panics when the data is shorter; use `.get()` or `.first()`"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::new(path, src);
        let lexed = lex(&file.text);
        check(&file, &lexed)
    }

    #[test]
    fn flags_unwrap_expect_and_macros_in_lib() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n    panic!(\"boom\");\n    todo!();\n}\n";
        let got = findings("crates/themis-bn/src/a.rs", src);
        assert_eq!(got.len(), 4);
        assert!(got.iter().all(|f| f.rule == RULE));
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn flags_constant_vec_indexing_on_declared_vecs_only() {
        let src = "fn f(v: &Vec<u32>, s: &[u32]) -> u32 {\n    v[0] + s[0]\n}\n";
        let got = findings("crates/themis-query/src/a.rs", src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("v[...]"));
    }

    #[test]
    fn loop_variable_indexing_is_accepted() {
        let src = "fn f(v: &Vec<u32>, n: usize) -> u32 {\n    let mut s = 0;\n    for i in 0..v.len() {\n        s += v[i] + v[i * n + 1];\n    }\n    s\n}\n";
        assert!(findings("crates/themis-query/src/a.rs", src).is_empty());
    }

    #[test]
    fn exempt_in_tools_tests_and_cfg_test() {
        let src = "fn f() { x.unwrap(); }\n";
        assert!(findings("crates/themis-cli/src/main.rs", src).is_empty());
        assert!(findings("crates/themis-bench/src/lib.rs", src).is_empty());
        assert!(findings("tests/smoke.rs", src).is_empty());
        assert!(findings("examples/quickstart.rs", src).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(findings("crates/themis-bn/src/a.rs", test_mod).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(g); z.unwrap_or_default(); }\n";
        assert!(findings("crates/themis-bn/src/a.rs", src).is_empty());
    }
}
