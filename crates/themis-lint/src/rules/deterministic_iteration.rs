//! `deterministic-iteration`: `HashMap`/`HashSet` iteration order must never
//! reach an ordered result.
//!
//! This is the exact bug class PR 3 fixed: a result row order that depended
//! on hash iteration. The rule flags iteration over a receiver the file
//! declares as `HashMap`/`HashSet` (`.iter()`, `.keys()`, `.values()`,
//! `.into_iter()`, `.drain()`, or a `for ... in` loop) **when** the
//! surrounding statement window feeds an order-sensitive sink (`push`,
//! `collect`, `extend`) **and** nothing in the window restores an order
//! (`sort*` calls, or collecting into a `BTreeMap`/`BTreeSet`/`BinaryHeap`).
//!
//! The window is a fixed forward span of source lines — a deliberate
//! heuristic: a sort performed inside a callee (e.g. a constructor that
//! sorts its input) is invisible here and is answered with a reasoned
//! suppression at the site.

use crate::lexer::{Lexed, Tok};
use crate::rules::{ident_in_window, punct_at, typed_idents, Finding};
use crate::source::{FileClass, SourceFile};
use std::collections::BTreeSet;

pub const RULE: &str = "deterministic-iteration";

/// Forward window (in lines) scanned for sinks and order-restorers.
const WINDOW: u32 = 15;

const ITER_METHODS: [&str; 6] = ["iter", "keys", "values", "into_iter", "drain", "iter_mut"];
const SINKS: [&str; 3] = ["push", "collect", "extend"];
const ORDER_RESTORERS: [&str; 9] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

pub fn check(file: &SourceFile, lexed: &Lexed) -> Vec<Finding> {
    let FileClass::Lib { .. } = &file.class else {
        return Vec::new();
    };
    let toks = &lexed.tokens;
    let maps = typed_idents(toks, &["HashMap", "HashSet"]);
    if maps.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if lexed.in_test_code(t.line) || flagged_lines.contains(&t.line) {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let site = if maps.contains(name.as_str())
            && punct_at(toks, i + 1, '.')
            && matches!(
                toks.get(i + 2).map(|t| &t.tok),
                Some(Tok::Ident(m)) if ITER_METHODS.contains(&m.as_str())
            ) {
            Some(("iteration", name.as_str()))
        } else if name == "for" {
            for_loop_over_map(toks, i, &maps).map(|map| ("`for` loop", map))
        } else {
            None
        };
        let Some((kind, map_name)) = site else { continue };
        if ident_in_window(toks, t.line, WINDOW, &SINKS)
            && !ident_in_window(toks, t.line, WINDOW, &ORDER_RESTORERS)
        {
            flagged_lines.insert(t.line);
            out.push(Finding::new(
                file,
                t,
                RULE,
                format!(
                    "{kind} over hash-ordered `{map_name}` feeds push/collect/extend with no \
                     adjacent sort or BTree collection; hash order must not reach results"
                ),
            ));
        }
    }
    out
}

/// If the `for` header starting at token `i` iterates (directly or by
/// reference) over one of the tracked map identifiers, returns that
/// identifier so the finding can name it.
fn for_loop_over_map<'a>(
    toks: &'a [crate::lexer::Token],
    i: usize,
    maps: &BTreeSet<String>,
) -> Option<&'a str> {
    // Scan the header tokens up to the loop body `{`, looking for `in` then
    // a tracked ident among the following tokens.
    let mut saw_in = false;
    for t in toks.iter().skip(i + 1).take(40) {
        match &t.tok {
            Tok::Punct('{') => return None,
            Tok::Ident(s) if s == "in" => saw_in = true,
            Tok::Ident(s) if saw_in && maps.contains(s.as_str()) => return Some(s),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(src: &str) -> Vec<Finding> {
        let file = SourceFile::new("crates/themis-query/src/a.rs", src);
        let lexed = lex(&file.text);
        check(&file, &lexed)
    }

    #[test]
    fn flags_unsorted_collect_from_hashmap() {
        let src = "use std::collections::HashMap;\nfn f(acc: HashMap<u32, f64>) -> Vec<(u32, f64)> {\n    acc.into_iter().collect()\n}\n";
        let got = findings(src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn adjacent_sort_absolves() {
        let src = "fn f(acc: std::collections::HashMap<u32, f64>) -> Vec<(u32, f64)> {\n    let mut rows: Vec<(u32, f64)> = acc.into_iter().collect();\n    rows.sort_by_key(|r| r.0);\n    rows\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn btree_collect_absolves() {
        let src = "fn f(acc: std::collections::HashMap<u32, f64>) -> Vec<(u32, f64)> {\n    let ordered: std::collections::BTreeMap<u32, f64> = acc.into_iter().collect();\n    ordered.into_iter().collect()\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn flags_for_loop_pushing_from_hashmap() {
        let src = "fn f(m: std::collections::HashMap<u32, f64>) -> Vec<u32> {\n    let mut out = Vec::new();\n    for (k, _) in &m {\n        out.push(*k);\n    }\n    out\n}\n";
        let got = findings(src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 3);
        assert!(got[0].message.contains("`m`"), "message names the map: {}", got[0].message);
    }

    #[test]
    fn order_insensitive_consumers_are_fine() {
        let src = "fn f(m: std::collections::HashMap<u32, f64>) -> f64 {\n    m.values().sum()\n}\n";
        assert!(findings(src).is_empty());
    }
}
