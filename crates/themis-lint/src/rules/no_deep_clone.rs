//! `no-deep-clone`: `Relation` and `Catalog` stay behind `Arc`s on query
//! paths.
//!
//! `themis_query::Catalog` is `Arc<Relation>`-backed precisely so queries
//! never deep-copy data; the `Arc::strong_count` tests assert it dynamically
//! and this rule enforces it statically. Flags `.clone()` whose receiver the
//! file declares as `Relation` or `Catalog` (the
//! [`crate::rules::typed_idents`] heuristic), except inside constructor-like
//! functions (`new`, `with_*`, `from_*`, `clone`, `to_owned`) where building
//! an owned value is the point. `Arc<Relation>` handles are untracked on
//! purpose: cloning the `Arc` is the sanctioned cheap copy.

use crate::lexer::{Lexed, Tok};
use crate::rules::{enclosing_fn, preceding_fn_names, punct_at, typed_idents, Finding};
use crate::source::{FileClass, SourceFile};

pub const RULE: &str = "no-deep-clone";

const DEEP_TYPES: [&str; 2] = ["Relation", "Catalog"];

fn is_constructor(name: &str) -> bool {
    name == "new"
        || name == "clone"
        || name == "to_owned"
        || name.starts_with("with_")
        || name.starts_with("from_")
}

pub fn check(file: &SourceFile, lexed: &Lexed) -> Vec<Finding> {
    let FileClass::Lib { crate_name } = &file.class else {
        return Vec::new();
    };
    let toks = &lexed.tokens;
    let deep = typed_idents(toks, &DEEP_TYPES);
    if deep.is_empty() {
        return Vec::new();
    }
    let fns = preceding_fn_names(toks);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if lexed.in_test_code(t.line) {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        if deep.contains(name.as_str())
            && punct_at(toks, i + 1, '.')
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "clone")
            && punct_at(toks, i + 3, '(')
        {
            if enclosing_fn(&fns, i).is_some_and(is_constructor) {
                continue;
            }
            out.push(Finding::new(
                file,
                t,
                RULE,
                format!(
                    "`{name}.clone()` deep-copies a Relation/Catalog in `{crate_name}`; \
                     share it behind an `Arc` instead"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(src: &str) -> Vec<Finding> {
        let file = SourceFile::new("crates/themis-query/src/a.rs", src);
        let lexed = lex(&file.text);
        check(&file, &lexed)
    }

    #[test]
    fn flags_relation_clone_outside_constructor() {
        let src = "fn register_all(rel: &Relation) {\n    let copy = rel.clone();\n    use_it(copy);\n}\n";
        let got = findings(src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn constructors_may_clone() {
        let src = "fn from_parts(rel: &Relation) -> Self {\n    Self { rel: rel.clone() }\n}\nfn with_base(base: &Catalog) -> Self {\n    Self { base: base.clone() }\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn other_clones_are_untouched() {
        let src = "fn f(schema: &Schema, rel: &Relation) {\n    let s = schema.clone();\n    let arc = std::sync::Arc::new(rel);\n    let h = arc.clone();\n}\n";
        assert!(findings(src).is_empty());
    }
}
