//! `shim-api-drift`: the offline shims stay honest subsets of the crates
//! they stand in for.
//!
//! Every `pub` item a shim exports must earn its keep: its name must be
//! spelled somewhere other than its own declaration line — in workspace code,
//! in another shim, or in the shim's own non-test code (signatures, impl
//! blocks, and call sites all count). The shim's *own tests* do not count:
//! API exercised only by its own unit tests is exactly the drift this rule
//! exists to catch (nobody in the workspace needs it, so it bloats the
//! surface that must match the real crate if networked builds ever return).
//!
//! `pub(crate)`/`pub(super)` items, `pub use` re-exports, and trait-impl
//! methods (which are never `pub`) are out of scope. Items reachable only
//! through macro *expansion* (never spelled at any call site) carry a
//! reasoned suppression on their declaration line.

use crate::lexer::{lex, Lexed, Tok};
use crate::rules::{punct_at, Finding};
use crate::source::{FileClass, SourceFile};
use std::collections::BTreeMap;

pub const RULE: &str = "shim-api-drift";

const ITEM_KINDS: [&str; 8] = [
    "fn", "struct", "enum", "trait", "type", "mod", "const", "static",
];

/// A public item declared by a shim.
#[derive(Debug)]
struct PubItem {
    shim: String,
    path: String,
    line: u32,
    col: u32,
    kind: &'static str,
    name: String,
}

/// Workspace-level check: needs every file, so it runs separately from the
/// per-file rules. `lexed` must align index-wise with `files`.
pub fn check(files: &[SourceFile], lexed: &[Lexed]) -> Vec<Finding> {
    let mut items: Vec<PubItem> = Vec::new();
    for (file, lx) in files.iter().zip(lexed) {
        let FileClass::Shim { shim_name } = &file.class else {
            continue;
        };
        collect_pub_items(shim_name, &file.path, lx, &mut items);
    }
    if items.is_empty() {
        return Vec::new();
    }

    // name -> indices of still-unreferenced items; absolved items drop out
    // as qualifying mentions stream past.
    let mut pending: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, it) in items.iter().enumerate() {
        pending.entry(it.name.clone()).or_default().push(i);
    }

    for (file, lx) in files.iter().zip(lexed) {
        if pending.is_empty() {
            break;
        }
        // Which shim's tests should NOT absolve that shim's own items:
        // both in-crate `#[cfg(test)]` blocks and the shim's `tests/` dir.
        let owner_shim = file
            .path
            .strip_prefix("shims/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("");
        let file_is_test_dir = matches!(file.class, FileClass::TestCode);
        for t in &lx.tokens {
            let Tok::Ident(s) = &t.tok else { continue };
            let Some(indices) = pending.get_mut(s) else {
                continue;
            };
            let in_owner_test = |it: &PubItem| {
                it.shim == owner_shim && (file_is_test_dir || lx.in_test_code(t.line))
            };
            indices.retain(|&idx| {
                let Some(it) = items.get(idx) else {
                    return false;
                };
                let is_decl_site = it.path == file.path && it.line == t.line;
                is_decl_site || in_owner_test(it)
            });
            if indices.is_empty() {
                pending.remove(s.as_str());
            }
        }
    }

    let mut out = Vec::new();
    for indices in pending.values() {
        for &idx in indices {
            let Some(it) = items.get(idx) else { continue };
            out.push(Finding {
                path: it.path.clone(),
                line: it.line,
                col: it.col,
                rule: RULE,
                message: format!(
                    "public {} `{}` in shim `{}` is never mentioned outside its declaration \
                     (the shim's own tests don't count); drop it — shims must stay honest subsets",
                    it.kind, it.name, it.shim
                ),
            });
        }
    }
    out
}

fn collect_pub_items(shim: &str, path: &str, lx: &Lexed, out: &mut Vec<PubItem>) {
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if lx.in_test_code(t.line) {
            continue;
        }
        match &t.tok {
            Tok::Ident(s) if s == "pub" => {
                // `pub(...)` restricted visibility is not public API.
                if punct_at(toks, i + 1, '(') {
                    continue;
                }
                // Scan a few qualifier tokens (async/unsafe/extern) for the
                // item-kind keyword.
                let mut j = i + 1;
                let mut kind: Option<&'static str> = None;
                for _ in 0..4 {
                    match toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Ident(k)) => {
                            if let Some(found) = ITEM_KINDS.iter().find(|x| *x == k) {
                                kind = Some(found);
                                break;
                            }
                            if k == "use" {
                                break; // re-export
                            }
                            j += 1;
                        }
                        _ => break,
                    }
                }
                let Some(kind) = kind else { continue };
                if let Some(n) = toks.get(j + 1) {
                    if let Tok::Ident(name) = &n.tok {
                        out.push(PubItem {
                            shim: shim.to_string(),
                            path: path.to_string(),
                            line: n.line,
                            col: n.col,
                            kind,
                            name: name.clone(),
                        });
                    }
                }
            }
            Tok::Ident(s) if s == "macro_rules" && punct_at(toks, i + 1, '!') => {
                // Exported macros are public API; `#[macro_export]` precedes.
                let exported = toks
                    .iter()
                    .take(i)
                    .rev()
                    .take(6)
                    .any(|p| matches!(&p.tok, Tok::Ident(a) if a == "macro_export"));
                if !exported {
                    continue;
                }
                if let Some(n) = toks.get(i + 2) {
                    if let Tok::Ident(name) = &n.tok {
                        out.push(PubItem {
                            shim: shim.to_string(),
                            path: path.to_string(),
                            line: n.line,
                            col: n.col,
                            kind: "macro",
                            name: name.clone(),
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

/// Convenience for tests and fixtures: lex then check.
pub fn check_sources(files: &[SourceFile]) -> Vec<Finding> {
    let lexed: Vec<_> = files.iter().map(|f| lex(&f.text)).collect();
    check(files, &lexed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreferenced_pub_item_is_flagged() {
        let files = vec![
            SourceFile::new(
                "shims/fake/src/lib.rs",
                "pub fn used() {}\npub fn dead_helper() {}\n",
            ),
            SourceFile::new("crates/themis-query/src/a.rs", "fn f() { fake::used(); }\n"),
        ];
        let got = check_sources(&files);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("dead_helper"));
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn own_test_usage_does_not_absolve() {
        let files = vec![SourceFile::new(
            "shims/fake/src/lib.rs",
            "pub fn only_tested() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::only_tested(); }\n}\n",
        )];
        let got = check_sources(&files);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("only_tested"));
    }

    #[test]
    fn own_tests_dir_does_not_absolve_but_workspace_tests_do() {
        let shim = SourceFile::new("shims/fake/src/lib.rs", "pub fn helper() {}\n");
        let own_test = SourceFile::new(
            "shims/fake/tests/integration.rs",
            "fn t() { fake::helper(); }\n",
        );
        let got = check_sources(&[shim.clone(), own_test]);
        assert_eq!(got.len(), 1, "own tests/ dir must not absolve");
        let ws_test = SourceFile::new("tests/smoke.rs", "fn t() { fake::helper(); }\n");
        assert!(check_sources(&[shim, ws_test]).is_empty());
    }

    #[test]
    fn signature_mention_in_same_shim_absolves() {
        let files = vec![SourceFile::new(
            "shims/fake/src/lib.rs",
            "pub struct Handle;\npub fn open() -> Handle {\n    Handle\n}\n",
        )];
        // `Handle` is named in open()'s signature; `open` itself is drift.
        let got = check_sources(&files);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("`open`"));
    }

    #[test]
    fn pub_crate_and_reexports_are_ignored() {
        let files = vec![
            SourceFile::new(
                "shims/fake/src/lib.rs",
                "pub(crate) fn internal() {}\npub use inner::Thing;\n",
            ),
            SourceFile::new("crates/themis-query/src/a.rs", "fn f() {}\n"),
        ];
        assert!(check_sources(&files).is_empty());
    }

    #[test]
    fn exported_macro_needs_a_mention() {
        let files = vec![
            SourceFile::new(
                "shims/fake/src/lib.rs",
                "#[macro_export]\nmacro_rules! make_it {\n    () => {};\n}\n",
            ),
            SourceFile::new("crates/themis-query/src/a.rs", "fn f() {}\n"),
        ];
        let got = check_sources(&files);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("make_it"));
        let with_use = SourceFile::new("tests/smoke.rs", "fn f() { make_it!(); }\n");
        let files = vec![
            SourceFile::new(
                "shims/fake/src/lib.rs",
                "#[macro_export]\nmacro_rules! make_it {\n    () => {};\n}\n",
            ),
            with_use,
        ];
        assert!(check_sources(&files).is_empty());
    }
}
