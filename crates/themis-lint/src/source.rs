//! Source files, their lint classification, and loading.
//!
//! Rules apply differently by where a file lives (library crate vs tool
//! crate vs shim vs test code), so every file carries a [`FileClass`] derived
//! from its workspace-relative path. Fixture files under
//! `crates/themis-lint/fixtures/` declare a *virtual* path in a header
//! comment so one on-disk file can exercise path-dependent rules.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where a file sits in the workspace, for rule applicability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileClass {
    /// `crates/<name>/src/**` for a library crate: the strictest class.
    Lib { crate_name: String },
    /// `themis-cli` / `themis-bench` sources, `benches/`, and `src/bin/`
    /// targets: binaries may panic and parse their own environment-adjacent
    /// input, but stay subject to determinism and env rules as noted per
    /// rule.
    Tool { crate_name: String },
    /// `shims/<name>/src/**`: offline stand-ins for external crates. Exempt
    /// from env isolation (the shims own the sanctioned knobs such as
    /// `PROPTEST_CASES`) but subject to `shim-api-drift`.
    Shim { shim_name: String },
    /// Integration tests, examples, and `#[cfg(test)]`-style directories
    /// (`tests/**`, `examples/**`, `crates/*/tests/**`, `shims/*/tests/**`).
    TestCode,
}

/// One file to lint: its workspace-relative path, class, and text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path (virtual for fixtures).
    pub path: String,
    pub class: FileClass,
    pub text: String,
}

impl SourceFile {
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        let path = path.into();
        let class = classify(&path);
        SourceFile {
            path,
            class,
            text: text.into(),
        }
    }

    /// The crate/shim this file belongs to, when it has one.
    pub fn unit_name(&self) -> Option<&str> {
        match &self.class {
            FileClass::Lib { crate_name } | FileClass::Tool { crate_name } => Some(crate_name),
            FileClass::Shim { shim_name } => Some(shim_name),
            FileClass::TestCode => None,
        }
    }
}

/// Crates whose binaries are allowed to panic and to surface their own CLI
/// concerns; everything else under `crates/` is held to library rules.
const TOOL_CRATES: [&str; 2] = ["themis-cli", "themis-bench"];

/// Classify a workspace-relative path.
pub fn classify(path: &str) -> FileClass {
    let parts: Vec<&str> = path.split('/').collect();
    match parts.as_slice() {
        ["crates", krate, rest @ ..] => {
            if rest.first() == Some(&"tests") {
                FileClass::TestCode
            } else if TOOL_CRATES.contains(krate)
                || rest.first() == Some(&"benches")
                || (rest.len() > 2 && rest[..2] == ["src", "bin"])
            {
                FileClass::Tool {
                    crate_name: (*krate).to_string(),
                }
            } else {
                FileClass::Lib {
                    crate_name: (*krate).to_string(),
                }
            }
        }
        ["shims", shim, rest @ ..] => {
            if rest.first() == Some(&"tests") {
                FileClass::TestCode
            } else {
                FileClass::Shim {
                    shim_name: (*shim).to_string(),
                }
            }
        }
        _ => FileClass::TestCode,
    }
}

/// Walk the workspace at `root` and load every `.rs` file the lint covers.
///
/// Scans `crates/`, `shims/`, `tests/`, and `examples/`, skipping build
/// output (`target/`) and the lint's own fixture corpus (fixtures are
/// deliberately-failing inputs, loaded only by [`load_fixture`]).
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in ["crates", "shims", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::new(rel, text));
        }
    }
    Ok(())
}

/// Find the workspace root by ascending from `start` until a directory whose
/// `Cargo.toml` declares `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Expected finding declared by a fail fixture: `rule @ path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    pub rule: String,
    pub path: String,
    pub line: u32,
}

/// A fixture expanded into virtual source files plus its expectations.
#[derive(Debug)]
pub struct Fixture {
    pub files: Vec<SourceFile>,
    pub expects: Vec<Expectation>,
}

/// Load a fixture file.
///
/// Header directives (anywhere in the file, conventionally at the top):
///
/// ```text
/// //! fixture-path: crates/themis-bn/src/demo.rs
/// //! expect: no-panic-in-libs @ crates/themis-bn/src/demo.rs:7
/// ```
///
/// A fixture may contain several virtual files, split by delimiter lines of
/// the form `// ==== file: <virtual-path> ====`; content before the first
/// delimiter belongs to the `fixture-path` file and keeps the on-disk line
/// numbers, while each later section restarts at line 1 on the line after
/// its delimiter.
pub fn load_fixture(path: &Path) -> io::Result<Fixture> {
    let text = fs::read_to_string(path)?;
    Ok(parse_fixture(&path.to_string_lossy(), &text))
}

/// Parse fixture text (see [`load_fixture`] for the format).
pub fn parse_fixture(on_disk_name: &str, text: &str) -> Fixture {
    let mut expects = Vec::new();
    let mut primary_path: Option<String> = None;
    for line in text.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("//! fixture-path:") {
            primary_path = Some(rest.trim().to_string());
        } else if let Some(rest) = t.strip_prefix("//! expect:") {
            if let Some(exp) = parse_expectation(rest) {
                expects.push(exp);
            }
        }
    }

    let mut files = Vec::new();
    let mut current_path = primary_path.unwrap_or_else(|| on_disk_name.to_string());
    let mut current = String::new();
    // The primary section keeps on-disk line numbers by retaining every
    // header line as-is (they are comments).
    for line in text.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("// ==== file:") {
            let virt = rest.trim_end_matches(['=', ' ']).trim().to_string();
            files.push(SourceFile::new(
                std::mem::take(&mut current_path),
                std::mem::take(&mut current),
            ));
            current_path = virt;
        } else {
            current.push_str(line);
            current.push('\n');
        }
    }
    files.push(SourceFile::new(current_path, current));
    Fixture { files, expects }
}

fn parse_expectation(spec: &str) -> Option<Expectation> {
    let (rule, loc) = spec.split_once('@')?;
    let (path, line) = loc.trim().rsplit_once(':')?;
    Some(Expectation {
        rule: rule.trim().to_string(),
        path: path.trim().to_string(),
        line: line.trim().parse().ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(
            classify("crates/themis-bn/src/sampling.rs"),
            FileClass::Lib {
                crate_name: "themis-bn".into()
            }
        );
        assert_eq!(
            classify("crates/themis-cli/src/main.rs"),
            FileClass::Tool {
                crate_name: "themis-cli".into()
            }
        );
        assert_eq!(
            classify("crates/themis-bench/benches/engine.rs"),
            FileClass::Tool {
                crate_name: "themis-bench".into()
            }
        );
        assert_eq!(
            classify("crates/themis-query/tests/properties.rs"),
            FileClass::TestCode
        );
        assert_eq!(
            classify("shims/rayon/src/lib.rs"),
            FileClass::Shim {
                shim_name: "rayon".into()
            }
        );
        assert_eq!(classify("tests/smoke.rs"), FileClass::TestCode);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::TestCode);
    }

    #[test]
    fn fixture_with_header_and_aux_file() {
        let text = "//! fixture-path: crates/x/src/a.rs\n//! expect: no-raw-threads @ crates/x/src/a.rs:3\nfn f() {\n    std::thread::spawn(|| {});\n}\n// ==== file: shims/fake/src/lib.rs ====\npub fn helper() {}\n";
        let fx = parse_fixture("fixtures/fail/x.rs", text);
        assert_eq!(fx.files.len(), 2);
        assert_eq!(fx.files[0].path, "crates/x/src/a.rs");
        assert_eq!(fx.files[1].path, "shims/fake/src/lib.rs");
        assert_eq!(fx.files[1].text, "pub fn helper() {}\n");
        assert_eq!(
            fx.expects,
            vec![Expectation {
                rule: "no-raw-threads".into(),
                path: "crates/x/src/a.rs".into(),
                line: 3,
            }]
        );
    }
}
