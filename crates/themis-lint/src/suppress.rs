//! Suppression directives.
//!
//! A finding can be silenced at its site with a magic comment:
//!
//! ```text
//! // themis-lint: allow(rule-name) reason=why this is sound
//! flagged_line();
//! ```
//!
//! A standalone directive applies to the next line carrying a token; a
//! trailing directive applies to its own line. Several rules may share one
//! directive: `allow(rule-a, rule-b)`. The `reason=` is mandatory and must
//! be non-empty — a directive without one is itself reported (as
//! `bad-suppression`) and suppresses nothing, so silencing the linter always
//! leaves a written justification in the code.

use crate::lexer::{Comment, Token};
use crate::rules::RULE_NAMES;

/// One parsed `allow` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct Allow {
    /// Line the directive applies to (already resolved from the comment's
    /// standalone/trailing position).
    pub target_line: u32,
    /// Line the directive itself sits on (for diagnostics).
    pub directive_line: u32,
    pub rules: Vec<String>,
    pub reason: String,
}

/// A malformed directive, reported as a `bad-suppression` finding.
#[derive(Debug, Clone, PartialEq)]
pub struct BadDirective {
    pub line: u32,
    pub message: String,
}

/// Everything extracted from one file's comments.
#[derive(Debug, Default)]
pub struct Suppressions {
    pub allows: Vec<Allow>,
    pub bad: Vec<BadDirective>,
}

impl Suppressions {
    /// Whether a finding of `rule` on `line` is suppressed.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.target_line == line && a.rules.iter().any(|r| r == rule))
    }
}

const MARKER: &str = "themis-lint:";

/// Parse every `themis-lint:` directive out of a file's comments.
///
/// `tokens` is needed to resolve what "the next line" means for standalone
/// directives: the target is the next line at or below the comment that
/// carries at least one token.
pub fn parse(comments: &[Comment], tokens: &[Token]) -> Suppressions {
    let mut out = Suppressions::default();
    for c in comments {
        let Some(rest) = c.text.strip_prefix(MARKER) else {
            continue;
        };
        let target_line = if c.trailing {
            c.line
        } else {
            next_token_line(tokens, c.line).unwrap_or(c.line + 1)
        };
        match parse_directive(rest.trim()) {
            Ok((rules, reason)) => {
                let unknown: Vec<&String> = rules
                    .iter()
                    .filter(|r| !RULE_NAMES.contains(&r.as_str()))
                    .collect();
                if let Some(u) = unknown.first() {
                    out.bad.push(BadDirective {
                        line: c.line,
                        message: format!(
                            "unknown rule `{u}` in allow(...); known rules: {}",
                            RULE_NAMES.join(", ")
                        ),
                    });
                    continue;
                }
                out.allows.push(Allow {
                    target_line,
                    directive_line: c.line,
                    rules,
                    reason,
                });
            }
            Err(message) => out.bad.push(BadDirective {
                line: c.line,
                message,
            }),
        }
    }
    out
}

fn next_token_line(tokens: &[Token], after: u32) -> Option<u32> {
    tokens.iter().map(|t| t.line).find(|&l| l > after)
}

/// Parse `allow(rule[, rule...]) reason=...`.
fn parse_directive(text: &str) -> Result<(Vec<String>, String), String> {
    let rest = text
        .strip_prefix("allow")
        .ok_or_else(|| format!("expected `allow(rule) reason=...` after `{MARKER}`"))?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let (rule_list, rest) = rest
        .split_once(')')
        .ok_or_else(|| "unclosed `(` in allow directive".to_string())?;
    let rules: Vec<String> = rule_list
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("allow(...) names no rules".to_string());
    }
    let reason = rest
        .trim_start()
        .strip_prefix("reason=")
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err(
            "suppression requires a non-empty `reason=`: say why the invariant holds".to_string(),
        );
    }
    Ok((rules, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Suppressions {
        let lexed = lex(src);
        parse(&lexed.comments, &lexed.tokens)
    }

    #[test]
    fn standalone_directive_targets_next_token_line() {
        let s = parse_src(
            "// themis-lint: allow(no-raw-threads) reason=test worker\n\nstd::thread::spawn(f);\n",
        );
        assert!(s.bad.is_empty());
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].target_line, 3);
        assert!(s.covers("no-raw-threads", 3));
        assert!(!s.covers("no-env-reads", 3));
    }

    #[test]
    fn trailing_directive_targets_its_own_line() {
        let s = parse_src(
            "x.unwrap(); // themis-lint: allow(no-panic-in-libs) reason=len checked above\n",
        );
        assert!(s.covers("no-panic-in-libs", 1));
    }

    #[test]
    fn reason_is_mandatory() {
        let s = parse_src("// themis-lint: allow(no-panic-in-libs)\nx.unwrap();\n");
        assert!(s.allows.is_empty());
        assert_eq!(s.bad.len(), 1);
        assert!(s.bad[0].message.contains("reason"));
    }

    #[test]
    fn empty_reason_is_rejected() {
        let s = parse_src("// themis-lint: allow(no-panic-in-libs) reason=\nx.unwrap();\n");
        assert!(s.allows.is_empty());
        assert_eq!(s.bad.len(), 1);
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let s = parse_src("// themis-lint: allow(no-such-rule) reason=whatever\nx();\n");
        assert!(s.allows.is_empty());
        assert_eq!(s.bad.len(), 1);
        assert!(s.bad[0].message.contains("no-such-rule"));
    }

    #[test]
    fn multiple_rules_in_one_directive() {
        let s = parse_src(
            "// themis-lint: allow(no-panic-in-libs, deterministic-iteration) reason=both hold\nx();\n",
        );
        assert_eq!(s.allows.len(), 1);
        assert!(s.covers("no-panic-in-libs", 2));
        assert!(s.covers("deterministic-iteration", 2));
    }
}
