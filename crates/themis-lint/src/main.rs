//! CLI entry point: `cargo run -p themis-lint -- check [--json] [PATH...]`.
//!
//! With no paths, lints the enclosing workspace (found by ascending from the
//! current directory to the first `Cargo.toml` declaring `[workspace]`).
//! With paths, each file is linted standalone; fixture files under
//! `crates/themis-lint/fixtures/` expand their `fixture-path` headers so
//! path-dependent rules see the declared virtual location.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use themis_lint::{diag, source, Report};

const USAGE: &str = "usage: themis-lint check [--json] [--root DIR] [PATH...]\n\
                     \n\
                     Lints the Themis workspace (or the given files) against the\n\
                     project's determinism, no-panic, env-isolation, and zero-clone\n\
                     rules. See README.md 'Static analysis' for the rule catalog.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("themis-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some("--help") | Some("-h") | None => return Err(USAGE.to_string()),
        Some(other) => return Err(format!("unknown command `{other}`\n{USAGE}")),
    }
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory")?;
                root = Some(PathBuf::from(dir));
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let report = if paths.is_empty() {
        let root = match root {
            Some(r) => r,
            None => {
                let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
                source::find_workspace_root(&cwd)
                    .ok_or("no workspace root found above the current directory; pass --root")?
            }
        };
        themis_lint::lint_workspace(&root).map_err(|e| e.to_string())?
    } else {
        lint_explicit_paths(&paths)?
    };

    if json {
        println!("{}", diag::to_json(&report).render());
    } else {
        print!("{}", diag::render_text(&report));
    }
    Ok(report.is_clean())
}

/// Lint explicitly-listed files. Fixture files expand into their declared
/// virtual files; plain files lint under their on-disk (workspace-relative
/// when possible) path.
fn lint_explicit_paths(paths: &[PathBuf]) -> Result<Report, String> {
    let mut files = Vec::new();
    for p in paths {
        let fixture = source::load_fixture(p)
            .map_err(|e| format!("{}: {e}", p.display()))?;
        files.extend(fixture.files);
    }
    Ok(themis_lint::lint_sources(&files))
}
