//! A minimal JSON value: writer and parser.
//!
//! Hand-rolled because the workspace builds offline with no external crates.
//! Covers exactly what the lint's `--json` mode and its round-trip test
//! need: objects (order-preserving), arrays, strings with escapes, finite
//! numbers, booleans, and null.

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Order-preserving object, so rendered output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }

    /// Fetch an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document. Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while matches!(
                bytes.get(*pos),
                Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            ) {
                *pos += 1;
            }
            let slice = bytes.get(start..*pos).unwrap_or_default();
            let text = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number `{text}` at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut raw: Vec<u8> = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                break;
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'n') => raw.push(b'\n'),
                    Some(b'r') => raw.push(b'\r'),
                    Some(b't') => raw.push(b'\t'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).unwrap_or_default();
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        let c = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        raw.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    Some(&c) => raw.push(c),
                    None => return Err("unterminated escape".to_string()),
                }
                *pos += 1;
            }
            Some(&c) => {
                raw.push(c);
                *pos += 1;
            }
        }
    }
    String::from_utf8(raw).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("themis \"lint\"\n".into())),
            ("count".into(), Json::Num(3.0)),
            ("ratio".into(), Json::Num(0.5)),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("two".into())]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("[1, 2").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse("\"a\\u0041b\"").expect("parses");
        assert_eq!(v, Json::Str("aAb".into()));
    }
}
