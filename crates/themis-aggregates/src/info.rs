//! Information-theoretic quantities computed from aggregates.
//!
//! The pruning step (§5.1) scores candidate cluster/separator pairs by
//! `I(X_C) − I(X_S)` where `I(X_C) = Σ_{i∈C} H(X_i) − H(X_C)` is the
//! *information content* of the attribute set and `H` is Shannon entropy.
//! Crucially, all of these are computed from the aggregate results alone —
//! Themis never has the population.

use crate::gamma::AggregateResult;
use themis_data::AttrId;

/// Shannon entropy (nats) of the empirical distribution defined by an
/// aggregate result.
pub fn entropy(agg: &AggregateResult) -> f64 {
    let total = agg.total();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for (_, c) in agg.groups() {
        if *c > 0.0 {
            let p = c / total;
            h -= p * p.ln();
        }
    }
    h
}

/// Information content `I(X_C) = Σ_{i∈C} H(X_i) − H(X_C)` of the attribute
/// set covered by an aggregate. For a single attribute this is zero; for a
/// pair it equals the mutual information `I(X;Y)`.
pub fn information_content(agg: &AggregateResult) -> f64 {
    let joint = entropy(agg);
    let marginal_sum: f64 = agg
        .attrs()
        .iter()
        .map(|&a| entropy(&agg.marginalize(&[a])))
        .sum();
    marginal_sum - joint
}

/// Mutual information `I(X;Y)` between two attributes covered by `agg`.
///
/// # Panics
/// Panics if either attribute is not covered by the aggregate.
pub fn mutual_information(agg: &AggregateResult, x: AttrId, y: AttrId) -> f64 {
    let joint = agg.marginalize(&[x, y]);
    information_content(&joint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::AggregateResult;
    use themis_data::paper_example::example_population;

    #[test]
    fn uniform_entropy_is_log_n() {
        let p = example_population();
        // date is uniform over 2 values: H = ln 2.
        let agg = AggregateResult::compute(&p, &[AttrId(0)]);
        assert!((entropy(&agg) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn single_attribute_information_is_zero() {
        let p = example_population();
        let agg = AggregateResult::compute(&p, &[AttrId(1)]);
        assert!(information_content(&agg).abs() < 1e-12);
    }

    #[test]
    fn dependent_attributes_have_positive_mi() {
        let p = example_population();
        let agg = AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]);
        let mi = mutual_information(&agg, AttrId(1), AttrId(2));
        assert!(mi > 0.1, "o_st and d_st are clearly dependent; MI = {mi}");
    }

    #[test]
    fn independent_attributes_have_near_zero_mi() {
        // Build a product distribution explicitly.
        let agg = AggregateResult::from_groups(
            vec![AttrId(0), AttrId(1)],
            vec![
                (vec![0, 0], 6.0),
                (vec![0, 1], 6.0),
                (vec![1, 0], 4.0),
                (vec![1, 1], 4.0),
            ],
        );
        assert!(information_content(&agg).abs() < 1e-12);
    }

    #[test]
    fn mi_is_symmetric() {
        let p = example_population();
        let agg = AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]);
        let a = mutual_information(&agg, AttrId(1), AttrId(2));
        let b = mutual_information(&agg, AttrId(2), AttrId(1));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn information_content_bounded_by_min_marginal_entropy() {
        let p = example_population();
        let agg = AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]);
        let h1 = entropy(&agg.marginalize(&[AttrId(1)]));
        let h2 = entropy(&agg.marginalize(&[AttrId(2)]));
        let ic = information_content(&agg);
        assert!(ic <= h1.min(h2) + 1e-12);
        assert!(ic >= -1e-12);
    }
}
