//! The incidence matrix `G^{0/1}` of §4.1.
//!
//! `G^{0/1}` has one row per aggregate group (stacked over all aggregates,
//! `Σ_i M_i` rows) and one column per sample tuple; entry `(r, c)` is 1 iff
//! sample row `c` participates in group `r`. Both reweighting techniques
//! (LinReg and IPF) are driven by this matrix, so we build it once and store
//! it sparsely: each row keeps the sorted list of participating sample-row
//! indices.

use crate::gamma::AggregateSet;
use std::collections::HashMap;
use themis_data::{GroupKey, Relation};

/// One row of the incidence matrix: an aggregate group, its target count
/// from `y`, and the sample rows participating in it.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidenceRow {
    /// Which aggregate (index into the [`AggregateSet`]) this row came from.
    pub aggregate: usize,
    /// The group's attribute values `a_{i,k}`.
    pub key: GroupKey,
    /// The group's population count `c_{i,k}` (the entry of `y`).
    pub target: f64,
    /// Sorted indices of the sample rows with `G^{0/1}[r][c] = 1`.
    pub sample_rows: Vec<u32>,
}

/// Sparse incidence matrix `G^{0/1}` together with the target vector `y`.
#[derive(Debug, Clone)]
pub struct IncidenceMatrix {
    rows: Vec<IncidenceRow>,
    n_sample: usize,
}

impl IncidenceMatrix {
    /// Build `G^{0/1}` and `y` from a sample and aggregate set. Rows appear
    /// in aggregate order, groups within an aggregate in sorted key order —
    /// matching the row-wise concatenation `Γ^C_1 ⊕ … ⊕ Γ^C_B` of the paper.
    ///
    /// Groups with no matching sample row are *kept* (IPF skips them, LinReg
    /// drops them explicitly via [`Self::rows_with_support`]).
    pub fn build(sample: &Relation, aggregates: &AggregateSet) -> Self {
        let mut rows = Vec::with_capacity(aggregates.total_groups());
        for (agg_idx, agg) in aggregates.iter().enumerate() {
            // Bucket sample rows by their value vector on this aggregate's
            // attributes.
            let mut buckets: HashMap<GroupKey, Vec<u32>> = HashMap::new();
            let attrs = agg.attrs();
            let mut key = vec![0u32; attrs.len()];
            for r in 0..sample.len() {
                for (i, a) in attrs.iter().enumerate() {
                    key[i] = sample.value(r, *a);
                }
                buckets.entry(key.clone()).or_default().push(r as u32);
            }
            for (key, target) in agg.groups() {
                let sample_rows = buckets.remove(key).unwrap_or_default();
                rows.push(IncidenceRow {
                    aggregate: agg_idx,
                    key: key.clone(),
                    target: *target,
                    sample_rows,
                });
            }
        }
        Self {
            rows,
            n_sample: sample.len(),
        }
    }

    /// Extend the matrix in place for a sample grown by appended rows.
    ///
    /// `sample` must be the original sample with new tuples appended at the
    /// end (indices `self.n_sample()..sample.len()`), and `aggregates` must
    /// be the same set the matrix was built from — the targets `y` are
    /// population-side knowledge and do not move when the sample grows.
    ///
    /// Appended indices are strictly larger than every existing index, so
    /// pushing them onto each group's `sample_rows` preserves sorted order
    /// and the result is **identical** to rebuilding from scratch on the
    /// grown sample — the property the incremental-reweighting path (ingest)
    /// depends on for bit-identical IPF weights.
    ///
    /// # Panics
    /// Panics if `sample` is shorter than the matrix's column count or the
    /// aggregate set's group count doesn't match the matrix rows.
    pub fn extend(&mut self, sample: &Relation, aggregates: &AggregateSet) {
        assert!(
            sample.len() >= self.n_sample,
            "extend requires the grown sample to contain the original rows"
        );
        assert_eq!(
            self.rows.len(),
            aggregates.total_groups(),
            "aggregate set does not match the matrix"
        );
        // (aggregate, key) -> row index. Built by scanning rows in order;
        // nothing iterates this map, so no iteration order can leak.
        let mut index: HashMap<(usize, &GroupKey), usize> = HashMap::new();
        for (r, row) in self.rows.iter().enumerate() {
            index.insert((row.aggregate, &row.key), r);
        }
        let mut touched: Vec<(usize, u32)> = Vec::new();
        for (agg_idx, agg) in aggregates.iter().enumerate() {
            let attrs = agg.attrs();
            let mut key = vec![0u32; attrs.len()];
            for r in self.n_sample..sample.len() {
                for (i, a) in attrs.iter().enumerate() {
                    key[i] = sample.value(r, *a);
                }
                // A key absent from the aggregate's groups is a combination
                // the population never reported; a cold build discards such
                // rows the same way.
                if let Some(&row_idx) = index.get(&(agg_idx, &key)) {
                    touched.push((row_idx, r as u32));
                }
            }
        }
        for (row_idx, sample_row) in touched {
            self.rows[row_idx].sample_rows.push(sample_row);
        }
        self.n_sample = sample.len();
    }

    /// All rows in aggregate-major order.
    pub fn rows(&self) -> &[IncidenceRow] {
        &self.rows
    }

    /// Number of sample tuples (columns of `G^{0/1}`).
    pub fn n_sample(&self) -> usize {
        self.n_sample
    }

    /// Number of rows (`Σ_i M_i`).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Indices of rows with at least one participating sample tuple. LinReg
    /// drops the all-zero rows of `G^{0/1} X_S` (§4.1.1: "In the case an
    /// entire row ... is all zeros, which happens with missing values in S,
    /// we drop that row and its associated value in y").
    pub fn rows_with_support(&self) -> Vec<usize> {
        (0..self.rows.len())
            .filter(|&r| !self.rows[r].sample_rows.is_empty())
            .collect()
    }

    /// Dot product of row `r` with a weight vector: `G^{0/1}[r] · w`.
    ///
    /// # Panics
    /// Panics if `w.len() != self.n_sample()`.
    pub fn row_dot(&self, r: usize, w: &[f64]) -> f64 {
        assert_eq!(w.len(), self.n_sample, "weight vector length mismatch");
        self.rows[r]
            .sample_rows
            .iter()
            .map(|&c| w[c as usize])
            .sum()
    }

    /// Maximum relative constraint violation `max_r |G[r]·w − y_r| / y_r`
    /// over supported rows with positive targets — the convergence measure
    /// for IPF.
    pub fn max_relative_violation(&self, w: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for (r, row) in self.rows.iter().enumerate() {
            if row.sample_rows.is_empty() || row.target <= 0.0 {
                continue;
            }
            let v = (self.row_dot(r, w) - row.target).abs() / row.target;
            worst = worst.max(v);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::{AggregateResult, AggregateSet};
    use themis_data::paper_example::{example_population, example_sample};
    use themis_data::AttrId;

    fn example() -> (Relation, IncidenceMatrix) {
        let p = example_population();
        let s = example_sample();
        let mut set = AggregateSet::new();
        set.push(AggregateResult::compute(&p, &[AttrId(0)]));
        set.push(AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]));
        let g = IncidenceMatrix::build(&s, &set);
        (s, g)
    }

    #[test]
    fn matches_example_4_1() {
        // Example 4.1's G^{0/1} (9 rows: 2 for date, 7 for o_st/d_st).
        let (_s, g) = example();
        assert_eq!(g.n_rows(), 9);
        assert_eq!(g.n_sample(), 4);
        // Row 0: date = 01 -> sample rows 0, 1, 3.
        assert_eq!(g.rows()[0].sample_rows, vec![0, 1, 3]);
        assert_eq!(g.rows()[0].target, 5.0);
        // Row 1: date = 02 -> sample row 2.
        assert_eq!(g.rows()[1].sample_rows, vec![2]);
        // FL,FL group -> rows 0, 1.
        let flfl = g.rows().iter().find(|r| r.aggregate == 1 && r.key == vec![0, 0]).unwrap();
        assert_eq!(flfl.sample_rows, vec![0, 1]);
        assert_eq!(flfl.target, 2.0);
        // FL,NY has no support in the sample.
        let flny = g.rows().iter().find(|r| r.aggregate == 1 && r.key == vec![0, 2]).unwrap();
        assert!(flny.sample_rows.is_empty());
    }

    #[test]
    fn rows_with_support_drops_missing_groups() {
        let (_s, g) = example();
        let supported = g.rows_with_support();
        // 9 rows total; FL→NY, NC→FL, NY→FL, NY→NY have no sample support.
        assert_eq!(supported.len(), 5);
    }

    #[test]
    fn row_dot_sums_weights() {
        let (s, g) = example();
        let w = vec![1.0; s.len()];
        assert_eq!(g.row_dot(0, &w), 3.0); // date=01 has 3 sample rows
        assert_eq!(g.row_dot(1, &w), 1.0);
    }

    #[test]
    fn extend_matches_cold_build_exactly() {
        let p = example_population();
        let s = example_sample();
        let mut set = AggregateSet::new();
        set.push(AggregateResult::compute(&p, &[AttrId(0)]));
        set.push(AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]));
        // Build on the first two rows, then extend to the full sample.
        let prefix = s.select_rows(&[0, 1]);
        let mut incremental = IncidenceMatrix::build(&prefix, &set);
        incremental.extend(&s, &set);
        let cold = IncidenceMatrix::build(&s, &set);
        assert_eq!(incremental.n_sample(), cold.n_sample());
        assert_eq!(incremental.rows(), cold.rows());
        // A no-op extend changes nothing.
        let before = incremental.rows().to_vec();
        incremental.extend(&s, &set);
        assert_eq!(incremental.rows(), &before[..]);
    }

    #[test]
    fn violation_is_zero_when_constraints_met() {
        let (_s, g) = example();
        // Weights satisfying every supported constraint... date=01 needs
        // total 5 over rows {0,1,3}, date=02 needs 5 on row {2}; FL,FL needs
        // 2 over rows {0,1}; NC,NY needs 3 on row {2} — conflict with
        // date=02 (5 vs 3), so perfect satisfaction is impossible (this is
        // why IPF does not converge in Example 4.2). Check a partial one.
        let w = vec![1.0, 1.0, 5.0, 3.0];
        assert_eq!(g.row_dot(0, &w), 5.0);
        assert!(g.max_relative_violation(&w) > 0.0);
    }
}
