//! # themis-aggregates
//!
//! Population aggregate machinery for Themis.
//!
//! Themis never sees the population `P`; it sees `Γ`, a set of
//! `GROUP BY, COUNT(*)` results of various dimensions computed over `P`
//! (§3 of the paper). This crate provides:
//!
//! * [`gamma`] — aggregate specifications `γ_i`, results `Γ_i`
//!   (value-vector/count pairs), and the collection `Γ`,
//! * [`incidence`] — the 0/1 incidence matrix `G^{0/1}` mapping aggregate
//!   groups to the sample rows participating in them (§4.1), stored
//!   sparsely,
//! * [`info`] — entropy, information content, and mutual information
//!   computed *from aggregates alone* (the population is unavailable),
//! * [`prune`] — aggregate selection: the modified k-order t-cherry
//!   junction-tree greedy algorithm of §5.1 (Alg. 4) plus the random
//!   baseline used in Fig. 15.

#![forbid(unsafe_code)]

pub mod gamma;
pub mod incidence;
pub mod info;
pub mod prune;

pub use gamma::{AggregateResult, AggregateSet};
pub use incidence::{IncidenceMatrix, IncidenceRow};
pub use prune::{random_selection, select_tcherry};
