//! Aggregate selection (§5.1, Alg. 4): the modified k-order t-cherry
//! junction-tree greedy algorithm.
//!
//! Given a budget `B`, Themis keeps the `B` most informative aggregates —
//! those whose clusters would appear in a k-order t-cherry junction tree,
//! which minimizes the KL divergence to the true distribution among product
//! approximations of that order. Unlike the classic algorithm we cannot
//! score arbitrary clusters (the population is unavailable): only
//! cluster/separator pairs with support in `Γ` are initialized, and because
//! the budget may exceed the number of attributes the greedy loop may build
//! multiple trees, disallowing duplicate clusters.

use crate::gamma::AggregateResult;
use crate::info::{entropy, information_content};
use rand::seq::SliceRandom;
use rand::Rng;
use themis_data::AttrId;

/// One candidate cluster/separator pair with its `I(X_C) − I(X_S)` score.
#[derive(Debug, Clone)]
struct Pair {
    candidate: usize,
    separator: Vec<AttrId>,
    score: f64,
}

/// Select up to `budget` aggregates from `candidates` (all of the same
/// dimension `d = k`) with the modified t-cherry greedy algorithm. Returns
/// indices into `candidates` in selection order.
///
/// For `d == 1` the t-cherry structure is degenerate (separators would be
/// empty); we fall back to ranking marginals by entropy, which keeps the
/// most informative 1-D aggregates.
pub fn select_tcherry(candidates: &[AggregateResult], budget: usize) -> Vec<usize> {
    if candidates.is_empty() || budget == 0 {
        return Vec::new();
    }
    let d = candidates[0].dim();
    assert!(
        candidates.iter().all(|c| c.dim() == d),
        "all candidates must share one dimension"
    );
    if d == 1 {
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| entropy(&candidates[b]).total_cmp(&entropy(&candidates[a])));
        order.truncate(budget);
        return order;
    }

    // All attributes any candidate covers.
    let mut all_attrs: Vec<AttrId> = Vec::new();
    for c in candidates {
        for &a in c.attrs() {
            if !all_attrs.contains(&a) {
                all_attrs.push(a);
            }
        }
    }

    // GenClusterSeparatorPairs: every candidate cluster with every (d−1)
    // separator, scored by I(X_C) − I(X_S). All candidates have support in Γ
    // by construction (they *are* Γ).
    let mut pairs: Vec<Pair> = Vec::new();
    for (i, cand) in candidates.iter().enumerate() {
        let ic = information_content(cand);
        for skip in 0..cand.attrs().len() {
            let separator: Vec<AttrId> = cand
                .attrs()
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != skip)
                .map(|(_, &a)| a)
                .collect();
            let is = information_content(&cand.marginalize(&separator));
            pairs.push(Pair {
                candidate: i,
                separator,
                score: ic - is,
            });
        }
    }
    pairs.sort_by(|a, b| b.score.total_cmp(&a.score));

    let mut selected: Vec<usize> = Vec::new();
    let mut used = vec![false; candidates.len()];

    while selected.len() < budget {
        // Start a new tree from the best unused pair.
        let Some(root) = pairs.iter().find(|p| !used[p.candidate]) else {
            break;
        };
        used[root.candidate] = true;
        selected.push(root.candidate);
        let mut tree_covered: Vec<AttrId> = candidates[root.candidate].attrs().to_vec();

        // Grow the tree: each addition must hang off an already-selected
        // cluster (separator containment) and cover a new attribute.
        loop {
            if selected.len() >= budget || tree_covered.len() == all_attrs.len() {
                break;
            }
            let next = pairs.iter().find(|p| {
                !used[p.candidate]
                    && selected
                        .iter()
                        .any(|&s| candidates[s].covers(&p.separator))
                    && candidates[p.candidate]
                        .attrs()
                        .iter()
                        .any(|a| !tree_covered.contains(a))
            });
            let Some(next) = next else { break };
            used[next.candidate] = true;
            selected.push(next.candidate);
            for &a in candidates[next.candidate].attrs() {
                if !tree_covered.contains(&a) {
                    tree_covered.push(a);
                }
            }
        }
    }
    selected
}

/// The random baseline of Fig. 15: pick `budget` candidates uniformly.
pub fn random_selection<R: Rng>(
    n_candidates: usize,
    budget: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n_candidates).collect();
    idx.shuffle(rng);
    idx.truncate(budget.min(n_candidates));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::{all_aggregates_of_dim, AggregateResult};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use themis_data::paper_example::example_population;
    use themis_data::{Domain, Relation, Schema};

    /// Population with a strong X↔Y dependence and an independent Z.
    fn correlated_population() -> Relation {
        let schema = Schema::new(vec![
            themis_data::Attribute::new("x", Domain::indexed("x", 2)),
            themis_data::Attribute::new("y", Domain::indexed("y", 2)),
            themis_data::Attribute::new("z", Domain::indexed("z", 2)),
        ]);
        let mut p = Relation::new(schema);
        // X = Y always; Z alternates independently.
        for i in 0..40 {
            let x = (i / 2) % 2;
            p.push_row(&[x, x, i % 2]);
        }
        p
    }

    #[test]
    fn picks_the_dependent_pair_first() {
        let p = correlated_population();
        let attrs: Vec<AttrId> = p.schema().attr_ids().collect();
        let candidates = all_aggregates_of_dim(&p, &attrs, 2);
        let selected = select_tcherry(&candidates, 1);
        assert_eq!(selected.len(), 1);
        // The X-Y aggregate (index 0 in lexicographic subset order) has the
        // highest information content.
        assert_eq!(candidates[selected[0]].attrs(), &[AttrId(0), AttrId(1)]);
    }

    #[test]
    fn respects_budget_and_avoids_duplicates() {
        let p = example_population();
        let attrs: Vec<AttrId> = p.schema().attr_ids().collect();
        let candidates = all_aggregates_of_dim(&p, &attrs, 2);
        for budget in 1..=3 {
            let selected = select_tcherry(&candidates, budget);
            assert_eq!(selected.len(), budget.min(candidates.len()));
            let mut dedup = selected.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), selected.len(), "duplicate selection");
        }
    }

    #[test]
    fn one_dimensional_falls_back_to_entropy_ranking() {
        let p = correlated_population();
        let attrs: Vec<AttrId> = p.schema().attr_ids().collect();
        let mut candidates = all_aggregates_of_dim(&p, &attrs, 1);
        // Make X degenerate (all mass on one value) so its entropy is low.
        candidates[0] = AggregateResult::from_groups(vec![AttrId(0)], vec![(vec![0], 40.0)]);
        let selected = select_tcherry(&candidates, 2);
        assert_eq!(selected.len(), 2);
        assert!(!selected.contains(&0), "degenerate marginal should rank last");
    }

    #[test]
    fn budget_beyond_coverage_starts_new_tree() {
        let p = example_population();
        let attrs: Vec<AttrId> = p.schema().attr_ids().collect();
        let candidates = all_aggregates_of_dim(&p, &attrs, 2);
        // 3 candidates cover all attributes quickly; budget 3 must still
        // select all three (second tree).
        let selected = select_tcherry(&candidates, 3);
        assert_eq!(selected.len(), 3);
    }

    #[test]
    fn random_selection_is_within_budget() {
        let mut rng = SmallRng::seed_from_u64(1);
        let sel = random_selection(10, 4, &mut rng);
        assert_eq!(sel.len(), 4);
        let mut d = sel.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 4);
        assert!(sel.iter().all(|&i| i < 10));
        assert_eq!(random_selection(3, 10, &mut rng).len(), 3);
    }
}
