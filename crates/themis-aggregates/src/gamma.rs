//! Aggregate queries and their results.
//!
//! Following §3: `Γ = {G_{γ_i, COUNT(*)}(P) : i = 1..B}` where each `γ_i ⊆ A`
//! is a set of attributes and each result `Γ_i` is a set of
//! `(value-vector, count)` pairs. Aggregates need not cover all attributes
//! and counts need not be exact (they may be noised for differential
//! privacy); Themis treats them as marginal constraints to be satisfied.

use std::collections::HashMap;
use themis_data::{AttrId, GroupKey, Relation};

/// The result `Γ_i` of one aggregate query: the attribute set `γ_i` plus all
/// `(a_{i,k}, c_{i,k})` group/count pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateResult {
    attrs: Vec<AttrId>,
    groups: Vec<(GroupKey, f64)>,
}

impl AggregateResult {
    /// Compute the aggregate `GROUP BY attrs, COUNT(*)` over a relation
    /// (weighted — computing over a population with unit weights gives the
    /// true counts).
    ///
    /// # Panics
    /// Panics if `attrs` is empty or contains duplicates.
    pub fn compute(relation: &Relation, attrs: &[AttrId]) -> Self {
        Self::validate_attrs(attrs);
        let mut groups: Vec<(GroupKey, f64)> =
            relation.group_counts(attrs).into_iter().collect();
        // Deterministic order for reproducible incidence matrices.
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        Self {
            attrs: attrs.to_vec(),
            groups,
        }
    }

    /// Build an aggregate result from explicit groups (e.g. parsed from a
    /// published census table).
    ///
    /// # Panics
    /// Panics if `attrs` is empty/duplicated, a group key has the wrong
    /// arity, or a count is negative.
    pub fn from_groups(attrs: Vec<AttrId>, mut groups: Vec<(GroupKey, f64)>) -> Self {
        Self::validate_attrs(&attrs);
        for (key, count) in &groups {
            assert_eq!(key.len(), attrs.len(), "group key arity mismatch");
            assert!(*count >= 0.0, "negative aggregate count");
        }
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        Self { attrs, groups }
    }

    fn validate_attrs(attrs: &[AttrId]) {
        assert!(!attrs.is_empty(), "aggregate must cover at least one attribute");
        for i in 0..attrs.len() {
            for j in (i + 1)..attrs.len() {
                assert_ne!(attrs[i], attrs[j], "duplicate attribute in aggregate");
            }
        }
    }

    /// The attribute set `γ_i`.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Aggregate dimension `d_i`.
    pub fn dim(&self) -> usize {
        self.attrs.len()
    }

    /// Number of groups `M_i`.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// All `(a_{i,k}, c_{i,k})` pairs, sorted by key.
    pub fn groups(&self) -> &[(GroupKey, f64)] {
        &self.groups
    }

    /// Count for a specific group key, if present.
    pub fn count_for(&self, key: &[u32]) -> Option<f64> {
        self.groups
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| self.groups[i].1)
    }

    /// Total count over all groups (≈ population size when the aggregate is
    /// exact and complete).
    pub fn total(&self) -> f64 {
        self.groups.iter().map(|(_, c)| c).sum()
    }

    /// Marginalize onto a subset of this aggregate's attributes.
    ///
    /// # Panics
    /// Panics if `subset` is not a subset of `self.attrs()`.
    pub fn marginalize(&self, subset: &[AttrId]) -> AggregateResult {
        let positions: Vec<usize> = subset
            .iter()
            .map(|a| {
                self.attrs
                    .iter()
                    .position(|x| x == a)
                    // themis-lint: allow(no-panic-in-libs) reason=documented `# Panics` contract; callers pass subsets of attrs() by construction
                    .unwrap_or_else(|| panic!("attribute {a} not covered by this aggregate"))
            })
            .collect();
        let mut acc: HashMap<GroupKey, f64> = HashMap::new();
        for (key, count) in &self.groups {
            let sub: GroupKey = positions.iter().map(|&p| key[p]).collect();
            *acc.entry(sub).or_insert(0.0) += count;
        }
        // themis-lint: allow(deterministic-iteration) reason=from_groups sorts its input by group key before storing
        AggregateResult::from_groups(subset.to_vec(), acc.into_iter().collect())
    }

    /// Whether this aggregate covers all of `attrs`.
    pub fn covers(&self, attrs: &[AttrId]) -> bool {
        attrs.iter().all(|a| self.attrs.contains(a))
    }
}

/// The collection `Γ` of aggregate results available to Themis.
#[derive(Debug, Clone, Default)]
pub struct AggregateSet {
    aggregates: Vec<AggregateResult>,
}

impl AggregateSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from results.
    pub fn from_results(aggregates: Vec<AggregateResult>) -> Self {
        Self { aggregates }
    }

    /// Add one aggregate result.
    pub fn push(&mut self, agg: AggregateResult) {
        self.aggregates.push(agg);
    }

    /// Number of aggregates `B`.
    pub fn len(&self) -> usize {
        self.aggregates.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.aggregates.is_empty()
    }

    /// The aggregates in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &AggregateResult> {
        self.aggregates.iter()
    }

    /// Aggregate by index.
    pub fn get(&self, i: usize) -> &AggregateResult {
        &self.aggregates[i]
    }

    /// The union of attributes covered by any aggregate, sorted.
    pub fn covered_attrs(&self) -> Vec<AttrId> {
        let mut out: Vec<AttrId> = Vec::new();
        for agg in &self.aggregates {
            for &a in agg.attrs() {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out.sort();
        out
    }

    /// Find an aggregate that covers all of `attrs` (used by structure
    /// learning's support check and by query answering), preferring the
    /// lowest-dimensional match.
    pub fn find_covering(&self, attrs: &[AttrId]) -> Option<&AggregateResult> {
        self.aggregates
            .iter()
            .filter(|agg| agg.covers(attrs))
            .min_by_key(|agg| agg.dim())
    }

    /// Total constraint count `Σ_i M_i`.
    pub fn total_groups(&self) -> usize {
        self.aggregates.iter().map(|a| a.group_count()).sum()
    }
}

/// Compute every d-dimensional aggregate over a relation's schema, optionally
/// restricted to a set of candidate attributes. This is the "all possible
/// aggregates" input to the pruning step (§6.3 computes 2D/3D aggregates over
/// all attribute subsets).
pub fn all_aggregates_of_dim(
    relation: &Relation,
    candidate_attrs: &[AttrId],
    d: usize,
) -> Vec<AggregateResult> {
    let mut out = Vec::new();
    let mut subset = Vec::with_capacity(d);
    fn rec(
        relation: &Relation,
        attrs: &[AttrId],
        d: usize,
        start: usize,
        subset: &mut Vec<AttrId>,
        out: &mut Vec<AggregateResult>,
    ) {
        if subset.len() == d {
            out.push(AggregateResult::compute(relation, subset));
            return;
        }
        for i in start..attrs.len() {
            subset.push(attrs[i]);
            rec(relation, attrs, d, i + 1, subset, out);
            subset.pop();
        }
    }
    rec(relation, candidate_attrs, d, 0, &mut subset, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_data::paper_example::example_population;

    #[test]
    fn example_3_1_aggregates() {
        let p = example_population();
        // Γ1 = GROUP BY date: {([01], 5), ([02], 5)}.
        let g1 = AggregateResult::compute(&p, &[AttrId(0)]);
        assert_eq!(g1.group_count(), 2);
        assert_eq!(g1.count_for(&[0]), Some(5.0));
        assert_eq!(g1.count_for(&[1]), Some(5.0));
        // Γ2 = GROUP BY o_st, d_st: 7 groups.
        let g2 = AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]);
        assert_eq!(g2.group_count(), 7);
        assert_eq!(g2.count_for(&[0, 0]), Some(2.0)); // FL,FL
        assert_eq!(g2.count_for(&[1, 2]), Some(3.0)); // NC,NY
        assert_eq!(g2.count_for(&[0, 1]), None); // FL,NC absent
        assert_eq!(g2.total(), 10.0);
    }

    #[test]
    fn marginalization_is_consistent() {
        let p = example_population();
        let g2 = AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]);
        let m = g2.marginalize(&[AttrId(1)]);
        let direct = AggregateResult::compute(&p, &[AttrId(1)]);
        assert_eq!(m, direct);
    }

    #[test]
    fn set_reports_coverage() {
        let p = example_population();
        let mut set = AggregateSet::new();
        set.push(AggregateResult::compute(&p, &[AttrId(0)]));
        set.push(AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]));
        assert_eq!(set.len(), 2);
        assert_eq!(set.covered_attrs(), vec![AttrId(0), AttrId(1), AttrId(2)]);
        assert!(set.find_covering(&[AttrId(2)]).is_some());
        assert!(set.find_covering(&[AttrId(0), AttrId(1)]).is_none());
        assert_eq!(set.total_groups(), 9);
    }

    #[test]
    fn find_covering_prefers_lowest_dimension() {
        let p = example_population();
        let mut set = AggregateSet::new();
        set.push(AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]));
        set.push(AggregateResult::compute(&p, &[AttrId(1)]));
        let found = set.find_covering(&[AttrId(1)]).unwrap();
        assert_eq!(found.dim(), 1);
    }

    #[test]
    fn all_aggregates_enumerates_subsets() {
        let p = example_population();
        let attrs: Vec<AttrId> = p.schema().attr_ids().collect();
        let all2 = all_aggregates_of_dim(&p, &attrs, 2);
        assert_eq!(all2.len(), 3); // C(3,2)
        let all1 = all_aggregates_of_dim(&p, &attrs, 1);
        assert_eq!(all1.len(), 3);
    }

    #[test]
    fn from_groups_accepts_noisy_counts() {
        // Counts need not be integers or sum to n (differential privacy).
        let agg = AggregateResult::from_groups(
            vec![AttrId(0)],
            vec![(vec![0], 4.7), (vec![1], 5.2)],
        );
        assert!((agg.total() - 9.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn rejects_duplicate_attrs() {
        AggregateResult::from_groups(vec![AttrId(0), AttrId(0)], vec![]);
    }
}
