//! Property-based tests for aggregates, incidence matrices, and
//! information measures.

use proptest::prelude::*;
use themis_aggregates::gamma::all_aggregates_of_dim;
use themis_aggregates::info::{entropy, information_content};
use themis_aggregates::{AggregateResult, AggregateSet, IncidenceMatrix};
use themis_data::{AttrId, Attribute, Domain, Relation, Schema};

fn random_relation(cards: &[usize], rows: &[Vec<u32>]) -> Relation {
    let schema = Schema::new(
        cards
            .iter()
            .enumerate()
            .map(|(i, &c)| Attribute::new(format!("a{i}"), Domain::indexed(format!("a{i}"), c)))
            .collect(),
    );
    let mut rel = Relation::new(schema);
    for row in rows {
        rel.push_row(row);
    }
    rel
}

fn relation_strategy() -> impl Strategy<Value = Relation> {
    (prop::collection::vec(2usize..4, 2..4)).prop_flat_map(|cards| {
        let row = cards.iter().map(|&c| 0u32..c as u32).collect::<Vec<_>>();
        prop::collection::vec(row, 2..50).prop_map(move |rows| random_relation(&cards, &rows))
    })
}

proptest! {
    #[test]
    fn aggregate_total_equals_relation_size(rel in relation_strategy()) {
        let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();
        for d in 1..=attrs.len().min(2) {
            for agg in all_aggregates_of_dim(&rel, &attrs, d) {
                prop_assert!((agg.total() - rel.len() as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn marginalization_commutes(rel in relation_strategy()) {
        // Marginalizing a joint aggregate equals computing the marginal
        // directly, for every covered attribute.
        let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();
        let joint = AggregateResult::compute(&rel, &attrs[..2]);
        for &a in &attrs[..2] {
            let via_joint = joint.marginalize(&[a]);
            let direct = AggregateResult::compute(&rel, &[a]);
            prop_assert_eq!(via_joint, direct);
        }
    }

    #[test]
    fn incidence_rows_partition_the_sample(rel in relation_strategy()) {
        // Within one aggregate, each sample row appears in exactly one
        // group row (the groups partition the sample).
        let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();
        let set = AggregateSet::from_results(vec![AggregateResult::compute(&rel, &attrs[..1])]);
        let inc = IncidenceMatrix::build(&rel, &set);
        let mut seen = vec![0usize; rel.len()];
        for row in inc.rows() {
            for &c in &row.sample_rows {
                seen[c as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1), "{seen:?}");
    }

    #[test]
    fn incidence_targets_match_aggregate_counts(rel in relation_strategy()) {
        let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();
        let agg = AggregateResult::compute(&rel, &attrs[..2]);
        let set = AggregateSet::from_results(vec![agg.clone()]);
        let inc = IncidenceMatrix::build(&rel, &set);
        // The relation IS the population here, so w = 1 satisfies all
        // constraints exactly.
        let w = vec![1.0; rel.len()];
        prop_assert!(inc.max_relative_violation(&w) < 1e-12);
    }

    #[test]
    fn entropy_is_bounded_by_log_support(rel in relation_strategy()) {
        let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();
        let agg = AggregateResult::compute(&rel, &attrs[..1]);
        let h = entropy(&agg);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (agg.group_count() as f64).ln() + 1e-9);
    }

    #[test]
    fn information_content_is_nonnegative(rel in relation_strategy()) {
        let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();
        let agg = AggregateResult::compute(&rel, &attrs[..2]);
        prop_assert!(information_content(&agg) >= -1e-9);
    }
}
