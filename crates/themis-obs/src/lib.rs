//! # themis-obs
//!
//! Dependency-free observability for the Themis stack.
//!
//! Two halves, both built on `std` alone:
//!
//! * [`trace`] — a per-query **span tree** ([`QueryTrace`]) collected
//!   through an explicit [`TraceSink`] handle. The sink is threaded through
//!   `EngineOptions` (no environment reads, no globals): a disabled sink is
//!   a `None` and every instrumentation call short-circuits on it, so
//!   tracing is provably free when off. Span *counters* (morsels, rows
//!   scanned, rows masked, groups folded, guard checks) are tallied per
//!   morsel and summed, which makes them independent of thread count —
//!   traced execution is bit-identical to untraced execution, and trace
//!   *structure* is identical at 1, 2, or 8 threads; only wall times vary.
//!
//! * [`metrics`] — a [`MetricsRegistry`] of atomic [`Counter`]s,
//!   [`Gauge`]s, and log-linear [`Histogram`]s. Histograms answer
//!   p50/p90/p99 from bucket lower bounds (deterministic, no sampling);
//!   the registry export is sorted by metric name so serializing it is
//!   reproducible byte for byte.
//!
//! All durations are serialized through [`saturating_micros`], which caps
//! at 2^53 µs — the largest integer magnitude `f64` can represent exactly —
//! so timestamps survive a JSON round-trip bit-identically.

#![forbid(unsafe_code)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricValue, MetricsRegistry};
pub use trace::{saturating_micros, QueryTrace, SpanGuard, TraceSink, TraceSpan, MAX_EXACT_MICROS};
