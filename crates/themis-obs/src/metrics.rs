//! Engine metrics: atomic counters, gauges, and log-linear histograms,
//! collected in a [`MetricsRegistry`] whose export is deterministic.
//!
//! Everything here is `std::sync::atomic` — no locks on the record path,
//! no allocation after registration, no external dependencies. The
//! registry export sorts by metric name, so serializing it (the server's
//! `metrics` op) is reproducible byte for byte regardless of registration
//! or update order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter. Increments are `Relaxed`: metrics are
/// observability, not synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (e.g. in-flight queries). Also
/// usable as an admission slot via [`Gauge::try_inc_below`].
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value outright.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::AcqRel);
    }

    /// Subtract one (saturating at zero).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Atomically increment iff the current value is below `max`; returns
    /// whether the slot was taken. This is the admission-control CAS: the
    /// server's concurrent-query permit acquires through it.
    pub fn try_inc_below(&self, max: u64) -> bool {
        self.0
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                if v < max {
                    Some(v + 1)
                } else {
                    None
                }
            })
            .is_ok()
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// Sub-bucket resolution: 2 bits → 4 sub-buckets per power of two, giving
/// bucket boundaries within ~25% of the true value at every magnitude.
const SUB_BITS: u32 = 2;
const SUB: u64 = 1 << SUB_BITS;
/// Indices 0..SUB are exact; then SUB buckets for each of the 64 - SUB_BITS
/// octaves whose top bit is at position SUB_BITS..64.
const BUCKETS: usize = SUB as usize + (SUB as usize) * (64 - SUB_BITS as usize);

/// The bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - u64::from(v.leading_zeros());
        let top = v >> (msb - u64::from(SUB_BITS));
        (SUB + (msb - u64::from(SUB_BITS)) * SUB + (top - SUB)) as usize
    }
}

/// The smallest value that lands in bucket `idx` (the quantile estimate
/// reported for it — deterministic and conservative).
fn bucket_floor(idx: usize) -> u64 {
    if idx < SUB as usize {
        idx as u64
    } else {
        let off = idx as u64 - SUB;
        (SUB + off % SUB) << (off / SUB)
    }
}

/// A log-linear histogram of `u64` observations (microseconds, rows, …).
///
/// Values 0–3 get exact buckets; above that, 4 sub-buckets per power of
/// two (so a reported quantile is at most ~25% below the true value).
/// Recording is two relaxed atomic adds; quantiles walk the 252 buckets.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if let Some(bucket) = self.buckets.get(bucket_index(v)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The lower bound of the bucket containing the `q`-quantile
    /// observation (`0.0 ≤ q ≤ 1.0`), or 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, clamped to the count.
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        bucket_floor(BUCKETS - 1)
    }

    /// Count, sum, and the p50/p90/p99 bucket floors in one snapshot.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A point-in-time histogram summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Median bucket floor.
    pub p50: u64,
    /// 90th-percentile bucket floor.
    pub p90: u64,
    /// 99th-percentile bucket floor.
    pub p99: u64,
}

/// One exported metric value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(u64),
    /// A histogram summary.
    Histogram(HistogramSummary),
}

#[derive(Debug, Clone)]
enum MetricHandle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics.
///
/// Handles are `Arc`s: register once (a brief mutex on a `Vec`, linear
/// scan by name), then record lock-free forever. [`MetricsRegistry::export`]
/// snapshots every metric **sorted by name**, so the serialized form never
/// depends on registration or update order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Vec<(String, MetricHandle)>>,
}

impl MetricsRegistry {
    /// A fresh empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn with_inner<T>(&self, f: impl FnOnce(&mut Vec<(String, MetricHandle)>) -> T) -> T {
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// Get or register the counter `name`. A name already registered as a
    /// different metric type yields a fresh unregistered handle (first
    /// registration wins the name).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.with_inner(|metrics| {
            for (n, handle) in metrics.iter() {
                if n == name {
                    if let MetricHandle::Counter(c) = handle {
                        return Arc::clone(c);
                    }
                    return Arc::new(Counter::new());
                }
            }
            let c = Arc::new(Counter::new());
            metrics.push((name.to_string(), MetricHandle::Counter(Arc::clone(&c))));
            c
        })
    }

    /// Get or register the gauge `name` (same name rules as
    /// [`MetricsRegistry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.with_inner(|metrics| {
            for (n, handle) in metrics.iter() {
                if n == name {
                    if let MetricHandle::Gauge(g) = handle {
                        return Arc::clone(g);
                    }
                    return Arc::new(Gauge::new());
                }
            }
            let g = Arc::new(Gauge::new());
            metrics.push((name.to_string(), MetricHandle::Gauge(Arc::clone(&g))));
            g
        })
    }

    /// Get or register the histogram `name` (same name rules as
    /// [`MetricsRegistry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.with_inner(|metrics| {
            for (n, handle) in metrics.iter() {
                if n == name {
                    if let MetricHandle::Histogram(h) = handle {
                        return Arc::clone(h);
                    }
                    return Arc::new(Histogram::new());
                }
            }
            let h = Arc::new(Histogram::new());
            metrics.push((name.to_string(), MetricHandle::Histogram(Arc::clone(&h))));
            h
        })
    }

    /// Snapshot every metric, **sorted by name**.
    pub fn export(&self) -> Vec<(String, MetricValue)> {
        let mut out: Vec<(String, MetricValue)> = self.with_inner(|metrics| {
            metrics
                .iter()
                .map(|(name, handle)| {
                    let value = match handle {
                        MetricHandle::Counter(c) => MetricValue::Counter(c.get()),
                        MetricHandle::Gauge(g) => MetricValue::Gauge(g.get()),
                        MetricHandle::Histogram(h) => MetricValue::Histogram(h.summary()),
                    };
                    (name.clone(), value)
                })
                .collect()
        });
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_count() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // saturates at zero
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn gauge_admission_cas_respects_the_cap() {
        let g = Gauge::new();
        assert!(g.try_inc_below(2));
        assert!(g.try_inc_below(2));
        assert!(!g.try_inc_below(2));
        assert_eq!(g.get(), 2);
        g.dec();
        assert!(g.try_inc_below(2));
        assert!(!g.try_inc_below(0));
    }

    #[test]
    fn bucket_index_and_floor_are_consistent() {
        // Exact small buckets.
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
        for v in [
            4u64,
            5,
            7,
            8,
            100,
            1_000,
            65_535,
            65_536,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "{v} -> {idx}");
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor({idx})={floor} > {v}");
            // The floor is within one sub-bucket (25%) of the value.
            assert!(floor >= v / 2, "floor({idx})={floor} too far below {v}");
            // Floors are the smallest member of their bucket.
            assert_eq!(bucket_index(floor), idx, "{v}");
        }
        // Bucket boundaries are monotone.
        let floors: Vec<u64> = (0..BUCKETS).map(bucket_floor).collect();
        assert!(floors.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn histogram_quantiles_walk_bucket_floors() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        let s = h.summary();
        // Quantile answers are bucket floors at most ~25% below the truth.
        assert!(s.p50 <= 50 && s.p50 >= 32, "{s:?}");
        assert!(s.p90 <= 90 && s.p90 >= 64, "{s:?}");
        assert!(s.p99 <= 99 && s.p99 >= 64, "{s:?}");
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99, "{s:?}");
        // Degenerate distribution: every quantile is the value's floor.
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(3);
        }
        let s = h.summary();
        assert_eq!((s.p50, s.p90, s.p99), (3, 3, 3));
    }

    #[test]
    fn registry_export_is_sorted_and_type_stable() {
        let reg = MetricsRegistry::new();
        let zebra = reg.counter("zebra");
        let alpha = reg.counter("alpha");
        let gauge = reg.gauge("middle");
        let hist = reg.histogram("latency_us");
        zebra.add(2);
        alpha.inc();
        gauge.set(9);
        hist.record(100);
        // Re-registration returns the same underlying metric.
        reg.counter("zebra").inc();
        assert_eq!(zebra.get(), 3);
        // A type-mismatched name gets a detached handle; the original wins.
        reg.gauge("zebra").set(99);
        assert_eq!(zebra.get(), 3);
        let export = reg.export();
        let names: Vec<&str> = export.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "latency_us", "middle", "zebra"]);
        assert_eq!(export[0].1, MetricValue::Counter(1));
        assert_eq!(export[2].1, MetricValue::Gauge(9));
        let MetricValue::Histogram(s) = export[1].1 else {
            panic!("latency_us must be a histogram");
        };
        assert_eq!((s.count, s.sum), (1, 100));
    }
}
