//! Query tracing: a span tree per query, collected through an explicit
//! [`TraceSink`] handle.
//!
//! ## Design constraints
//!
//! * **Zero cost when disabled.** A disabled sink is `None`; every method
//!   checks that one `Option` and returns. No allocation, no lock, no
//!   clock read.
//! * **Observation only.** The sink never feeds data back into execution:
//!   traced and untraced runs produce bit-identical answers.
//! * **Thread-count determinism.** Spans are opened and closed only by the
//!   query's orchestrating thread (routing, consensus, merge); engine
//!   worker threads only *add counters* to the innermost open span, one
//!   batched call per morsel. Counter sums are commutative and the morsel
//!   decomposition is fixed by `morsel_rows`, so the finished tree —
//!   names, nesting, counters, notes — is identical at every thread
//!   count. Only `elapsed_us` varies run to run.
//!
//! Counter and note keys are sorted when a span closes, so serializing a
//! trace is deterministic even though workers touch counters in arbitrary
//! order.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The largest duration in microseconds that `f64` (and therefore JSON)
/// can represent exactly: 2^53.
pub const MAX_EXACT_MICROS: u64 = 1 << 53;

/// Convert a [`Duration`] to whole microseconds, saturating at
/// [`MAX_EXACT_MICROS`] so the value survives an `f64` JSON round-trip
/// bit-identically. The naive `as_micros() as f64` silently loses
/// precision above 2^53 µs (~285 years — but a serialization layer must
/// not corrupt values silently at any magnitude).
pub fn saturating_micros(d: Duration) -> u64 {
    let us = d.as_micros();
    if us >= u128::from(MAX_EXACT_MICROS) {
        MAX_EXACT_MICROS
    } else {
        us as u64
    }
}

/// One finished span: a named region of query execution with its wall
/// time, counters, notes, and child spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Region name (`"parse"`, `"route"`, `"execute_parallel"`, …).
    pub name: String,
    /// Wall time, saturated via [`saturating_micros`]. The only
    /// nondeterministic field.
    pub elapsed_us: u64,
    /// Counter totals, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// String annotations, sorted by key.
    pub notes: Vec<(String, String)>,
    /// Nested child spans, in open order.
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// Look up a counter by key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Look up a note by key.
    pub fn note(&self, key: &str) -> Option<&str> {
        self.notes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A finished query trace: the root spans in open order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryTrace {
    /// Root spans (usually one per query phase).
    pub spans: Vec<TraceSpan>,
}

impl QueryTrace {
    /// True when nothing was recorded (e.g. the sink was disabled).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Depth-first search for the first span with `name`.
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        fn dfs<'a>(spans: &'a [TraceSpan], name: &str) -> Option<&'a TraceSpan> {
            for s in spans {
                if s.name == name {
                    return Some(s);
                }
                if let Some(hit) = dfs(&s.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        dfs(&self.spans, name)
    }

    /// A canonical fingerprint of everything deterministic in the trace:
    /// span names, nesting, counters, and notes — **not** wall times.
    /// Two runs of the same query at different thread counts must yield
    /// equal structures (`tests/session_differential.rs` enforces it).
    pub fn structure(&self) -> String {
        fn span(out: &mut String, s: &TraceSpan) {
            out.push_str(&s.name);
            out.push('{');
            for (i, (k, v)) in s.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push('=');
                out.push_str(&v.to_string());
            }
            out.push(';');
            for (i, (k, v)) in s.notes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push('=');
                out.push_str(v);
            }
            out.push('}');
            if !s.children.is_empty() {
                out.push('(');
                for (i, c) in s.children.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    span(out, c);
                }
                out.push(')');
            }
        }
        let mut out = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            span(&mut out, s);
        }
        out
    }

    /// Human-readable indented tree (the REPL's `\trace` output).
    pub fn render(&self) -> String {
        fn span(out: &mut String, s: &TraceSpan, depth: usize) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&s.name);
            out.push_str(&format!(" [{} us]", s.elapsed_us));
            for (k, v) in &s.counters {
                out.push_str(&format!(" {k}={v}"));
            }
            for (k, v) in &s.notes {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
            for c in &s.children {
                span(out, c, depth + 1);
            }
        }
        let mut out = String::new();
        for s in &self.spans {
            span(&mut out, s, 0);
        }
        out
    }
}

/// A span still being recorded.
#[derive(Debug)]
struct OpenSpan {
    name: String,
    started: Instant,
    counters: Vec<(String, u64)>,
    notes: Vec<(String, String)>,
    children: Vec<TraceSpan>,
}

impl OpenSpan {
    fn close(mut self) -> TraceSpan {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.notes.sort_by(|a, b| a.0.cmp(&b.0));
        TraceSpan {
            name: self.name,
            elapsed_us: saturating_micros(self.started.elapsed()),
            counters: self.counters,
            notes: self.notes,
            children: self.children,
        }
    }
}

#[derive(Debug, Default)]
struct TraceState {
    stack: Vec<OpenSpan>,
    roots: Vec<TraceSpan>,
}

impl TraceState {
    fn close_innermost(&mut self) {
        if let Some(open) = self.stack.pop() {
            let span = open.close();
            match self.stack.last_mut() {
                Some(parent) => parent.children.push(span),
                None => self.roots.push(span),
            }
        }
    }
}

/// The collection handle threaded through `EngineOptions`.
///
/// A **disabled** sink (the [`Default`]) carries no state: every call is a
/// single `Option` check. An **enabled** sink shares one span tree among
/// its clones, so cloning `EngineOptions` keeps writing into the same
/// trace. Equality is identity (like `CancelToken`): two enabled sinks are
/// equal only when they share state, and options equality stays cheap.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    state: Option<Arc<Mutex<TraceState>>>,
}

impl PartialEq for TraceSink {
    fn eq(&self, other: &Self) -> bool {
        match (&self.state, &other.state) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for TraceSink {}

impl TraceSink {
    /// The no-op sink: collects nothing, costs one `Option` check per
    /// call.
    pub fn disabled() -> TraceSink {
        TraceSink { state: None }
    }

    /// A collecting sink with a fresh, empty trace.
    pub fn enabled() -> TraceSink {
        TraceSink {
            state: Some(Arc::new(Mutex::new(TraceState::default()))),
        }
    }

    /// True when this sink collects. Instrumentation hot loops hoist this
    /// into a local so the disabled path stays branch-per-morsel, not
    /// branch-per-row.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, TraceState>> {
        let state = self.state.as_ref()?;
        match state.lock() {
            Ok(guard) => Some(guard),
            // A worker that panicked mid-add poisons the lock; the trace
            // is best-effort observability, so keep collecting.
            Err(poisoned) => Some(poisoned.into_inner()),
        }
    }

    /// Open a span; it closes (and is attached to its parent) when the
    /// returned guard drops. Spans must nest: open/close only from the
    /// query's orchestrating thread.
    pub fn span(&self, name: &str) -> SpanGuard {
        if let Some(mut state) = self.lock() {
            state.stack.push(OpenSpan {
                name: name.to_string(),
                started: Instant::now(),
                counters: Vec::new(),
                notes: Vec::new(),
                children: Vec::new(),
            });
            SpanGuard {
                state: self.state.clone(),
            }
        } else {
            SpanGuard { state: None }
        }
    }

    /// Add `n` to counter `key` on the innermost open span. Worker threads
    /// may call this concurrently; sums are order-independent.
    pub fn add(&self, key: &str, n: u64) {
        self.add_counts(&[(key, n)]);
    }

    /// Batch-add several counters under one lock (one call per morsel).
    /// Counts with no open span are dropped — instrumented regions always
    /// run inside a span.
    pub fn add_counts(&self, counts: &[(&str, u64)]) {
        let Some(mut state) = self.lock() else {
            return;
        };
        let Some(open) = state.stack.last_mut() else {
            return;
        };
        for &(key, n) in counts {
            match open.counters.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = slot.1.saturating_add(n),
                None => open.counters.push((key.to_string(), n)),
            }
        }
    }

    /// Attach a string annotation to the innermost open span (last write
    /// per key wins).
    pub fn note(&self, key: &str, value: &str) {
        let Some(mut state) = self.lock() else {
            return;
        };
        let Some(open) = state.stack.last_mut() else {
            return;
        };
        match open.notes.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value.to_string(),
            None => open.notes.push((key.to_string(), value.to_string())),
        }
    }

    /// Close any spans still open and return the finished trace. The sink
    /// is empty afterwards (reusable for the next query). Disabled sinks
    /// return an empty trace.
    pub fn finish(&self) -> QueryTrace {
        let Some(mut state) = self.lock() else {
            return QueryTrace::default();
        };
        while !state.stack.is_empty() {
            state.close_innermost();
        }
        QueryTrace {
            spans: std::mem::take(&mut state.roots),
        }
    }
}

/// RAII guard for an open span: closes it on drop.
#[derive(Debug)]
pub struct SpanGuard {
    state: Option<Arc<Mutex<TraceState>>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(state) = self.state.as_ref() else {
            return;
        };
        let mut state = match state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.close_innermost();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_micros_is_exact_below_the_cap_and_saturates_above() {
        assert_eq!(saturating_micros(Duration::from_micros(0)), 0);
        assert_eq!(saturating_micros(Duration::from_micros(1234)), 1234);
        let cap = MAX_EXACT_MICROS;
        assert_eq!(saturating_micros(Duration::from_micros(cap - 1)), cap - 1);
        assert_eq!(saturating_micros(Duration::from_micros(cap)), cap);
        // Above the cap (where f64 would silently round), saturate.
        assert_eq!(saturating_micros(Duration::from_micros(cap + 1)), cap);
        assert_eq!(saturating_micros(Duration::from_secs(u64::MAX / 2)), cap);
        // The cap itself survives an f64 round-trip bit-identically.
        let through_f64 = (cap as f64) as u64;
        assert_eq!(through_f64, cap);
        // …and one past it would not (2^53 + 1 is not representable).
        assert_ne!(((cap + 1) as f64) as u64, cap + 1);
    }

    #[test]
    fn disabled_sink_collects_nothing() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        {
            let _s = sink.span("anything");
            sink.add("rows", 5);
            sink.note("k", "v");
        }
        assert!(sink.finish().is_empty());
        assert_eq!(sink, TraceSink::default());
    }

    #[test]
    fn spans_nest_and_counters_sum() {
        let sink = TraceSink::enabled();
        {
            let _q = sink.span("query");
            {
                let _e = sink.span("execute");
                sink.add_counts(&[("rows", 10), ("morsels", 1)]);
                sink.add_counts(&[("rows", 7), ("morsels", 1)]);
                sink.note("engine", "parallel");
            }
            sink.add("merged", 3);
        }
        let trace = sink.finish();
        assert_eq!(trace.spans.len(), 1);
        let q = trace.find("query").expect("query span");
        assert_eq!(q.counter("merged"), Some(3));
        let e = trace.find("execute").expect("execute span");
        // Keys sorted on close; sums accumulated across batched adds.
        assert_eq!(
            e.counters,
            vec![("morsels".to_string(), 2), ("rows".to_string(), 17)]
        );
        assert_eq!(e.note("engine"), Some("parallel"));
        // The sink is drained and reusable.
        assert!(sink.finish().is_empty());
    }

    #[test]
    fn structure_ignores_wall_time() {
        let build = || {
            let sink = TraceSink::enabled();
            {
                let _q = sink.span("query");
                let _e = sink.span("execute");
                sink.add("rows", 42);
            }
            sink.finish()
        };
        let (a, b) = (build(), build());
        assert_eq!(a.structure(), b.structure());
        assert_eq!(a.structure(), "query{;}(execute{rows=42;})");
    }

    #[test]
    fn finish_closes_dangling_spans_and_render_indents() {
        let sink = TraceSink::enabled();
        let guard = sink.span("outer");
        sink.add("n", 1);
        let trace = sink.finish(); // outer still open: finish closes it
        drop(guard); // closing an already-drained sink is a no-op
        assert_eq!(trace.spans.len(), 1);
        let rendered = trace.render();
        assert!(rendered.starts_with("outer ["), "{rendered}");
        assert!(rendered.contains("n=1"), "{rendered}");
    }

    #[test]
    fn clones_share_state_and_equality_is_identity() {
        let sink = TraceSink::enabled();
        let clone = sink.clone();
        assert_eq!(sink, clone);
        assert_ne!(sink, TraceSink::enabled());
        assert_ne!(sink, TraceSink::disabled());
        {
            let _s = sink.span("shared");
            clone.add("via_clone", 2);
        }
        let trace = sink.finish();
        assert_eq!(
            trace.find("shared").and_then(|s| s.counter("via_clone")),
            Some(2)
        );
    }
}
