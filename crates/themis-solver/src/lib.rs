//! # themis-solver
//!
//! Numeric substrate for Themis: all of the linear algebra and constrained
//! optimization the debiasing algorithms need, implemented from scratch so
//! the workspace has no heavyweight numeric dependencies.
//!
//! * [`matrix`] — dense row-major matrices and basic BLAS-level ops,
//! * [`mod@lstsq`] — Householder-QR least squares with a ridge fallback,
//! * [`mod@nnls`] — Lawson–Hanson non-negative least squares (used by the
//!   constrained linear-regression reweighter, §4.1.1 of the paper),
//! * [`simplex`] — Euclidean projection onto the probability simplex,
//! * [`constrained`] — projected-gradient / augmented-Lagrangian maximum
//!   likelihood over products of simplices with linear equality constraints
//!   (used by the Bayesian-network parameter learner, §4.2.3 and §5.2).

#![forbid(unsafe_code)]

pub mod constrained;
pub mod lstsq;
pub mod matrix;
pub mod nnls;
pub mod simplex;

pub use constrained::{ConstrainedMle, LinearConstraint, MleReport};
pub use lstsq::lstsq;
pub use matrix::DenseMatrix;
pub use nnls::{nnls, NnlsReport};
pub use simplex::project_simplex;
