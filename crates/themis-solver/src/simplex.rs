//! Euclidean projection onto the probability simplex.
//!
//! Implements the sort-based algorithm of Held/Wolfe/Crowder (popularized by
//! Duchi et al., ICML 2008): the projection of `v` onto
//! `{x : x ≥ 0, Σx = s}` is `x_i = max(v_i − τ, 0)` for the unique threshold
//! `τ` that makes the result sum to `s`.

/// Project `v` onto the simplex `{x ≥ 0, Σ x = 1}` in place.
pub fn project_simplex(v: &mut [f64]) {
    project_scaled_simplex(v, 1.0);
}

/// Project `v` onto `{x ≥ 0, Σ x = s}` in place.
///
/// # Panics
/// Panics if `s < 0` or `v` is empty.
pub fn project_scaled_simplex(v: &mut [f64], s: f64) {
    assert!(s >= 0.0, "simplex scale must be non-negative");
    assert!(!v.is_empty(), "cannot project an empty vector");
    let n = v.len();
    let mut sorted = v.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));

    // Find rho = max{ j : sorted[j] - (cumsum[j] - s)/(j+1) > 0 }.
    let mut cumsum = 0.0;
    let mut tau = 0.0;
    let mut found = false;
    for (j, &sj) in sorted.iter().enumerate() {
        cumsum += sj;
        let t = (cumsum - s) / (j + 1) as f64;
        if sj - t > 0.0 {
            tau = t;
            found = true;
        }
    }
    if !found {
        // All mass collapses onto the largest coordinate (happens when every
        // entry is very negative); fall back to a uniform point.
        let u = s / n as f64;
        v.iter_mut().for_each(|x| *x = u);
        return;
    }
    v.iter_mut().for_each(|x| *x = (*x - tau).max(0.0));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_on_simplex(v: &[f64], s: f64) {
        let sum: f64 = v.iter().sum();
        assert!((sum - s).abs() < 1e-9, "sum {sum} != {s}");
        assert!(v.iter().all(|&x| x >= 0.0), "negative coordinate in {v:?}");
    }

    #[test]
    fn point_on_simplex_is_fixed() {
        let mut v = vec![0.2, 0.3, 0.5];
        project_simplex(&mut v);
        assert!((v[0] - 0.2).abs() < 1e-12);
        assert!((v[1] - 0.3).abs() < 1e-12);
        assert!((v[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_shift_is_removed() {
        // Projecting v + c*1 equals projecting v.
        let mut a = vec![0.1, 0.4, 0.5];
        let mut b = vec![10.1, 10.4, 10.5];
        project_simplex(&mut a);
        project_simplex(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_coordinates_clamp() {
        let mut v = vec![-1.0, 2.0];
        project_simplex(&mut v);
        assert_on_simplex(&v, 1.0);
        assert_eq!(v[0], 0.0);
        assert!((v[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_simplex() {
        let mut v = vec![3.0, 1.0];
        project_scaled_simplex(&mut v, 2.0);
        assert_on_simplex(&v, 2.0);
        assert!(v[0] > v[1]);
    }

    #[test]
    fn all_negative_input_gives_valid_point() {
        let mut v = vec![-5.0, -9.0, -7.0];
        project_simplex(&mut v);
        assert_on_simplex(&v, 1.0);
    }

    #[test]
    fn single_coordinate() {
        let mut v = vec![0.37];
        project_simplex(&mut v);
        assert_eq!(v, vec![1.0]);
    }
}
