//! Non-negative least squares via the Lawson–Hanson active-set method.
//!
//! Themis' linear-regression reweighter (§4.1.1) departs from standard
//! solving by constraining the coefficient vector β to be non-negative so
//! every sample tuple receives weight `w(t) = β · t^{0/1} ≥ 0`. This module
//! implements the classic Lawson–Hanson algorithm: grow a passive set of
//! unconstrained coordinates, solve the restricted least-squares
//! subproblem, and step back towards feasibility whenever the subproblem
//! goes negative.

use crate::lstsq::lstsq;
use crate::matrix::{norm_inf, DenseMatrix};

/// Convergence information from an NNLS solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NnlsReport {
    /// Outer iterations performed.
    pub iterations: usize,
    /// Final maximum dual value over the active set (KKT optimality gap;
    /// ≤ tolerance at optimality).
    pub optimality_gap: f64,
    /// Whether the solver converged before the iteration cap.
    pub converged: bool,
}

/// Maximum outer iterations, scaled by problem size.
fn max_iterations(n: usize) -> usize {
    3 * n.max(10)
}

/// Solve `min_x ‖Ax − b‖₂ subject to x ≥ 0`.
///
/// Returns the solution together with a convergence report.
///
/// # Panics
/// Panics if `b.len() != a.rows()`.
pub fn nnls(a: &DenseMatrix, b: &[f64]) -> (Vec<f64>, NnlsReport) {
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let n = a.cols();
    let tol = 1e-9 * norm_inf(b).max(1.0) * (a.rows().max(1) as f64).sqrt();

    let mut x = vec![0.0; n];
    // passive[i]: coordinate i is allowed to move freely.
    let mut passive = vec![false; n];
    let mut iterations = 0;
    let cap = max_iterations(n);

    loop {
        // Dual: w = Aᵀ(b − Ax). Optimality when w_i ≤ tol for all active i.
        let mut resid = b.to_vec();
        let ax = a.matvec(&x);
        for (r, axi) in resid.iter_mut().zip(ax) {
            *r -= axi;
        }
        let w = a.matvec_t(&resid);

        let mut best: Option<(usize, f64)> = None;
        for i in 0..n {
            if !passive[i] && w[i] > tol
                && best.is_none_or(|(_, bw)| w[i] > bw) {
                    best = Some((i, w[i]));
                }
        }
        let gap = (0..n)
            .filter(|&i| !passive[i])
            .fold(0.0f64, |m, i| m.max(w[i]));

        let Some((enter, _)) = best else {
            return (
                x,
                NnlsReport {
                    iterations,
                    optimality_gap: gap,
                    converged: true,
                },
            );
        };
        if iterations >= cap {
            return (
                x,
                NnlsReport {
                    iterations,
                    optimality_gap: gap,
                    converged: false,
                },
            );
        }
        iterations += 1;
        passive[enter] = true;

        // Inner loop: solve the passive-set subproblem; if any passive
        // coordinate would go non-positive, interpolate back to the boundary
        // and demote the coordinates that hit zero.
        loop {
            let p_idx: Vec<usize> = (0..n).filter(|&i| passive[i]).collect();
            let ap = a.select_columns(&p_idx);
            let z = lstsq(&ap, b);

            if z.iter().all(|&zi| zi > tol.min(1e-12)) {
                for (&i, &zi) in p_idx.iter().zip(&z) {
                    x[i] = zi;
                }
                for i in 0..n {
                    if !passive[i] {
                        x[i] = 0.0;
                    }
                }
                break;
            }

            // Step length to the first boundary crossing among coordinates
            // headed negative.
            let mut alpha = f64::INFINITY;
            for (&i, &zi) in p_idx.iter().zip(&z) {
                if zi <= tol.min(1e-12) {
                    let denom = x[i] - zi;
                    if denom > 0.0 {
                        alpha = alpha.min(x[i] / denom);
                    } else {
                        alpha = 0.0;
                    }
                }
            }
            let alpha = alpha.clamp(0.0, 1.0);
            for (&i, &zi) in p_idx.iter().zip(&z) {
                x[i] += alpha * (zi - x[i]);
            }
            // Demote coordinates that reached (numerical) zero.
            let mut demoted = false;
            for &i in &p_idx {
                if passive[i] && x[i] <= tol.clamp(1e-15, 1e-12) {
                    x[i] = 0.0;
                    passive[i] = false;
                    demoted = true;
                }
            }
            if !demoted {
                // Numerical safety: force the entering variable out to avoid
                // cycling, then re-enter the outer loop.
                passive[enter] = false;
                x[enter] = 0.0;
                break;
            }
            if passive.iter().all(|&p| !p) {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_optimum_is_returned_when_nonnegative() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let (x, rep) = nnls(&a, &[1.0, 2.0, 3.0]);
        assert!(rep.converged);
        assert!((x[0] - 1.0).abs() < 1e-8);
        assert!((x[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn clamps_negative_coordinates() {
        // Unconstrained solution is x = [-1]; NNLS must return 0.
        let a = DenseMatrix::from_rows(&[vec![1.0]]);
        let (x, rep) = nnls(&a, &[-1.0]);
        assert!(rep.converged);
        assert_eq!(x, vec![0.0]);
    }

    #[test]
    fn mixed_signs_partial_clamp() {
        // b prefers x0 large negative, x1 positive; x0 clamps to 0 and x1
        // absorbs the fit on its column.
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let (x, rep) = nnls(&a, &[-5.0, 4.0]);
        assert!(rep.converged);
        assert_eq!(x[0], 0.0);
        assert!((x[1] - 4.0).abs() < 1e-8);
    }

    #[test]
    fn kkt_conditions_hold() {
        let a = DenseMatrix::from_rows(&[
            vec![0.5, 2.0, 1.0],
            vec![2.0, 0.5, 1.0],
            vec![1.0, 1.0, 2.0],
            vec![2.0, 1.0, 0.0],
        ]);
        let b = vec![1.0, -1.0, 2.0, 0.5];
        let (x, rep) = nnls(&a, &b);
        assert!(rep.converged);
        assert!(x.iter().all(|&v| v >= 0.0));
        // KKT: gradient of 0.5‖Ax-b‖² is g = Aᵀ(Ax−b); g_i ≈ 0 where x_i>0,
        // g_i ≥ 0 where x_i = 0.
        let mut r = a.matvec(&x);
        for (ri, &bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        let g = a.matvec_t(&r);
        for (i, (&xi, &gi)) in x.iter().zip(&g).enumerate() {
            if xi > 1e-10 {
                assert!(gi.abs() < 1e-6, "coordinate {i}: x={xi}, g={gi}");
            } else {
                assert!(gi > -1e-6, "coordinate {i}: active but g={gi} < 0");
            }
        }
    }

    #[test]
    fn handles_wide_zero_solution() {
        // b orthogonal-ish to all columns with negative correlation: all
        // coordinates stay at zero.
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![1.0, 2.0]]);
        let (x, rep) = nnls(&a, &[-1.0, -1.0]);
        assert!(rep.converged);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}
