//! Dense row-major matrices with the handful of operations the Themis
//! solvers need.

use std::fmt;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *o = dot(row, x);
        }
        out
    }

    /// Transposed matrix–vector product `Aᵀ y`.
    ///
    /// # Panics
    /// Panics if `y.len() != self.rows()`.
    pub fn matvec_t(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &yi) in y.iter().enumerate() {
            if yi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * yi;
            }
        }
        out
    }

    /// Matrix–matrix product `A B`.
    ///
    /// # Panics
    /// Panics if inner dimensions differ.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Extract the sub-matrix with the given columns, preserving order.
    pub fn select_columns(&self, cols: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, cols.len());
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            for (d, &c) in dst.iter_mut().zip(cols) {
                *d = src[c];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// `y ← y + alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]])
    }

    #[test]
    fn indexing_is_row_major() {
        let m = a();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(2, 0)], 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn matvec_works() {
        let m = a();
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
    }

    #[test]
    fn matvec_t_is_transpose_product() {
        let m = a();
        let y = vec![1.0, 0.0, 2.0];
        assert_eq!(m.matvec_t(&y), m.transpose().matvec(&y));
    }

    #[test]
    fn matmul_against_hand_computed() {
        let m = a();
        let b = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(m.matmul(&b), m);
        let sq = m.transpose().matmul(&m);
        assert_eq!(sq[(0, 0)], 35.0);
        assert_eq!(sq[(0, 1)], 44.0);
        assert_eq!(sq[(1, 1)], 56.0);
    }

    #[test]
    fn select_columns_preserves_order() {
        let m = a();
        let s = m.select_columns(&[1]);
        assert_eq!(s.cols(), 1);
        assert_eq!(s[(2, 0)], 6.0);
    }

    #[test]
    fn push_row_grows() {
        let mut m = a();
        m.push_row(&[7.0, 8.0]);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.row(3), &[7.0, 8.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let m = a();
        let i = DenseMatrix::identity(2);
        assert_eq!(m.matmul(&i), m);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }
}
