//! Constrained maximum likelihood over products of probability simplices.
//!
//! This is the optimization kernel behind Themis' Bayesian-network
//! parameter learning (Eq. 2 of the paper, simplified per §5.2). After the
//! per-factor simplification, learning the conditional probability table of
//! one node reduces to:
//!
//! ```text
//! minimize   −Σ_k counts_k · log θ_k
//! subject to each block of θ lies on the probability simplex
//!            Σ_k a_{j,k} θ_k = b_j   for each aggregate constraint j
//! ```
//!
//! where a *block* is the CPT column for one parent configuration. With no
//! constraints the solution is the classic normalized-count MLE (closed
//! form). With constraints we run an augmented-Lagrangian outer loop around
//! a projected-gradient inner loop; projection onto the product of simplices
//! is per-block [`crate::simplex::project_simplex`].

use crate::simplex::project_simplex;

/// One linear equality constraint `Σ terms.coef · θ[terms.idx] = rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearConstraint {
    /// `(variable index, coefficient)` pairs; indices are into the flat θ.
    pub terms: Vec<(usize, f64)>,
    /// Right-hand side.
    pub rhs: f64,
}

impl LinearConstraint {
    /// Evaluate the residual `a·θ − b`.
    pub fn residual(&self, theta: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|&(i, c)| c * theta[i])
            .sum::<f64>()
            - self.rhs
    }
}

/// Solver report.
#[derive(Debug, Clone, PartialEq)]
pub struct MleReport {
    /// Outer (multiplier) iterations.
    pub outer_iterations: usize,
    /// Total inner gradient steps.
    pub inner_iterations: usize,
    /// Final `‖g‖∞` over the constraints.
    pub feasibility: f64,
    /// Whether the feasibility tolerance was met.
    pub converged: bool,
}

/// Options for the augmented-Lagrangian solve.
#[derive(Debug, Clone)]
pub struct MleOptions {
    /// Feasibility tolerance on `‖g‖∞`.
    pub tol: f64,
    /// Maximum outer iterations.
    pub max_outer: usize,
    /// Maximum inner projected-gradient steps per outer iteration.
    pub max_inner: usize,
    /// Initial penalty parameter ρ.
    pub rho: f64,
}

impl Default for MleOptions {
    fn default() -> Self {
        Self {
            tol: 1e-6,
            max_outer: 40,
            max_inner: 300,
            rho: 10.0,
        }
    }
}

/// A constrained MLE problem over consecutive simplex blocks.
#[derive(Debug, Clone)]
pub struct ConstrainedMle {
    /// Sizes of the consecutive simplex blocks; `Σ block_sizes` is the
    /// number of variables.
    pub block_sizes: Vec<usize>,
    /// Non-negative observation counts aligned with θ.
    pub counts: Vec<f64>,
    /// Linear equality constraints.
    pub constraints: Vec<LinearConstraint>,
    /// Solver options.
    pub options: MleOptions,
}

/// Floor used inside `log` to keep the objective finite at the boundary.
const THETA_FLOOR: f64 = 1e-12;

impl ConstrainedMle {
    /// Build a problem with default options.
    pub fn new(
        block_sizes: Vec<usize>,
        counts: Vec<f64>,
        constraints: Vec<LinearConstraint>,
    ) -> Self {
        let total: usize = block_sizes.iter().sum();
        assert_eq!(counts.len(), total, "counts must align with blocks");
        assert!(
            counts.iter().all(|&c| c >= 0.0 && c.is_finite()),
            "counts must be finite and non-negative"
        );
        for c in &constraints {
            for &(i, _) in &c.terms {
                assert!(i < total, "constraint index {i} out of range");
            }
        }
        Self {
            block_sizes,
            counts,
            constraints,
            options: MleOptions::default(),
        }
    }

    /// Solve the problem. The returned θ lies on the product of simplices;
    /// when the constraints are feasible the report's `converged` is true
    /// and `feasibility ≤ tol`.
    pub fn solve(&self) -> (Vec<f64>, MleReport) {
        let mut theta = self.smoothed_mle();
        if self.constraints.is_empty() {
            // Closed form: per-block normalized counts. Use the *unsmoothed*
            // normalization when a block has any observations.
            let mut offset = 0;
            for &size in &self.block_sizes {
                let block = &mut theta[offset..offset + size];
                let c = &self.counts[offset..offset + size];
                let sum: f64 = c.iter().sum();
                if sum > 0.0 {
                    for (t, &ci) in block.iter_mut().zip(c) {
                        *t = ci / sum;
                    }
                }
                offset += size;
            }
            return (
                theta,
                MleReport {
                    outer_iterations: 0,
                    inner_iterations: 0,
                    feasibility: 0.0,
                    converged: true,
                },
            );
        }

        // Normalize counts so gradient magnitudes are scale free.
        let total_count: f64 = self.counts.iter().sum::<f64>().max(1.0);
        let weights: Vec<f64> = self.counts.iter().map(|c| c / total_count).collect();

        let m = self.constraints.len();
        let mut lambda = vec![0.0; m];
        let mut rho = self.options.rho;
        let mut inner_total = 0;
        let mut feas = f64::INFINITY;

        for outer in 0..self.options.max_outer {
            inner_total += self.minimize_inner(&mut theta, &weights, &lambda, rho);
            let g: Vec<f64> = self
                .constraints
                .iter()
                .map(|c| c.residual(&theta))
                .collect();
            let new_feas = g.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
            if new_feas < self.options.tol {
                return (
                    theta,
                    MleReport {
                        outer_iterations: outer + 1,
                        inner_iterations: inner_total,
                        feasibility: new_feas,
                        converged: true,
                    },
                );
            }
            for (l, &gi) in lambda.iter_mut().zip(&g) {
                *l += rho * gi;
            }
            if new_feas > 0.5 * feas {
                rho = (rho * 4.0).min(1e8);
            }
            feas = new_feas;
        }
        (
            theta,
            MleReport {
                outer_iterations: self.options.max_outer,
                inner_iterations: inner_total,
                feasibility: feas,
                converged: feas < self.options.tol,
            },
        )
    }

    /// Additive-smoothed per-block MLE used as the starting point (strictly
    /// positive).
    fn smoothed_mle(&self) -> Vec<f64> {
        let mut theta = Vec::with_capacity(self.counts.len());
        let mut offset = 0;
        for &size in &self.block_sizes {
            let c = &self.counts[offset..offset + size];
            let sum: f64 = c.iter().sum();
            for &ci in c {
                theta.push((ci + 1.0) / (sum + size as f64));
            }
            offset += size;
        }
        theta
    }

    /// Mirror-descent (multiplicative update) minimization of the augmented
    /// Lagrangian with fixed multipliers. The entropy geometry keeps every
    /// coordinate strictly positive, which is exactly what the
    /// log-likelihood objective wants. Returns the number of steps taken.
    fn minimize_inner(
        &self,
        theta: &mut Vec<f64>,
        weights: &[f64],
        lambda: &[f64],
        rho: f64,
    ) -> usize {
        let mut step = 0.5;
        let mut value = self.augmented(theta, weights, lambda, rho);
        let mut steps = 0;
        for _ in 0..self.options.max_inner {
            steps += 1;
            let grad = self.augmented_grad(theta, weights, lambda, rho);
            // Backtracking line search over the mirror step
            // θ ← θ·exp(−η·g), renormalized per block.
            let mut improved = false;
            for _ in 0..40 {
                let mut cand = theta.clone();
                for (c, &g) in cand.iter_mut().zip(&grad) {
                    let e = (-step * g).clamp(-30.0, 30.0);
                    *c = (*c).max(THETA_FLOOR) * e.exp();
                }
                self.renormalize_blocks(&mut cand);
                let cand_value = self.augmented(&cand, weights, lambda, rho);
                if cand_value < value - 1e-14 * value.abs().max(1.0) {
                    *theta = cand;
                    value = cand_value;
                    improved = true;
                    step *= 1.5;
                    break;
                }
                step *= 0.5;
                if step < 1e-16 {
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        steps
    }

    /// Augmented Lagrangian value.
    fn augmented(&self, theta: &[f64], weights: &[f64], lambda: &[f64], rho: f64) -> f64 {
        let mut v = 0.0;
        for (&w, &t) in weights.iter().zip(theta) {
            if w > 0.0 {
                v -= w * t.max(THETA_FLOOR).ln();
            }
        }
        for (c, &l) in self.constraints.iter().zip(lambda) {
            let g = c.residual(theta);
            v += l * g + 0.5 * rho * g * g;
        }
        v
    }

    /// Gradient of the augmented Lagrangian.
    fn augmented_grad(&self, theta: &[f64], weights: &[f64], lambda: &[f64], rho: f64) -> Vec<f64> {
        let mut grad = vec![0.0; theta.len()];
        for ((g, &w), &t) in grad.iter_mut().zip(weights).zip(theta) {
            if w > 0.0 {
                *g = -w / t.max(THETA_FLOOR);
            }
        }
        for (c, &l) in self.constraints.iter().zip(lambda) {
            let coef = l + rho * c.residual(theta);
            for &(i, a) in &c.terms {
                grad[i] += coef * a;
            }
        }
        grad
    }

    /// Renormalize each block to sum 1, projecting onto the simplex if the
    /// block has degenerated.
    fn renormalize_blocks(&self, theta: &mut [f64]) {
        let mut offset = 0;
        for &size in &self.block_sizes {
            let block = &mut theta[offset..offset + size];
            let sum: f64 = block.iter().sum();
            if sum > THETA_FLOOR && sum.is_finite() {
                block.iter_mut().for_each(|t| *t /= sum);
            } else {
                project_simplex(block);
            }
            offset += size;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_blocks_on_simplex(theta: &[f64], blocks: &[usize]) {
        let mut offset = 0;
        for &size in blocks {
            let sum: f64 = theta[offset..offset + size].iter().sum();
            assert!((sum - 1.0).abs() < 1e-8, "block sum {sum}");
            assert!(theta[offset..offset + size].iter().all(|&t| t >= 0.0));
            offset += size;
        }
    }

    #[test]
    fn unconstrained_is_normalized_counts() {
        let p = ConstrainedMle::new(vec![3], vec![2.0, 6.0, 2.0], vec![]);
        let (theta, rep) = p.solve();
        assert!(rep.converged);
        assert!((theta[0] - 0.2).abs() < 1e-12);
        assert!((theta[1] - 0.6).abs() < 1e-12);
        assert!((theta[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn unconstrained_zero_block_is_uniformish() {
        let p = ConstrainedMle::new(vec![2, 2], vec![3.0, 1.0, 0.0, 0.0], vec![]);
        let (theta, _) = p.solve();
        assert!((theta[0] - 0.75).abs() < 1e-12);
        // Empty block falls back to the smoothed (uniform) estimate.
        assert!((theta[2] - 0.5).abs() < 1e-12);
        assert!((theta[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pinned_coordinate_redistributes_proportionally() {
        // maximize 4 log θ0 + 4 log θ1 + 2 log θ2 s.t. θ0 = 0.5.
        // Remaining mass 0.5 splits ∝ (4, 2) → (1/3, 1/6).
        let p = ConstrainedMle::new(
            vec![3],
            vec![4.0, 4.0, 2.0],
            vec![LinearConstraint {
                terms: vec![(0, 1.0)],
                rhs: 0.5,
            }],
        );
        let (theta, rep) = p.solve();
        assert!(rep.converged, "report: {rep:?}");
        assert_blocks_on_simplex(&theta, &[3]);
        assert!((theta[0] - 0.5).abs() < 1e-5, "{theta:?}");
        assert!((theta[1] - 1.0 / 3.0).abs() < 1e-3, "{theta:?}");
        assert!((theta[2] - 1.0 / 6.0).abs() < 1e-3, "{theta:?}");
    }

    #[test]
    fn cross_block_constraint_is_satisfied() {
        // Two 2-value blocks; constrain 0.5·θ0 + 0.5·θ2 = 0.7 (a marginal
        // constraint with equal ancestor mass on each config).
        let p = ConstrainedMle::new(
            vec![2, 2],
            vec![1.0, 1.0, 1.0, 1.0],
            vec![LinearConstraint {
                terms: vec![(0, 0.5), (2, 0.5)],
                rhs: 0.7,
            }],
        );
        let (theta, rep) = p.solve();
        assert!(rep.converged, "report: {rep:?}");
        assert_blocks_on_simplex(&theta, &[2, 2]);
        let lhs = 0.5 * theta[0] + 0.5 * theta[2];
        assert!((lhs - 0.7).abs() < 1e-5, "{theta:?}");
        // Symmetric problem: both blocks should move identically.
        assert!((theta[0] - theta[2]).abs() < 1e-4);
    }

    #[test]
    fn infeasible_constraint_reports_not_converged() {
        // θ0 = 1.5 is impossible on a simplex.
        let p = ConstrainedMle::new(
            vec![2],
            vec![1.0, 1.0],
            vec![LinearConstraint {
                terms: vec![(0, 1.0)],
                rhs: 1.5,
            }],
        );
        let (theta, rep) = p.solve();
        assert!(!rep.converged);
        assert_blocks_on_simplex(&theta, &[2]);
        // Best effort: θ0 pushed towards 1.
        assert!(theta[0] > 0.9);
    }

    #[test]
    fn zero_count_coordinate_can_receive_mass_from_constraint() {
        // The sample never saw value 1, but an aggregate says it has
        // probability 0.25 — the open-world case the BN handles.
        let p = ConstrainedMle::new(
            vec![2],
            vec![10.0, 0.0],
            vec![LinearConstraint {
                terms: vec![(1, 1.0)],
                rhs: 0.25,
            }],
        );
        let (theta, rep) = p.solve();
        assert!(rep.converged, "report: {rep:?}");
        assert!((theta[1] - 0.25).abs() < 1e-5);
        assert!((theta[0] - 0.75).abs() < 1e-5);
    }
}
