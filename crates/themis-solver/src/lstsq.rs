//! Least squares via Householder QR.
//!
//! Solves `min_x ‖Ax − b‖₂` for a tall (or square) matrix `A`. When `A` is
//! (numerically) rank deficient the plain QR back-substitution would divide
//! by a tiny pivot; in that case we fall back to a ridge-regularized normal
//! equation solve, which is well-posed and adequate for the reweighting use
//! case (the paper's aggregate design matrices are occasionally collinear,
//! e.g. when two aggregates cover the same attribute set).

use crate::matrix::DenseMatrix;

/// Relative pivot threshold below which a column is treated as dependent.
const RANK_TOL: f64 = 1e-10;

/// Solve `min_x ‖Ax − b‖₂`.
///
/// Over- and exactly-determined systems use Householder QR; underdetermined
/// or rank-deficient systems fall back to a ridge-regularized normal
/// equation solve (returning a near-minimum-norm solution).
///
/// # Panics
/// Panics if `b.len() != a.rows()`.
pub fn lstsq(a: &DenseMatrix, b: &[f64]) -> Vec<f64> {
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    if a.rows() < a.cols() {
        return ridge_solve(a, b);
    }
    match qr_solve(a, b) {
        Some(x) => x,
        None => ridge_solve(a, b),
    }
}

/// Householder QR solve. Returns `None` if a pivot is too small relative to
/// the matrix scale (rank deficiency).
fn qr_solve(a: &DenseMatrix, b: &[f64]) -> Option<Vec<f64>> {
    let m = a.rows();
    let n = a.cols();
    let mut r = a.clone();
    let mut qtb = b.to_vec();
    let scale = a.frobenius_norm().max(f64::MIN_POSITIVE);

    for k in 0..n {
        // Householder vector for column k below the diagonal.
        let mut norm = 0.0;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm < RANK_TOL * scale {
            return None;
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        // v = x - alpha e1 with x the trailing column; store v normalized so
        // v[k] = 1 implicitly by dividing through.
        let v0 = r[(k, k)] - alpha;
        let mut v = vec![0.0; m - k];
        // themis-lint: allow(no-panic-in-libs) reason=k < m throughout the factorization loop, so v has at least one element
        v[0] = v0;
        for i in (k + 1)..m {
            v[i - k] = r[(i, k)];
        }
        let vtv = v.iter().map(|x| x * x).sum::<f64>();
        if vtv < f64::MIN_POSITIVE {
            return None;
        }

        // Apply H = I - 2 v vᵀ / vᵀv to the trailing submatrix and to qtb.
        for j in k..n {
            let mut proj = 0.0;
            for i in k..m {
                proj += v[i - k] * r[(i, j)];
            }
            let coef = 2.0 * proj / vtv;
            for i in k..m {
                r[(i, j)] -= coef * v[i - k];
            }
        }
        let mut proj = 0.0;
        for i in k..m {
            proj += v[i - k] * qtb[i];
        }
        let coef = 2.0 * proj / vtv;
        for i in k..m {
            qtb[i] -= coef * v[i - k];
        }
        r[(k, k)] = alpha;
    }

    // Back substitution on the upper-triangular R (top n×n block).
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let mut s = qtb[k];
        for j in (k + 1)..n {
            s -= r[(k, j)] * x[j];
        }
        let d = r[(k, k)];
        if d.abs() < RANK_TOL * scale {
            return None;
        }
        x[k] = s / d;
    }
    Some(x)
}

/// Ridge-regularized normal equations: `(AᵀA + λI) x = Aᵀ b` solved by
/// Cholesky. `λ` is scaled to the trace of `AᵀA`.
fn ridge_solve(a: &DenseMatrix, b: &[f64]) -> Vec<f64> {
    let n = a.cols();
    let at = a.transpose();
    let mut ata = at.matmul(a);
    let atb = a.matvec_t(b);
    let trace: f64 = (0..n).map(|i| ata[(i, i)]).sum();
    let lambda = (trace / n.max(1) as f64) * 1e-8 + 1e-12;
    for i in 0..n {
        ata[(i, i)] += lambda;
    }
    // themis-lint: allow(no-panic-in-libs) reason=adding a strictly positive lambda to the diagonal of AtA makes the system SPD, so Cholesky cannot fail
    cholesky_solve(&ata, &atb).expect("ridge-regularized system is SPD")
}

/// Solve `M x = rhs` for symmetric positive-definite `M` via Cholesky.
/// Returns `None` if `M` is not positive definite.
pub fn cholesky_solve(m: &DenseMatrix, rhs: &[f64]) -> Option<Vec<f64>> {
    let n = m.rows();
    assert_eq!(m.cols(), n, "matrix must be square");
    assert_eq!(rhs.len(), n, "rhs length mismatch");
    // Lower-triangular factor L with M = L Lᵀ.
    let mut l = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = m[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return None;
                }
                l[(i, j)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    // Forward solve L y = rhs.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = rhs[i];
        for k in 0..i {
            s -= l[(i, k)] * y[k];
        }
        y[i] = s / l[(i, i)];
    }
    // Back solve Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::norm2;

    #[test]
    fn exact_square_system() {
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = lstsq(&a, &[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn overdetermined_consistent_system() {
        // x = [1, 2]; three consistent equations.
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let x = lstsq(&a, &[1.0, 2.0, 3.0]);
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system; optimum is the mean for a column of ones.
        let a = DenseMatrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]);
        let x = lstsq(&a, &[1.0, 2.0, 6.0]);
        assert!((x[0] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let a = DenseMatrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 1.0],
            vec![0.5, 4.0],
            vec![2.0, 2.0],
        ]);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = lstsq(&a, &b);
        let mut resid = a.matvec(&x);
        for (r, &bi) in resid.iter_mut().zip(&b) {
            *r -= bi;
        }
        let grad = a.matvec_t(&resid);
        assert!(norm2(&grad) < 1e-8, "normal equations violated: {grad:?}");
    }

    #[test]
    fn rank_deficient_falls_back_to_ridge() {
        // Second column is a copy of the first.
        let a = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let b = vec![2.0, 4.0, 6.0];
        let x = lstsq(&a, &b);
        // Any x with x0 + x1 = 2 solves it; ridge gives the minimum-norm-ish
        // solution. Verify the fit instead of the coordinates.
        let fit = a.matvec(&x);
        for (f, &bi) in fit.iter().zip(&b) {
            assert!((f - bi).abs() < 1e-5);
        }
    }

    #[test]
    fn cholesky_solves_spd() {
        let m = DenseMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let x = cholesky_solve(&m, &[8.0, 7.0]).unwrap();
        assert!((x[0] - 1.25).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(cholesky_solve(&m, &[1.0, 1.0]).is_none());
    }
}
