//! Property-based tests for the numeric substrate.

use proptest::prelude::*;
use themis_solver::constrained::{ConstrainedMle, LinearConstraint};
use themis_solver::matrix::DenseMatrix;
use themis_solver::{lstsq, nnls, project_simplex};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, len..=len)
}

proptest! {
    #[test]
    fn simplex_projection_is_on_simplex(v in prop::collection::vec(-100.0f64..100.0, 1..20)) {
        let mut x = v.clone();
        project_simplex(&mut x);
        let sum: f64 = x.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-8, "sum = {sum}");
        prop_assert!(x.iter().all(|&xi| xi >= 0.0));
    }

    #[test]
    fn simplex_projection_is_idempotent(v in prop::collection::vec(-100.0f64..100.0, 1..20)) {
        let mut once = v.clone();
        project_simplex(&mut once);
        let mut twice = once.clone();
        project_simplex(&mut twice);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn simplex_projection_is_closest_point(
        v in prop::collection::vec(-5.0f64..5.0, 2..8),
        probe in prop::collection::vec(0.01f64..1.0, 2..8),
    ) {
        // The projection must be at least as close to v as any other simplex
        // point (here: a random normalized probe of matching length).
        let n = v.len().min(probe.len());
        let v = &v[..n];
        let mut proj = v.to_vec();
        project_simplex(&mut proj);
        let total: f64 = probe[..n].iter().sum();
        let other: Vec<f64> = probe[..n].iter().map(|p| p / total).collect();
        let d_proj: f64 = proj.iter().zip(v).map(|(a, b)| (a - b) * (a - b)).sum();
        let d_other: f64 = other.iter().zip(v).map(|(a, b)| (a - b) * (a - b)).sum();
        prop_assert!(d_proj <= d_other + 1e-9, "projection {d_proj} farther than probe {d_other}");
    }

    #[test]
    fn lstsq_residual_is_orthogonal(
        rows in 3usize..8,
        cols in 1usize..3,
        seed in finite_vec(64),
    ) {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows * cols {
            data.push(seed[i % seed.len()] + (i as f64) * 0.37);
        }
        let a = DenseMatrix::from_vec(rows, cols, data);
        let b: Vec<f64> = (0..rows).map(|i| seed[(i * 7) % seed.len()]).collect();
        let x = lstsq(&a, &b);
        let mut r = a.matvec(&x);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri -= bi;
        }
        let g = a.matvec_t(&r);
        let scale = a.frobenius_norm().max(1.0);
        for gi in g {
            prop_assert!(gi.abs() / scale < 1e-5, "gradient {gi} not ~0");
        }
    }

    #[test]
    fn nnls_is_nonnegative_and_kkt(
        rows in 2usize..7,
        cols in 1usize..5,
        seed in finite_vec(64),
    ) {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows * cols {
            data.push((seed[i % seed.len()]).abs() + 0.1 + (i % 5) as f64 * 0.21);
        }
        let a = DenseMatrix::from_vec(rows, cols, data);
        let b: Vec<f64> = (0..rows).map(|i| seed[(i * 11) % seed.len()]).collect();
        let (x, rep) = nnls(&a, &b);
        prop_assert!(x.iter().all(|&v| v >= 0.0));
        if rep.converged {
            let mut r = a.matvec(&x);
            for (ri, bi) in r.iter_mut().zip(&b) {
                *ri -= bi;
            }
            let g = a.matvec_t(&r);
            let scale = a.frobenius_norm().max(1.0);
            for (&xi, &gi) in x.iter().zip(&g) {
                if xi > 1e-8 {
                    prop_assert!(gi.abs() / scale < 1e-4, "passive gradient {gi}");
                } else {
                    prop_assert!(gi / scale > -1e-4, "active gradient {gi} negative");
                }
            }
        }
    }

    #[test]
    fn constrained_mle_satisfies_feasible_constraints(
        counts in prop::collection::vec(0.0f64..20.0, 3..=3),
        target in prop::collection::vec(0.05f64..1.0, 3..=3),
    ) {
        // Build a feasible pin: constrain θ0 to the value a random simplex
        // point takes there.
        let total: f64 = target.iter().sum();
        let pin = target[0] / total;
        let p = ConstrainedMle::new(
            vec![3],
            counts,
            vec![LinearConstraint { terms: vec![(0, 1.0)], rhs: pin }],
        );
        let (theta, rep) = p.solve();
        prop_assert!(rep.converged, "did not converge: {rep:?}");
        prop_assert!((theta[0] - pin).abs() < 1e-4, "θ0 = {} != {pin}", theta[0]);
        let sum: f64 = theta.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(theta.iter().all(|&t| t >= -1e-12));
    }
}
