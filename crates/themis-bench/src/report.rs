//! Console table / series formatting for the experiment binaries.

/// Print a header banner naming the experiment and the paper artifact it
/// regenerates.
pub fn banner(artifact: &str, description: &str) {
    println!("==========================================================");
    println!("{artifact}: {description}");
    println!("==========================================================");
}

/// Print a table: header row then aligned data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a float with fixed precision.
pub fn f(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Summary statistics of an error distribution, matching the boxplot views
/// in the paper's figures.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Mean (the black X of Figs. 3–4).
    pub mean: f64,
}

/// Compute [`Summary`] over percent differences.
pub fn summarize(errors: &[f64]) -> Summary {
    let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
    Summary {
        p25: themis_core::metrics::percentile(errors, 25.0),
        p50: themis_core::metrics::percentile(errors, 50.0),
        p75: themis_core::metrics::percentile(errors, 75.0),
        mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_orders_percentiles() {
        let errors: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = summarize(&errors);
        assert!(s.p25 < s.p50 && s.p50 < s.p75);
        assert!((s.mean - 49.5).abs() < 1e-9);
    }

    #[test]
    fn formatting_is_compact() {
        assert_eq!(f(1.23456), "1.23");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(f64::INFINITY), "inf");
    }
}
