//! Console table / series formatting for the experiment binaries.

/// Print a header banner naming the experiment and the paper artifact it
/// regenerates.
pub fn banner(artifact: &str, description: &str) {
    println!("==========================================================");
    println!("{artifact}: {description}");
    println!("==========================================================");
}

/// Print a table: header row then aligned data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a float with fixed precision.
pub fn f(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Summary statistics of an error distribution, matching the boxplot views
/// in the paper's figures.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Mean (the black X of Figs. 3–4).
    pub mean: f64,
}

/// Compute [`Summary`] over percent differences.
pub fn summarize(errors: &[f64]) -> Summary {
    let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
    Summary {
        p25: themis_core::metrics::percentile(errors, 25.0),
        p50: themis_core::metrics::percentile(errors, 50.0),
        p75: themis_core::metrics::percentile(errors, 75.0),
        mean,
    }
}

/// A JSON value for machine-readable bench records (`BENCH_<topic>.json`).
///
/// The workspace has no serde; benches build the handful of numbers they
/// report with this enum and [`write_bench_json`] puts the rendered text at
/// the repo root where the perf-trajectory tooling expects it.
#[derive(Debug, Clone)]
pub enum Jv {
    Num(f64),
    Int(u64),
    Str(String),
    Arr(Vec<Jv>),
    /// Keys render in insertion order, so records diff cleanly run-to-run.
    Obj(Vec<(String, Jv)>),
}

impl Jv {
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        match self {
            Jv::Num(v) if v.is_finite() => out.push_str(&format!("{v:.6}")),
            Jv::Num(_) => out.push_str("null"),
            Jv::Int(v) => out.push_str(&v.to_string()),
            Jv::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Jv::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    item.render_into(out, indent + 1);
                }
                if !items.is_empty() {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push(']');
            }
            Jv::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    out.push_str(&format!("\"{k}\": "));
                    v.render_into(out, indent + 1);
                }
                if !fields.is_empty() {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push('}');
            }
        }
    }
}

/// Ascend from the current directory to the workspace root, identified by
/// its `ROADMAP.md`. Benches run from somewhere inside the repo, so this
/// works without compile-time environment reads.
pub fn workspace_root() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("ROADMAP.md").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Write `record` to `BENCH_<topic>.json` at the repo root and return the
/// path it landed at.
pub fn write_bench_json(topic: &str, record: &Jv) -> std::io::Result<std::path::PathBuf> {
    let root = workspace_root().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::NotFound,
            "no ROADMAP.md above the current directory; run benches from inside the repo",
        )
    })?;
    let path = root.join(format!("BENCH_{topic}.json"));
    let mut text = record.render();
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_orders_percentiles() {
        let errors: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = summarize(&errors);
        assert!(s.p25 < s.p50 && s.p50 < s.p75);
        assert!((s.mean - 49.5).abs() < 1e-9);
    }

    #[test]
    fn formatting_is_compact() {
        assert_eq!(f(1.23456), "1.23");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(f64::INFINITY), "inf");
    }

    #[test]
    fn json_renders_nested_records() {
        let record = Jv::Obj(vec![
            ("bench".into(), Jv::Str("demo".into())),
            ("n".into(), Jv::Int(300_000)),
            (
                "timings".into(),
                Jv::Arr(vec![Jv::Num(1.5), Jv::Num(0.75)]),
            ),
        ]);
        let text = record.render();
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\"bench\": \"demo\""));
        assert!(text.contains("\"n\": 300000"));
        assert!(text.contains("1.500000"));
        // Insertion order is preserved: "bench" renders before "timings".
        assert!(text.find("bench").unwrap() < text.find("timings").unwrap());
    }

    #[test]
    fn json_escapes_strings_and_nulls_non_finite() {
        assert_eq!(Jv::Str("a\"b\\c\n".into()).render(), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(Jv::Num(f64::NAN).render(), "null");
        assert_eq!(Jv::Arr(vec![]).render(), "[]");
        assert_eq!(Jv::Obj(vec![]).render(), "{}");
    }

    #[test]
    fn workspace_root_finds_the_repo() {
        let root = workspace_root().expect("tests run inside the repo");
        assert!(root.join("ROADMAP.md").is_file());
        assert!(root.join("Cargo.toml").is_file());
    }
}
