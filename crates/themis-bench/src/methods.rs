//! The compared methods: AQP, LinReg, IPF, the BN modes, and the hybrid.

use themis_aggregates::AggregateSet;
use themis_bn::LearnMode;
use themis_core::{percent_difference, ReweightMethod, Themis, ThemisConfig};
use themis_data::Relation;

use crate::workload::PointQuery;

/// A compared method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Default AQP: uniform reweighting.
    Aqp,
    /// Linear-regression reweighting.
    LinReg,
    /// IPF reweighting.
    Ipf,
    /// A Bayesian network alone (answers by inference / generation).
    Bn(LearnMode),
    /// Themis' hybrid (IPF + BB by default).
    Hybrid,
}

impl Method {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Method::Aqp => "AQP",
            Method::LinReg => "LinReg",
            Method::Ipf => "IPF",
            Method::Bn(mode) => mode.name(),
            Method::Hybrid => "Hybrid",
        }
    }

    /// The four methods of the headline comparison (Figs. 3–6).
    pub const HEADLINE: [Method; 4] = [
        Method::Aqp,
        Method::Ipf,
        Method::Bn(LearnMode::BB),
        Method::Hybrid,
    ];
}

/// Build a [`Themis`] model configured to behave as `method`.
pub fn build_model(
    sample: &Relation,
    aggregates: &AggregateSet,
    population_size: f64,
    method: Method,
) -> Themis {
    let config = match method {
        Method::Aqp => ThemisConfig {
            reweighting: ReweightMethod::Uniform,
            bn_mode: None,
            ..ThemisConfig::default()
        },
        Method::LinReg => ThemisConfig {
            reweighting: ReweightMethod::LinReg(Default::default()),
            bn_mode: None,
            ..ThemisConfig::default()
        },
        Method::Ipf => ThemisConfig {
            reweighting: ReweightMethod::Ipf(Default::default()),
            bn_mode: None,
            ..ThemisConfig::default()
        },
        Method::Bn(mode) => ThemisConfig {
            // The reweighted sample is unused for pure-BN answering, but
            // uniform keeps build cost minimal.
            reweighting: ReweightMethod::Uniform,
            bn_mode: Some(mode),
            ..ThemisConfig::default()
        },
        Method::Hybrid => ThemisConfig::default(),
    };
    Themis::build(sample.clone(), aggregates.clone(), population_size, config)
}

/// Answer one point query with the method's answering rule.
pub fn answer_point(model: &Themis, method: Method, query: &PointQuery) -> f64 {
    match method {
        Method::Aqp | Method::LinReg | Method::Ipf => {
            model.point_query_sample(&query.attrs, &query.values)
        }
        Method::Bn(_) => model
            .point_query_bn(&query.attrs, &query.values)
            .expect("BN methods build a BN"),
        Method::Hybrid => model.point_query(&query.attrs, &query.values),
    }
}

/// Percent differences of a method over a query workload.
pub fn eval_point_queries(model: &Themis, method: Method, queries: &[PointQuery]) -> Vec<f64> {
    queries
        .iter()
        .map(|q| percent_difference(q.truth, answer_point(model, method, q)))
        .collect()
}

/// Build a model and return its average percent difference over a workload
/// — the unit of work of the aggregate-knowledge sweeps (Figs. 7–12).
pub fn average_error(
    sample: &Relation,
    aggregates: &AggregateSet,
    population_size: f64,
    method: Method,
    queries: &[PointQuery],
) -> f64 {
    let model = build_model(sample, aggregates, population_size, method);
    let errors = eval_point_queries(&model, method, queries);
    errors.iter().sum::<f64>() / errors.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_aggregates::AggregateResult;
    use themis_data::paper_example::{example_population, example_sample};
    use themis_data::AttrId;

    fn setup() -> (Relation, AggregateSet) {
        let p = example_population();
        let set = AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(0)]),
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ]);
        (p, set)
    }

    #[test]
    fn all_methods_build_and_answer() {
        let (p, set) = setup();
        let s = example_sample();
        let q = PointQuery {
            attrs: vec![AttrId(0)],
            values: vec![0],
            truth: p.point_count(&[AttrId(0)], &[0]),
        };
        for method in [
            Method::Aqp,
            Method::LinReg,
            Method::Ipf,
            Method::Bn(LearnMode::BB),
            Method::Hybrid,
        ] {
            let model = build_model(&s, &set, 10.0, method);
            let est = answer_point(&model, method, &q);
            assert!(est.is_finite() && est >= 0.0, "{}: {est}", method.name());
        }
    }

    #[test]
    fn ipf_beats_aqp_on_biased_sample() {
        let (p, set) = setup();
        let s = example_sample(); // biased towards date=01
        let queries = vec![
            PointQuery {
                attrs: vec![AttrId(0)],
                values: vec![0],
                truth: p.point_count(&[AttrId(0)], &[0]),
            },
            PointQuery {
                attrs: vec![AttrId(0)],
                values: vec![1],
                truth: p.point_count(&[AttrId(0)], &[1]),
            },
        ];
        let aqp = build_model(&s, &set, 10.0, Method::Aqp);
        let ipf = build_model(&s, &set, 10.0, Method::Ipf);
        let e_aqp: f64 = eval_point_queries(&aqp, Method::Aqp, &queries).iter().sum();
        let e_ipf: f64 = eval_point_queries(&ipf, Method::Ipf, &queries).iter().sum();
        assert!(e_ipf < e_aqp, "IPF {e_ipf} should beat AQP {e_aqp}");
    }
}
