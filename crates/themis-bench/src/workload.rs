//! Point-query workload generation (§6.3).
//!
//! Query selection values are drawn from the population's *light hitters*
//! (smallest group counts), *heavy hitters* (largest), or *random* existing
//! values; 100 point queries per selection per attribute set in the paper.

use rand::seq::SliceRandom;
use rand::Rng;
use themis_data::{AttrId, Relation};

/// Which part of the count distribution queries target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hitter {
    /// Largest population groups.
    Heavy,
    /// Smallest population groups.
    Light,
    /// Any existing group.
    Random,
}

impl Hitter {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Hitter::Heavy => "heavy",
            Hitter::Light => "light",
            Hitter::Random => "random",
        }
    }
}

/// One d-dimensional point query with its true population count.
#[derive(Debug, Clone)]
pub struct PointQuery {
    /// Queried attributes.
    pub attrs: Vec<AttrId>,
    /// Queried values.
    pub values: Vec<u32>,
    /// True `COUNT(*)` over the population.
    pub truth: f64,
}

/// Draw `count` point queries against the population over the given
/// attribute sets. Heavy/light queries come from the top/bottom 20% of each
/// set's group-count distribution.
pub fn pick_point_queries<R: Rng>(
    population: &Relation,
    attr_sets: &[Vec<AttrId>],
    hitter: Hitter,
    count: usize,
    rng: &mut R,
) -> Vec<PointQuery> {
    assert!(!attr_sets.is_empty(), "need at least one attribute set");
    // Sorted (ascending count) group lists per attribute set.
    let sorted: Vec<Vec<(Vec<u32>, f64)>> = attr_sets
        .iter()
        .map(|attrs| {
            let mut groups: Vec<(Vec<u32>, f64)> =
                population.group_counts(attrs).into_iter().collect();
            groups.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite counts").then(a.0.cmp(&b.0)));
            groups
        })
        .collect();

    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let set_idx = rng.gen_range(0..attr_sets.len());
        let groups = &sorted[set_idx];
        let band = (groups.len() / 5).max(1);
        let pick = match hitter {
            Hitter::Light => rng.gen_range(0..band),
            Hitter::Heavy => groups.len() - 1 - rng.gen_range(0..band),
            Hitter::Random => rng.gen_range(0..groups.len()),
        };
        let (values, truth) = groups[pick].clone();
        out.push(PointQuery {
            attrs: attr_sets[set_idx].clone(),
            values,
            truth,
        });
    }
    out
}

/// All attribute subsets of the given sizes (used for the paper's "all
/// possible attribute sets of size two to five").
pub fn attr_subsets(attrs: &[AttrId], sizes: std::ops::RangeInclusive<usize>) -> Vec<Vec<AttrId>> {
    let mut out = Vec::new();
    for d in sizes {
        let mut subset = Vec::with_capacity(d);
        subsets_rec(attrs, d, 0, &mut subset, &mut out);
    }
    out
}

fn subsets_rec(
    attrs: &[AttrId],
    d: usize,
    start: usize,
    subset: &mut Vec<AttrId>,
    out: &mut Vec<Vec<AttrId>>,
) {
    if subset.len() == d {
        out.push(subset.clone());
        return;
    }
    for i in start..attrs.len() {
        subset.push(attrs[i]);
        subsets_rec(attrs, d, i + 1, subset, out);
        subset.pop();
    }
}

/// Choose `count` random attribute sets of dimension `d` (IMDB uses 20
/// random 3-D sets because the full enumeration is too large).
pub fn random_attr_sets<R: Rng>(
    attrs: &[AttrId],
    d: usize,
    count: usize,
    rng: &mut R,
) -> Vec<Vec<AttrId>> {
    let all = attr_subsets(attrs, d..=d);
    let mut idx: Vec<usize> = (0..all.len()).collect();
    idx.shuffle(rng);
    idx.truncate(count.min(all.len()));
    idx.into_iter().map(|i| all[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use themis_data::paper_example::example_population;

    #[test]
    fn heavy_hitters_have_larger_truth_than_light() {
        let p = example_population();
        let sets = vec![vec![AttrId(1), AttrId(2)]];
        let mut rng = SmallRng::seed_from_u64(1);
        let heavy = pick_point_queries(&p, &sets, Hitter::Heavy, 30, &mut rng);
        let light = pick_point_queries(&p, &sets, Hitter::Light, 30, &mut rng);
        let h_avg: f64 = heavy.iter().map(|q| q.truth).sum::<f64>() / 30.0;
        let l_avg: f64 = light.iter().map(|q| q.truth).sum::<f64>() / 30.0;
        assert!(h_avg > l_avg, "heavy {h_avg} vs light {l_avg}");
    }

    #[test]
    fn truths_match_population_counts() {
        let p = example_population();
        let sets = vec![vec![AttrId(0)], vec![AttrId(1), AttrId(2)]];
        let mut rng = SmallRng::seed_from_u64(2);
        for q in pick_point_queries(&p, &sets, Hitter::Random, 50, &mut rng) {
            assert_eq!(q.truth, p.point_count(&q.attrs, &q.values));
            assert!(q.truth > 0.0, "queries target existing values");
        }
    }

    #[test]
    fn attr_subsets_enumerates() {
        let attrs: Vec<AttrId> = (0..5).map(AttrId).collect();
        assert_eq!(attr_subsets(&attrs, 2..=2).len(), 10);
        assert_eq!(attr_subsets(&attrs, 2..=5).len(), 10 + 10 + 5 + 1);
    }

    #[test]
    fn random_attr_sets_are_distinct() {
        let attrs: Vec<AttrId> = (0..6).map(AttrId).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let sets = random_attr_sets(&attrs, 3, 10, &mut rng);
        assert_eq!(sets.len(), 10);
        let mut d = sets.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 10);
    }
}
