//! Dataset / sample / aggregate setups shared by the experiment binaries.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_aggregates::gamma::all_aggregates_of_dim;
use themis_aggregates::{select_tcherry, AggregateResult, AggregateSet};
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};
use themis_data::datasets::imdb::{ImdbConfig, ImdbDataset};
use themis_data::{AttrId, Relation};

/// Experiment scale. The default (`quick`) finishes every binary in
/// seconds-to-minutes on a laptop; `paper` uses the paper's sizes.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Flights population size.
    pub flights_n: usize,
    /// IMDB population size.
    pub imdb_n: usize,
    /// IMDB dense-name domain size.
    pub imdb_names: usize,
    /// CHILD population size.
    pub child_n: usize,
    /// Point queries per hitter class.
    pub queries: usize,
    /// Replicate BN sample size for GROUP BY answering.
    pub bn_sample_size: usize,
}

impl Scale {
    /// Read the scale from the `THEMIS_SCALE` environment variable
    /// (`quick` default, `paper` for full size).
    pub fn from_env() -> Self {
        // themis-lint: allow(no-env-reads) reason=bench harness knob, never read by library crates; engine threading stays on EngineOptions
        match std::env::var("THEMIS_SCALE").as_deref() {
            Ok("paper") => Scale {
                flights_n: 500_000,
                imdb_n: 200_000,
                imdb_names: 20_000,
                child_n: 20_000,
                queries: 100,
                bn_sample_size: 50_000,
            },
            _ => Scale {
                flights_n: 60_000,
                imdb_n: 40_000,
                imdb_names: 4_000,
                child_n: 20_000,
                queries: 60,
                bn_sample_size: 20_000,
            },
        }
    }
}

/// A prepared dataset: population, named biased samples, and the aggregate
/// menus (all 1D marginals plus the pruning-selected 2D and 3D aggregates).
pub struct ExperimentSetup {
    /// Dataset label (`Flights` / `IMDB`).
    pub name: &'static str,
    /// The population `P` (held only to compute ground truth).
    pub population: Relation,
    /// `(sample name, sample)` pairs in the paper's presentation order.
    pub samples: Vec<(&'static str, Relation)>,
    /// 1-D aggregates in "order A" (the paper's Figs. 7–8 attribute order).
    pub aggregates_1d: Vec<AggregateResult>,
    /// Pruning-selected 2-D aggregates (Table 3), best first.
    pub aggregates_2d: Vec<AggregateResult>,
    /// Pruning-selected 3-D aggregates (Table 3), best first.
    pub aggregates_3d: Vec<AggregateResult>,
    /// Attributes eligible for aggregates (IMDB restricts to 5 of 8).
    pub aggregate_attrs: Vec<AttrId>,
}

impl ExperimentSetup {
    /// The first `b` pruning-selected 2-D aggregates as a set — the
    /// "B = 4, d = 2" default knowledge of Figs. 3, 4, and 14.
    pub fn aggregates_2d_set(&self, b: usize) -> AggregateSet {
        AggregateSet::from_results(self.aggregates_2d[..b.min(self.aggregates_2d.len())].to_vec())
    }

    /// 1-D aggregates in order A (`reverse = false`) or order B, truncated
    /// to `b`.
    pub fn aggregates_1d_set(&self, b: usize, reverse: bool) -> AggregateSet {
        let mut order: Vec<AggregateResult> = self.aggregates_1d.clone();
        if reverse {
            order.reverse();
        }
        order.truncate(b);
        AggregateSet::from_results(order)
    }

    /// All 1-D aggregates plus the first `b` aggregates of the given
    /// dimension (the Figs. 9–12 sweeps).
    pub fn aggregates_1d_plus(&self, dim: usize, b: usize) -> AggregateSet {
        let mut results = self.aggregates_1d.clone();
        let menu = match dim {
            2 => &self.aggregates_2d,
            3 => &self.aggregates_3d,
            _ => panic!("only 2-D and 3-D menus exist"),
        };
        results.extend(menu[..b.min(menu.len())].iter().cloned());
        AggregateSet::from_results(results)
    }
}

/// Build the Flights setup: population, the four biased samples (Unif,
/// June, SCorners, Corners), and pruning-selected aggregate menus.
pub fn flights_setup(scale: &Scale) -> ExperimentSetup {
    let dataset = FlightsDataset::generate(FlightsConfig {
        n: scale.flights_n,
        ..Default::default()
    });
    let mut rng = SmallRng::seed_from_u64(0xF11);
    let samples = vec![
        ("Unif", dataset.sample_unif(&mut rng)),
        ("June", dataset.sample_june(&mut rng)),
        ("SCorners", dataset.sample_scorners(&mut rng)),
        ("Corners", dataset.sample_corners(&mut rng)),
    ];
    let attrs: Vec<AttrId> = dataset.population.schema().attr_ids().collect();
    let (a1, a2, a3) = aggregate_menus(&dataset.population, &attrs);
    ExperimentSetup {
        name: "Flights",
        population: dataset.population,
        samples,
        aggregates_1d: a1,
        aggregates_2d: a2,
        aggregates_3d: a3,
        aggregate_attrs: attrs,
    }
}

/// Build the IMDB setup: population, the four biased samples (Unif, GB,
/// SR159, R159), and aggregate menus restricted to {MY, MC, G, RG, RT}
/// ("to investigate the impact of aggregates that do not cover all
/// attributes", §6.3).
pub fn imdb_setup(scale: &Scale) -> ExperimentSetup {
    let dataset = ImdbDataset::generate(ImdbConfig {
        n: scale.imdb_n,
        names: scale.imdb_names,
        ..Default::default()
    });
    let mut rng = SmallRng::seed_from_u64(0x14DB);
    let samples = vec![
        ("Unif", dataset.sample_unif(&mut rng)),
        ("GB", dataset.sample_gb(&mut rng)),
        ("SR159", dataset.sample_sr159(&mut rng)),
        ("R159", dataset.sample_r159(&mut rng)),
    ];
    let a = ImdbDataset::attrs();
    // Order A of Fig. 8: MY, MC, G, RG, RT.
    let agg_attrs = vec![a.my, a.mc, a.g, a.rg, a.rt];
    let (a1, a2, a3) = aggregate_menus(&dataset.population, &agg_attrs);
    ExperimentSetup {
        name: "IMDB",
        population: dataset.population,
        samples,
        aggregates_1d: a1,
        aggregates_2d: a2,
        aggregates_3d: a3,
        aggregate_attrs: agg_attrs,
    }
}

/// Compute the aggregate menus: all 1-D marginals in the given attribute
/// order, plus t-cherry-pruned 2-D and 3-D selections of budget 4.
fn aggregate_menus(
    population: &Relation,
    attrs: &[AttrId],
) -> (
    Vec<AggregateResult>,
    Vec<AggregateResult>,
    Vec<AggregateResult>,
) {
    let a1 = attrs
        .iter()
        .map(|&a| AggregateResult::compute(population, &[a]))
        .collect();
    let candidates_2d = all_aggregates_of_dim(population, attrs, 2);
    let picked_2d = select_tcherry(&candidates_2d, 4);
    let a2 = picked_2d.iter().map(|&i| candidates_2d[i].clone()).collect();
    let candidates_3d = all_aggregates_of_dim(population, attrs, 3);
    let picked_3d = select_tcherry(&candidates_3d, 4);
    let a3 = picked_3d.iter().map(|&i| candidates_3d[i].clone()).collect();
    (a1, a2, a3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            flights_n: 8_000,
            imdb_n: 6_000,
            imdb_names: 500,
            child_n: 2_000,
            queries: 10,
            bn_sample_size: 2_000,
        }
    }

    #[test]
    fn flights_setup_has_four_samples_and_menus() {
        let s = flights_setup(&tiny_scale());
        assert_eq!(s.samples.len(), 4);
        assert_eq!(s.aggregates_1d.len(), 5);
        assert_eq!(s.aggregates_2d.len(), 4);
        assert_eq!(s.aggregates_3d.len(), 4);
        assert_eq!(s.aggregates_2d_set(2).len(), 2);
        assert_eq!(s.aggregates_1d_plus(2, 4).len(), 9);
    }

    #[test]
    fn imdb_menus_exclude_dense_attributes() {
        let s = imdb_setup(&tiny_scale());
        let n_attr = themis_data::datasets::imdb::ImdbDataset::attrs().n;
        for agg in s.aggregates_2d.iter().chain(&s.aggregates_3d) {
            assert!(!agg.attrs().contains(&n_attr), "N must not be aggregated");
        }
    }

    #[test]
    fn order_b_reverses_order_a() {
        let s = flights_setup(&tiny_scale());
        let a = s.aggregates_1d_set(5, false);
        let b = s.aggregates_1d_set(5, true);
        assert_eq!(a.get(0).attrs(), b.get(4).attrs());
    }
}
