//! # themis-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§6). Each table/figure has a dedicated binary in `src/bin/`
//! (see DESIGN.md §4 for the index); timing tables additionally have
//! Criterion benches under `benches/`.
//!
//! The harness runs at a laptop-friendly scale by default; set
//! `THEMIS_SCALE=paper` to run at the paper's population sizes and query
//! counts.

#![forbid(unsafe_code)]

pub mod methods;
pub mod report;
pub mod setup;
pub mod workload;

pub use methods::{answer_point, build_model, Method};
pub use setup::{flights_setup, imdb_setup, Scale};
pub use workload::{pick_point_queries, Hitter, PointQuery};
