//! Fig. 16: average percent difference versus total solver time for IPF and
//! BB on IMDB SR159 across aggregate configurations (1–5 1D marginals, then
//! all 1D plus 1–4 2D aggregates). IPF is almost always faster to solve;
//! BB reaches lower error.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;
use themis_bench::methods::{build_model, eval_point_queries, Method};
use themis_bench::report::{banner, f, table};
use themis_bench::setup::{imdb_setup, Scale};
use themis_bench::workload::{pick_point_queries, random_attr_sets, Hitter};
use themis_bn::LearnMode;
use themis_data::AttrId;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 16",
        "error vs total solver time (IPF and BB on SR159)",
    );
    let setup = imdb_setup(&scale);
    let n = setup.population.len() as f64;
    let all_attrs: Vec<AttrId> = setup.population.schema().attr_ids().collect();
    let sample = &setup
        .samples
        .iter()
        .find(|(name, _)| *name == "SR159")
        .expect("SR159 sample")
        .1;
    let mut rng = SmallRng::seed_from_u64(16);
    let sets = random_attr_sets(&all_attrs, 3, 20, &mut rng);
    let queries = pick_point_queries(
        &setup.population,
        &sets,
        Hitter::Random,
        scale.queries,
        &mut rng,
    );

    // Aggregate configurations: growing 1D, then full 1D plus growing 2D.
    let mut configs: Vec<(String, themis_aggregates::AggregateSet)> = Vec::new();
    for b in 1..=5usize {
        configs.push((format!("{b} 1D"), setup.aggregates_1d_set(b, false)));
    }
    for b in 1..=4usize {
        configs.push((format!("5 1D + {b} 2D"), setup.aggregates_1d_plus(2, b)));
    }

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, aggs) in &configs {
        for method in [Method::Ipf, Method::Bn(LearnMode::BB)] {
            let start = Instant::now();
            let model = build_model(sample, aggs, n, method);
            let solve_secs = start.elapsed().as_secs_f64();
            let errors = eval_point_queries(&model, method, &queries);
            let avg = errors.iter().sum::<f64>() / errors.len() as f64;
            rows.push(vec![
                method.name().into(),
                label.clone(),
                format!("{solve_secs:.3}"),
                f(avg),
            ]);
        }
    }
    table(&["method", "aggregates", "solver time (s)", "avg perc diff"], &rows);
}
