//! Fig. 8: average percent difference on IMDB SR159 and GB as 1-D
//! aggregates are added in order A (MY, MC, G, RG, RT) and order B
//! (reverse). The jump lands when the bias attribute arrives (RG for
//! SR159, MC for GB), less pronounced than Flights because the aggregates
//! do not cover all attributes.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_bench::methods::{average_error, Method};
use themis_bench::report::{banner, f, table};
use themis_bench::setup::{imdb_setup, Scale};
use themis_bench::workload::{pick_point_queries, random_attr_sets, Hitter};
use themis_data::AttrId;

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 8", "IMDB: adding 1D aggregates in order A and order B");
    let setup = imdb_setup(&scale);
    let n = setup.population.len() as f64;
    let all_attrs: Vec<AttrId> = setup.population.schema().attr_ids().collect();
    let mut rng = SmallRng::seed_from_u64(8);
    let sets = random_attr_sets(&all_attrs, 3, 20, &mut rng);
    let queries = pick_point_queries(
        &setup.population,
        &sets,
        Hitter::Random,
        scale.queries,
        &mut rng,
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (sample_name, sample) in setup
        .samples
        .iter()
        .filter(|(name, _)| *name == "SR159" || *name == "GB")
    {
        for (order_name, reverse) in [("A", false), ("B", true)] {
            for b in 1..=5usize {
                let aggs = setup.aggregates_1d_set(b, reverse);
                let mut row = vec![
                    (*sample_name).to_string(),
                    order_name.to_string(),
                    b.to_string(),
                ];
                for method in Method::HEADLINE {
                    row.push(f(average_error(sample, &aggs, n, method, &queries)));
                }
                rows.push(row);
            }
        }
    }
    table(
        &["sample", "order", "1D B", "AQP", "IPF", "BB", "Hybrid"],
        &rows,
    );
}
