//! Fig. 15: pruning effectiveness on the CHILD dataset. With full 1-D
//! aggregates plus 5–65 2-D aggregates chosen either by the t-cherry
//! pruning technique (Prune) or uniformly at random (Rand), compare the AB
//! and BB modes against the error of the *true* network (OPT).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_aggregates::gamma::all_aggregates_of_dim;
use themis_aggregates::{random_selection, select_tcherry, AggregateResult, AggregateSet};
use themis_bench::methods::{average_error, Method};
use themis_bench::report::{banner, f, table};
use themis_bench::setup::Scale;
use themis_bench::workload::{pick_point_queries, random_attr_sets, Hitter, PointQuery};
use themis_bn::{point_probability, BayesianNetwork, Cpt, LearnMode};
use themis_core::metrics::percent_difference;
use themis_data::datasets::child::ChildNetwork;
use themis_data::sampling::SampleSpec;
use themis_data::AttrId;

/// Convert the ground-truth CHILD network into a `themis-bn` network for
/// exact OPT inference.
fn child_as_bn(child: &ChildNetwork) -> BayesianNetwork {
    let schema = child.schema();
    let parents: Vec<Vec<AttrId>> = child
        .nodes
        .iter()
        .map(|n| n.parents.iter().map(|&p| AttrId(p)).collect())
        .collect();
    let cpts: Vec<Cpt> = child
        .nodes
        .iter()
        .map(|n| Cpt {
            card: n.card,
            parent_cards: n.parents.iter().map(|&p| child.nodes[p].card).collect(),
            table: n.cpt.clone(),
        })
        .collect();
    BayesianNetwork::new(schema, parents, cpts)
}

fn opt_error(truth_net: &BayesianNetwork, n: f64, queries: &[PointQuery]) -> f64 {
    let errors: Vec<f64> = queries
        .iter()
        .map(|q| {
            let est = n * point_probability(truth_net, &q.attrs, &q.values);
            percent_difference(q.truth, est)
        })
        .collect();
    errors.iter().sum::<f64>() / errors.len().max(1) as f64
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 15",
        "pruning (Prune vs Rand × AB vs BB) on CHILD with full 1D aggregates",
    );
    let child = ChildNetwork::new();
    let mut rng = SmallRng::seed_from_u64(15);
    let population = child.sample(scale.child_n, &mut rng);
    let n = population.len() as f64;
    let sample = SampleSpec::uniform(0.1).draw(&population, &mut rng);
    let attrs: Vec<AttrId> = population.schema().attr_ids().collect();

    // Query workload: random point queries over random attribute sets of
    // sizes 2 and 4 (a compact stand-in for the paper's 2/4/6/8/10 sweep).
    let mut sets = random_attr_sets(&attrs, 2, 6, &mut rng);
    sets.extend(random_attr_sets(&attrs, 4, 4, &mut rng));
    let queries = pick_point_queries(&population, &sets, Hitter::Random, scale.queries, &mut rng);

    // Aggregate menus.
    let ones: Vec<AggregateResult> = attrs
        .iter()
        .map(|&a| AggregateResult::compute(&population, &[a]))
        .collect();
    let candidates = all_aggregates_of_dim(&population, &attrs, 2);
    let prune_order = select_tcherry(&candidates, candidates.len());
    let rand_order = random_selection(candidates.len(), candidates.len(), &mut rng);

    let truth_net = child_as_bn(&child);
    let opt = opt_error(&truth_net, n, &queries);
    println!("OPT (true-network) average percent difference: {}", f(opt));

    let mut rows: Vec<Vec<String>> = Vec::new();
    for b in [5usize, 15, 25, 35, 45, 55, 65] {
        let mut row = vec![b.to_string()];
        for (strategy, order) in [("Prune", &prune_order), ("Rand", &rand_order)] {
            let mut results = ones.clone();
            results.extend(order.iter().take(b).map(|&i| candidates[i].clone()));
            let aggs = AggregateSet::from_results(results);
            for mode in [LearnMode::AB, LearnMode::BB] {
                let err = average_error(&sample, &aggs, n, Method::Bn(mode), &queries);
                row.push(f(err));
            }
            let _ = strategy;
        }
        rows.push(row);
    }
    table(
        &["2D B", "PruneAB", "PruneBB", "RandAB", "RandBB"],
        &rows,
    );
}
