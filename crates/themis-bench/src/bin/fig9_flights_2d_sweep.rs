//! Fig. 9: average percent difference on Flights SCorners and June as 2-D
//! aggregates are added (after all five 1-D marginals). BB improves most
//! with more aggregates, with diminishing returns past two.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_bench::methods::{average_error, Method};
use themis_bench::report::{banner, f, table};
use themis_bench::setup::{flights_setup, Scale};
use themis_bench::workload::{attr_subsets, pick_point_queries, Hitter};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 9",
        "Flights: adding 2D aggregates after the 5 1D marginals",
    );
    let setup = flights_setup(&scale);
    let n = setup.population.len() as f64;
    let sets = attr_subsets(&setup.aggregate_attrs, 2..=4);
    let mut rng = SmallRng::seed_from_u64(9);
    let queries = pick_point_queries(
        &setup.population,
        &sets,
        Hitter::Random,
        scale.queries,
        &mut rng,
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (sample_name, sample) in setup
        .samples
        .iter()
        .filter(|(name, _)| *name == "SCorners" || *name == "June")
    {
        for b in 0..=4usize {
            let aggs = setup.aggregates_1d_plus(2, b);
            let mut row = vec![(*sample_name).to_string(), b.to_string()];
            for method in Method::HEADLINE {
                row.push(f(average_error(sample, &aggs, n, method, &queries)));
            }
            rows.push(row);
        }
    }
    table(&["sample", "2D B", "AQP", "IPF", "BB", "Hybrid"], &rows);
}
