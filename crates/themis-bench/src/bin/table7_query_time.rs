//! Table 7: average point-query execution time on IMDB SR159 with 4 2-D
//! aggregates — the reweighted sample (RW: a weighted scan) versus the five
//! BN modes (exact inference). A Criterion version lives in
//! `benches/query_time.rs`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;
use themis_bench::methods::{answer_point, build_model, Method};
use themis_bench::report::{banner, table};
use themis_bench::setup::{imdb_setup, Scale};
use themis_bench::workload::{pick_point_queries, random_attr_sets, Hitter};
use themis_bn::LearnMode;
use themis_data::AttrId;

fn main() {
    let scale = Scale::from_env();
    banner("Table 7", "average point-query execution time (SR159, 4 2D aggs)");
    let setup = imdb_setup(&scale);
    let n = setup.population.len() as f64;
    let aggregates = setup.aggregates_2d_set(4);
    let sample = &setup
        .samples
        .iter()
        .find(|(name, _)| *name == "SR159")
        .expect("SR159 sample")
        .1;
    let mut rng = SmallRng::seed_from_u64(7);
    let all_attrs: Vec<AttrId> = setup.population.schema().attr_ids().collect();
    let sets = random_attr_sets(&all_attrs, 3, 20, &mut rng);
    let queries = pick_point_queries(
        &setup.population,
        &sets,
        Hitter::Random,
        scale.queries,
        &mut rng,
    );

    let methods: Vec<(String, Method)> = std::iter::once(("RW".to_string(), Method::Ipf))
        .chain(LearnMode::ALL.iter().map(|&m| (m.name().to_string(), Method::Bn(m))))
        .collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, method) in methods {
        let model = build_model(sample, &aggregates, n, method);
        let start = Instant::now();
        let mut checksum = 0.0;
        for q in &queries {
            checksum += answer_point(&model, method, q);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let per_query_ms = elapsed / queries.len() as f64 * 1e3;
        rows.push(vec![
            name,
            format!("{per_query_ms:.3}"),
            format!("{checksum:.0}"),
        ]);
    }
    table(&["method", "ms / query", "(checksum)"], &rows);
}
