//! Table 8: structure (S) and parameter (P) learning times on IMDB SR159 as
//! 1-D and then 2-D aggregates are added, for LinReg, IPF, and BB. A
//! Criterion version lives in `benches/solver_time.rs`.

use std::time::Instant;
use themis_bench::report::{banner, table};
use themis_bench::setup::{imdb_setup, Scale};
use themis_bn::parameters::{learn_parameters, ParamOptions, ParamSource};
use themis_bn::{learn_structure, StructureOptions, StructureSource};
use themis_reweight::{ipf_weights, linreg_weights, IpfOptions, LinRegOptions};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table 8",
        "structure (S) and parameter (P) learning times in seconds (SR159)",
    );
    let setup = imdb_setup(&scale);
    let n = setup.population.len() as f64;
    let sample = &setup
        .samples
        .iter()
        .find(|(name, _)| *name == "SR159")
        .expect("SR159 sample")
        .1;

    let mut configs: Vec<(String, themis_aggregates::AggregateSet)> = Vec::new();
    for b in 1..=5usize {
        configs.push((format!("{b}x1D"), setup.aggregates_1d_set(b, false)));
    }
    for b in 1..=4usize {
        configs.push((format!("5x1D+{b}x2D"), setup.aggregates_1d_plus(2, b)));
    }

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, aggs) in &configs {
        // Structure learning (BB's phase is the slowest of the modes).
        let start = Instant::now();
        let parents = learn_structure(
            sample,
            aggs,
            n,
            StructureSource::Both,
            &StructureOptions::default(),
        );
        let t_struct = start.elapsed().as_secs_f64();

        // Parameter learning: LinReg, IPF, BB-constrained.
        let start = Instant::now();
        let _ = linreg_weights(sample, aggs, n, &LinRegOptions::default());
        let t_reg = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let _ = ipf_weights(sample, aggs, &IpfOptions::default());
        let t_ipf = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let _ = learn_parameters(
            sample,
            aggs,
            n,
            parents.clone(),
            ParamSource::Both,
            &ParamOptions::default(),
        );
        let t_bb = start.elapsed().as_secs_f64();

        rows.push(vec![
            label.clone(),
            format!("{t_struct:.3}"),
            format!("{t_reg:.3}"),
            format!("{t_ipf:.3}"),
            format!("{t_bb:.3}"),
        ]);
    }
    table(
        &["aggregates", "S: BB", "P: Reg", "P: IPF", "P: BB"],
        &rows,
    );
}
