//! Fig. 13: the five Bayesian-network learning modes (SS, SB, BS, AB, BB)
//! on Flights SCorners, heavy- and light-hitter queries, as 2-D aggregates
//! are added after the five 1-D marginals. Using both sources matters more
//! for parameter learning than structure learning; BB wins overall.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_bench::methods::{average_error, Method};
use themis_bench::report::{banner, f, table};
use themis_bench::setup::{flights_setup, Scale};
use themis_bench::workload::{attr_subsets, pick_point_queries, Hitter};
use themis_bn::LearnMode;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 13",
        "BN modes SS/SB/BS/AB/BB on SCorners, heavy & light hitters",
    );
    let setup = flights_setup(&scale);
    let n = setup.population.len() as f64;
    let sets = attr_subsets(&setup.aggregate_attrs, 2..=4);
    let sample = &setup
        .samples
        .iter()
        .find(|(name, _)| *name == "SCorners")
        .expect("SCorners sample")
        .1;
    let mut rng = SmallRng::seed_from_u64(13);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for hitter in [Hitter::Heavy, Hitter::Light] {
        let queries = pick_point_queries(
            &setup.population,
            &sets,
            hitter,
            scale.queries,
            &mut rng,
        );
        for b in 0..=4usize {
            let aggs = setup.aggregates_1d_plus(2, b);
            let mut row = vec![hitter.name().to_string(), b.to_string()];
            for mode in LearnMode::ALL {
                row.push(f(average_error(
                    sample,
                    &aggs,
                    n,
                    Method::Bn(mode),
                    &queries,
                )));
            }
            rows.push(row);
        }
    }
    table(
        &["hitters", "2D B", "SS", "SB", "BS", "AB", "BB"],
        &rows,
    );
}
