//! Fig. 5: average percent difference of random point queries on the
//! Corners sample as its bias decreases from 100% (pure selection, support
//! mismatch) to 90% (SCorners), with 4 2-D aggregates.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_bench::methods::{build_model, eval_point_queries, Method};
use themis_bench::report::{banner, f, table};
use themis_bench::setup::{flights_setup, Scale};
use themis_bench::workload::{attr_subsets, pick_point_queries, Hitter};
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 5",
        "average percent difference vs Corners bias (4 2D aggregates)",
    );
    let setup = flights_setup(&scale);
    let aggregates = setup.aggregates_2d_set(4);
    let sets = attr_subsets(&setup.aggregate_attrs, 2..=4);
    let mut rng = SmallRng::seed_from_u64(5);
    let queries = pick_point_queries(
        &setup.population,
        &sets,
        Hitter::Random,
        scale.queries,
        &mut rng,
    );

    let dataset = FlightsDataset::generate(FlightsConfig {
        n: scale.flights_n,
        ..Default::default()
    });

    let mut rows: Vec<Vec<String>> = Vec::new();
    for bias_pct in [100u32, 98, 96, 94, 92, 90] {
        let bias = bias_pct as f64 / 100.0;
        let sample = dataset.sample_corners_with_bias(bias, &mut rng);
        let mut row = vec![format!("{:.2}", bias)];
        for method in Method::HEADLINE {
            let model = build_model(&sample, &aggregates, setup.population.len() as f64, method);
            let errors = eval_point_queries(&model, method, &queries);
            let avg: f64 = errors.iter().sum::<f64>() / errors.len() as f64;
            row.push(f(avg));
        }
        rows.push(row);
    }
    table(&["bias", "AQP", "IPF", "BB", "Hybrid"], &rows);
    println!("\n(bias 1.00 = Corners: the sample support excludes non-corner origins)");
}
