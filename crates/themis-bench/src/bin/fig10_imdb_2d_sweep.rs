//! Fig. 10: average percent difference on IMDB SR159 and GB as 2-D
//! aggregates are added after the five 1-D marginals.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_bench::methods::{average_error, Method};
use themis_bench::report::{banner, f, table};
use themis_bench::setup::{imdb_setup, Scale};
use themis_bench::workload::{pick_point_queries, random_attr_sets, Hitter};
use themis_data::AttrId;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 10",
        "IMDB: adding 2D aggregates after the 5 1D marginals",
    );
    let setup = imdb_setup(&scale);
    let n = setup.population.len() as f64;
    let all_attrs: Vec<AttrId> = setup.population.schema().attr_ids().collect();
    let mut rng = SmallRng::seed_from_u64(10);
    let sets = random_attr_sets(&all_attrs, 3, 20, &mut rng);
    let queries = pick_point_queries(
        &setup.population,
        &sets,
        Hitter::Random,
        scale.queries,
        &mut rng,
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (sample_name, sample) in setup
        .samples
        .iter()
        .filter(|(name, _)| *name == "SR159" || *name == "GB")
    {
        for b in 0..=4usize {
            let aggs = setup.aggregates_1d_plus(2, b);
            let mut row = vec![(*sample_name).to_string(), b.to_string()];
            for method in Method::HEADLINE {
                row.push(f(average_error(sample, &aggs, n, method, &queries)));
            }
            rows.push(row);
        }
    }
    table(&["sample", "2D B", "AQP", "IPF", "BB", "Hybrid"], &rows);
}
