//! Load driver for the Themis server (ROADMAP item 1): hammer an
//! in-process `ThemisServer` with N concurrent clients over the real TCP
//! wire and report p50/p99 round-trip latency, QPS, and the per-route mix
//! the server's `stats` op exports — written to `BENCH_server.json`. As a
//! CI gate it finishes with a metrics smoke check: the `metrics` op's
//! registry export must count exactly the driven load (printed as
//! `metrics-smoke: ok (queries=N)`).
//!
//! ```text
//! server_load [CLIENTS] [QUERIES_PER_CLIENT]      # defaults: 4, 200
//! ```
//!
//! The server and every client run on `shims/rayon` pool tasks inside this
//! process, so the numbers measure the serving stack (wire encode/decode,
//! admission, session execution over the shared world) without network
//! noise. Each client rotates through a mixed workload that exercises all
//! three live routes: sample-routed scalars, hybrid grouped queries, and
//! pure-BN point predicates on labels absent from the biased sample.

use std::sync::Arc;
use std::time::Instant;
use themis_bench::report::{self, Jv};
use themis_core::{metrics, Themis, ThemisConfig, ThemisSession};
use themis_data::{AttrId, Attribute, Domain, Relation, Schema};
use themis_serve::{Client, Json, ServerConfig, ThemisServer};

/// The mixed workload, one route per shape (see `benches/route_mix.rs`).
const WORKLOAD: [&str; 4] = [
    "SELECT COUNT(*) AS n FROM t",
    "SELECT a, COUNT(*) AS n FROM t GROUP BY a",
    "SELECT COUNT(*) AS n FROM t WHERE a = '12'",
    "SELECT b, COUNT(*) AS n, AVG(c) FROM t WHERE a <> 3 GROUP BY b ORDER BY n DESC",
];

/// The biased open-world dataset: a 50 000-row population sampled only where
/// `a < 10`, so the BN route genuinely fires (same world as the route-mix
/// bench).
fn world() -> ThemisSession {
    let sizes = [16usize, 12, 8];
    let schema = Schema::new(vec![
        Attribute::new("a", Domain::indexed("a", sizes[0])),
        Attribute::new("b", Domain::indexed("b", sizes[1])),
        Attribute::new("c", Domain::indexed("c", sizes[2])),
    ]);
    let mut pop = Relation::new(schema);
    for i in 0..50_000usize {
        pop.push_row(&[
            ((i * 7 + i / 13) % sizes[0]) as u32,
            ((i * 5 + 1) % sizes[1]) as u32,
            ((i * 11 + i / 7) % sizes[2]) as u32,
        ]);
    }
    let aggregates = themis_aggregates::AggregateSet::from_results(vec![
        themis_aggregates::AggregateResult::compute(&pop, &[AttrId(0)]),
        themis_aggregates::AggregateResult::compute(&pop, &[AttrId(1), AttrId(2)]),
    ]);
    let n = pop.len() as f64;
    let rows: Vec<usize> = (0..pop.len())
        .filter(|&r| pop.value(r, AttrId(0)) < 10)
        .take(5_000)
        .collect();
    let sample = pop.select_rows(&rows);
    let config = ThemisConfig {
        bn_sample_size: Some(2_000),
        ..ThemisConfig::default()
    };
    ThemisSession::new(Themis::build(sample, aggregates, n, config))
}

/// One client: `queries` round-trips rotating through the workload,
/// returning per-request latencies in seconds.
fn drive_client(addr: std::net::SocketAddr, slot: usize, queries: usize) -> Vec<f64> {
    let mut client = Client::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(queries);
    for q in 0..queries {
        let sql = WORKLOAD[(slot + q) % WORKLOAD.len()];
        let start = Instant::now();
        client
            .query(sql)
            .expect("transport")
            .unwrap_or_else(|e| panic!("client {slot}: {e}"));
        latencies.push(start.elapsed().as_secs_f64());
    }
    latencies
}

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: usize = args
        .next()
        .map(|a| a.parse().expect("CLIENTS must be a number"))
        .unwrap_or(4);
    let queries_per_client: usize = args
        .next()
        .map(|a| a.parse().expect("QUERIES_PER_CLIENT must be a number"))
        .unwrap_or(200);
    report::banner(
        "server-load",
        "concurrent clients hammering one shared world over the TCP wire",
    );

    let session = Arc::new(world());
    // Warm the replicate cache so the measurement is steady-state serving,
    // not one client paying the one-time simulation cost.
    for sql in WORKLOAD {
        session
            .sql(sql)
            .unwrap_or_else(|e| panic!("warmup {sql}: {e}"));
    }
    let config = ServerConfig {
        workers: clients,
        max_concurrent_queries: clients,
        ..ServerConfig::default()
    };
    let server =
        ThemisServer::bind("127.0.0.1:0", Arc::clone(&session), config).expect("bind");
    let handle = server.handle();
    let addr = server.local_addr();

    let mut outcomes = rayon::Pool::new(2)
        .try_par_indexed(2, |task| {
            if task == 0 {
                server.serve().expect("serve");
                None
            } else {
                let start = Instant::now();
                let per_client = rayon::Pool::new(clients)
                    .try_par_indexed(clients, |slot| drive_client(addr, slot, queries_per_client))
                    .expect("client pool");
                let wall = start.elapsed().as_secs_f64();
                // Pull the server's own counters before shutting it down.
                let mut observer = Client::connect(addr).expect("connect");
                let stats = observer.stats().expect("transport").expect("stats");
                let metrics = observer.metrics().expect("transport").expect("metrics");
                handle.shutdown();
                Some((per_client, wall, stats, metrics))
            }
        })
        .expect("orchestration pool");
    let (per_client, wall, stats, registry) = outcomes
        .pop()
        .flatten()
        .expect("driver task reports its measurements");

    let latencies: Vec<f64> = per_client.into_iter().flatten().collect();
    let total = latencies.len();
    let qps = total as f64 / wall;
    let p50 = metrics::percentile(&latencies, 50.0) * 1e3;
    let p99 = metrics::percentile(&latencies, 99.0) * 1e3;
    let mean = latencies.iter().sum::<f64>() / total as f64 * 1e3;

    let route_mix: Vec<(String, Jv)> = ["sample", "bayes_net", "hybrid", "degraded"]
        .iter()
        .map(|k| {
            let count = stats
                .get("routes")
                .and_then(|r| r.get(k))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            ((*k).to_string(), Jv::Int(count))
        })
        .collect();

    report::table(
        &["clients", "queries", "wall s", "QPS", "p50 ms", "p99 ms", "mean ms"],
        &[vec![
            clients.to_string(),
            total.to_string(),
            report::f(wall),
            report::f(qps),
            report::f(p50),
            report::f(p99),
            report::f(mean),
        ]],
    );
    println!(
        "\nroute mix (server counters): {}",
        route_mix
            .iter()
            .map(|(k, v)| match v {
                Jv::Int(n) => format!("{k}={n}"),
                _ => String::new(),
            })
            .collect::<Vec<_>>()
            .join(" "),
    );

    let record = Jv::Obj(vec![
        ("bench".into(), Jv::Str("server_load".into())),
        ("clients".into(), Jv::Int(clients as u64)),
        (
            "queries_per_client".into(),
            Jv::Int(queries_per_client as u64),
        ),
        ("total_queries".into(), Jv::Int(total as u64)),
        ("wall_s".into(), Jv::Num(wall)),
        ("qps".into(), Jv::Num(qps)),
        ("p50_ms".into(), Jv::Num(p50)),
        ("p99_ms".into(), Jv::Num(p99)),
        ("mean_ms".into(), Jv::Num(mean)),
        ("route_mix".into(), Jv::Obj(route_mix)),
        (
            "workload".into(),
            Jv::Arr(WORKLOAD.iter().map(|s| Jv::Str((*s).to_string())).collect()),
        ),
    ]);
    match report::write_bench_json("server", &record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_server.json: {e}"),
    }

    // Metrics smoke (CI gate): the registry's `metrics` op must agree with
    // the load we just generated — exactly `total` queries counted, and
    // the latency histogram saw every one of them.
    let registry_queries = registry
        .get("server.queries")
        .and_then(Json::as_u64)
        .expect("metrics export carries server.queries");
    assert_eq!(
        registry_queries, total as u64,
        "metrics registry disagrees with the driven load"
    );
    let latency_count = registry
        .get("server.query_latency_us")
        .and_then(|h| h.get("count"))
        .and_then(Json::as_u64)
        .expect("metrics export carries the latency histogram");
    assert_eq!(
        latency_count, total as u64,
        "latency histogram missed successful queries"
    );
    println!("metrics-smoke: ok (queries={registry_queries})");
}
