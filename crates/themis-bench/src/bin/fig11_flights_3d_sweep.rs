//! Fig. 11: average percent difference on Flights SCorners and June as 3-D
//! aggregates are added after the five 1-D marginals, with the 4-2D hybrid
//! error as a reference line (3-D knowledge converges faster).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_bench::methods::{average_error, Method};
use themis_bench::report::{banner, f, table};
use themis_bench::setup::{flights_setup, Scale};
use themis_bench::workload::{attr_subsets, pick_point_queries, Hitter};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 11",
        "Flights: adding 3D aggregates after the 5 1D marginals",
    );
    let setup = flights_setup(&scale);
    let n = setup.population.len() as f64;
    let sets = attr_subsets(&setup.aggregate_attrs, 2..=4);
    let mut rng = SmallRng::seed_from_u64(11);
    let queries = pick_point_queries(
        &setup.population,
        &sets,
        Hitter::Random,
        scale.queries,
        &mut rng,
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (sample_name, sample) in setup
        .samples
        .iter()
        .filter(|(name, _)| *name == "SCorners" || *name == "June")
    {
        // Reference: hybrid with 5 1D + 4 2D aggregates.
        let ref_aggs = setup.aggregates_1d_plus(2, 4);
        let ref_err = average_error(sample, &ref_aggs, n, Method::Hybrid, &queries);
        for b in 0..=4usize {
            let aggs = setup.aggregates_1d_plus(3, b);
            let mut row = vec![(*sample_name).to_string(), b.to_string()];
            for method in Method::HEADLINE {
                row.push(f(average_error(sample, &aggs, n, method, &queries)));
            }
            row.push(f(ref_err));
            rows.push(row);
        }
    }
    table(
        &["sample", "3D B", "AQP", "IPF", "BB", "Hybrid", "4-2D ref"],
        &rows,
    );
}
