//! Table 3: the 2-D and 3-D aggregates chosen by the t-cherry pruning
//! technique for Flights and IMDB (budget B = 4).

use themis_bench::report::{banner, table};
use themis_bench::setup::{flights_setup, imdb_setup, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Table 3", "aggregate attributes chosen by the pruning technique");

    let mut rows: Vec<Vec<String>> = Vec::new();
    for setup in [flights_setup(&scale), imdb_setup(&scale)] {
        let schema = setup.population.schema().clone();
        for (d, menu) in [(2usize, &setup.aggregates_2d), (3, &setup.aggregates_3d)] {
            for (b, agg) in menu.iter().enumerate() {
                let names: Vec<&str> = agg
                    .attrs()
                    .iter()
                    .map(|&a| schema.attr(a).name())
                    .collect();
                rows.push(vec![
                    setup.name.to_string(),
                    d.to_string(),
                    (b + 1).to_string(),
                    names.join(" & "),
                ]);
            }
        }
    }
    table(&["Dataset", "d", "B", "Attributes"], &rows);
}
