//! Table 5 + Fig. 6: the six IDEBench-style SQL queries on the Corners
//! sample at 100% and 98% bias, reporting the average percent difference
//! across returned groups per method.
//!
//! Queries Q1–Q6 are the paper's Table 5 adapted to the synthetic flights
//! schema (`E < 120 min` becomes the lower third of elapsed-time buckets;
//! Q6's layover states use two low-traffic states).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use themis_bench::report::{banner, f, table};
use themis_bench::setup::{flights_setup, Scale};
use themis_core::metrics::percent_difference;
use themis_core::{ReweightMethod, Themis, ThemisConfig, ThemisSession};
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};
use themis_data::Relation;
use themis_query::{Catalog, EngineOptions, QueryResult};

const QUERIES: [(&str, &str); 6] = [
    ("Q1", "SELECT origin_state, AVG(elapsed_time) FROM F GROUP BY origin_state"),
    ("Q2", "SELECT origin_state, AVG(elapsed_time) FROM F WHERE dest_state = 'CA' GROUP BY origin_state"),
    ("Q3", "SELECT dest_state, AVG(elapsed_time) FROM F WHERE origin_state = 'CA' GROUP BY dest_state"),
    ("Q4", "SELECT origin_state, COUNT(*) FROM F WHERE elapsed_time < 4 GROUP BY origin_state"),
    ("Q5", "SELECT dest_state, COUNT(*) FROM F WHERE elapsed_time < 4 GROUP BY dest_state"),
    (
        "Q6",
        "SELECT t.origin_state, s.dest_state, COUNT(*) FROM F t, F s \
         WHERE t.dest_state = s.origin_state AND t.dest_state IN ('CO', 'MN') \
         GROUP BY t.origin_state, s.dest_state",
    ),
];

/// Average percent difference between a true and estimated result over the
/// union of groups (first aggregate column).
fn result_error(truth: &QueryResult, est: &QueryResult) -> f64 {
    let t = truth.to_map();
    let e = est.to_map();
    let keys: std::collections::HashSet<&Vec<String>> = t.keys().chain(e.keys()).collect();
    if keys.is_empty() {
        return 0.0;
    }
    let total: f64 = keys
        .iter()
        .map(|k| {
            let tv = t.get(*k).map(|v| v[0]).unwrap_or(0.0);
            let ev = e.get(*k).map(|v| v[0]).unwrap_or(0.0);
            percent_difference(tv, ev)
        })
        .sum();
    total / keys.len() as f64
}

fn truth_result(population: &Relation, sql: &str) -> QueryResult {
    let mut catalog = Catalog::new();
    catalog.register("F", population.clone());
    themis_query::run_sql(&catalog, sql, &EngineOptions::default()).expect("population query")
}

fn main() {
    if std::env::args().any(|a| a == "--k-sweep") {
        k_sweep();
        return;
    }
    let scale = Scale::from_env();
    banner(
        "Fig. 6 / Table 5",
        "six SQL queries on Corners (100% bias, 'C') vs SCorners-98 ('SC')",
    );
    let setup = flights_setup(&scale);
    let aggregates = setup.aggregates_2d_set(4);
    let n = setup.population.len() as f64;
    let dataset = FlightsDataset::generate(FlightsConfig {
        n: scale.flights_n,
        ..Default::default()
    });
    let mut rng = SmallRng::seed_from_u64(6);
    let bn_size = scale.bn_sample_size;

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (bias_name, bias) in [("C", 1.0), ("SC", 0.98)] {
        let sample = dataset.sample_corners_with_bias(bias, &mut rng);

        let aqp = ThemisSession::new(Themis::build(
            sample.clone(),
            aggregates.clone(),
            n,
            ThemisConfig {
                reweighting: ReweightMethod::Uniform,
                bn_mode: None,
                ..ThemisConfig::default()
            },
        ));
        let ipf = ThemisSession::new(Themis::build(
            sample.clone(),
            aggregates.clone(),
            n,
            ThemisConfig {
                bn_mode: None,
                ..ThemisConfig::default()
            },
        ));
        // One session per model: the BN replicates are simulated once and
        // shared by the BB and Hybrid rows of every query.
        let hybrid = ThemisSession::new(Themis::build(
            sample.clone(),
            aggregates.clone(),
            n,
            ThemisConfig {
                bn_sample_size: Some(bn_size),
                ..ThemisConfig::default()
            },
        ));

        for (qname, sql) in QUERIES {
            let truth = truth_result(&setup.population, sql);
            let errors: HashMap<&str, f64> = [
                ("AQP", result_error(&truth, &aqp.sql_sample_only(sql).expect("aqp").result)),
                ("IPF", result_error(&truth, &ipf.sql_sample_only(sql).expect("ipf").result)),
                ("BB", result_error(&truth, &hybrid.sql_bn_only(sql).expect("bb").result)),
                ("Hybrid", result_error(&truth, &hybrid.sql(sql).expect("hybrid").result)),
            ]
            .into_iter()
            .collect();
            rows.push(vec![
                qname.to_string(),
                bias_name.to_string(),
                f(errors["AQP"]),
                f(errors["IPF"]),
                f(errors["BB"]),
                f(errors["Hybrid"]),
            ]);
        }
    }
    table(&["query", "sample", "AQP", "IPF", "BB", "Hybrid"], &rows);
    println!("\nTable 5 queries:");
    for (name, sql) in QUERIES {
        println!("  {name}: {sql}");
    }
}

/// The §4.2.4 ablation promised in DESIGN.md: as K (the number of BN sample
/// replicates) grows, phantom groups — groups returned that do not exist in
/// the population — are damped because a group must appear in *all* K
/// replicates.
fn k_sweep() {
    let scale = Scale::from_env();
    banner(
        "Fig. 6 --k-sweep",
        "phantom groups vs the number of BN replicates K (§4.2.4)",
    );
    let setup = flights_setup(&scale);
    let aggregates = setup.aggregates_2d_set(4);
    let n = setup.population.len() as f64;
    let dataset = FlightsDataset::generate(FlightsConfig {
        n: scale.flights_n,
        ..Default::default()
    });
    let mut rng = SmallRng::seed_from_u64(46);
    let sample = dataset.sample_corners_with_bias(1.0, &mut rng);
    // A phantom-prone query: state-pair groups under a long-haul filter
    // are sparse in the population, so BN replicates can invent pairs.
    let sql = "SELECT origin_state, dest_state, COUNT(*) FROM F \
               WHERE distance >= 9 GROUP BY origin_state, dest_state";
    let truth = truth_result(&setup.population, sql).to_map();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for k in [1usize, 3, 5, 10, 20] {
        let model = ThemisSession::new(Themis::build(
            sample.clone(),
            aggregates.clone(),
            n,
            ThemisConfig {
                k_samples: k,
                bn_sample_size: Some(scale.bn_sample_size),
                ..ThemisConfig::default()
            },
        ));
        let answer = model.sql_bn_only(sql).expect("bn answer").result.to_map();
        let phantoms = answer.keys().filter(|g| !truth.contains_key(*g)).count();
        let missed = truth.keys().filter(|g| !answer.contains_key(*g)).count();
        rows.push(vec![
            k.to_string(),
            answer.len().to_string(),
            phantoms.to_string(),
            missed.to_string(),
        ]);
    }
    table(&["K", "groups returned", "phantoms", "missed"], &rows);
}
