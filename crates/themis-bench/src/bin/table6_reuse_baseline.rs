//! Table 6: error ratio of Themis relative to the reuse-based AQP baseline
//! of Galakatos et al. \[33\] for `GROUP BY` queries over O-DE and DT-DE, as
//! the Corners bias decreases, with a single 1-D aggregate over O.
//!
//! For O-DE the baseline rewrites the joint with the known O distribution
//! times the sample conditional; for DT-DE it cannot use the aggregate and
//! degenerates to uniform reweighting.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_bench::report::{banner, table};
use themis_bench::setup::Scale;
use themis_core::baselines::{reuse_group_by, reuse_group_by_uniform};
use themis_core::{group_by_error, Themis, ThemisConfig};
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table 6",
        "error ratio Themis / reuse-baseline [33] (1 1D aggregate over O)",
    );
    let dataset = FlightsDataset::generate(FlightsConfig {
        n: scale.flights_n,
        ..Default::default()
    });
    let attrs = FlightsDataset::attrs();
    let pop = &dataset.population;
    let n = pop.len() as f64;
    let known_o = AggregateResult::compute(pop, &[attrs.o]);
    let aggregates = AggregateSet::from_results(vec![known_o.clone()]);
    let mut rng = SmallRng::seed_from_u64(66);

    let truth_ode = pop.group_counts(&[attrs.o, attrs.de]);
    let truth_dtde = pop.group_counts(&[attrs.dt, attrs.de]);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row_ode = vec!["O-DE".to_string()];
    let mut row_dtde = vec!["DT-DE".to_string()];
    let biases = [100u32, 98, 96, 94, 92, 90];
    for bias_pct in biases {
        let sample = dataset.sample_corners_with_bias(bias_pct as f64 / 100.0, &mut rng);
        let themis = Themis::build(
            sample.clone(),
            aggregates.clone(),
            n,
            ThemisConfig {
                bn_sample_size: Some(scale.bn_sample_size),
                ..ThemisConfig::default()
            },
        );

        // O-DE: reuse can leverage the known O distribution.
        let themis_ode = themis.group_by(&[attrs.o, attrs.de]);
        let reuse_ode = reuse_group_by(&sample, &known_o, attrs.o, attrs.de);
        let ratio_ode =
            group_by_error(&truth_ode, &themis_ode) / group_by_error(&truth_ode, &reuse_ode);
        row_ode.push(format!("{ratio_ode:.2}"));

        // DT-DE: the aggregate does not cover DT — reuse falls back to AQP.
        let themis_dtde = themis.group_by(&[attrs.dt, attrs.de]);
        let reuse_dtde = reuse_group_by_uniform(&sample, n, attrs.dt, attrs.de);
        let ratio_dtde =
            group_by_error(&truth_dtde, &themis_dtde) / group_by_error(&truth_dtde, &reuse_dtde);
        row_dtde.push(format!("{ratio_dtde:.2}"));
    }
    rows.push(row_ode);
    rows.push(row_dtde);
    let headers: Vec<String> = std::iter::once("Bias".to_string())
        .chain(biases.iter().map(|b| b.to_string()))
        .collect();
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    table(&hrefs, &rows);
    println!("\n(ratio < 1 means Themis has lower error than the reuse baseline)");
}
