//! Fig. 14: the two sample-reweighting techniques (LinReg vs IPF) against
//! AQP over the four Flights samples with 4 2-D aggregates. IPF wins on the
//! biased samples because LinReg leaks weight through correlated attributes
//! (DT ↔ E). Also reports the unconstrained-LinReg ablation of DESIGN.md.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_bench::methods::{build_model, eval_point_queries, Method};
use themis_bench::report::{banner, f, summarize, table};
use themis_bench::setup::{flights_setup, Scale};
use themis_bench::workload::{attr_subsets, pick_point_queries, Hitter};
use themis_core::metrics::percent_difference;
use themis_core::{ReweightMethod, Themis, ThemisConfig};
use themis_reweight::LinRegOptions;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 14",
        "LinReg vs IPF vs AQP on the four Flights samples (4 2D aggregates)",
    );
    let setup = flights_setup(&scale);
    let n = setup.population.len() as f64;
    let aggregates = setup.aggregates_2d_set(4);
    let sets = attr_subsets(&setup.aggregate_attrs, 2..=4);
    let mut rng = SmallRng::seed_from_u64(14);
    let queries = pick_point_queries(
        &setup.population,
        &sets,
        Hitter::Random,
        scale.queries,
        &mut rng,
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (sample_name, sample) in &setup.samples {
        for method in [Method::Aqp, Method::LinReg, Method::Ipf] {
            let model = build_model(sample, &aggregates, n, method);
            let s = summarize(&eval_point_queries(&model, method, &queries));
            rows.push(vec![
                (*sample_name).into(),
                method.name().into(),
                f(s.p25),
                f(s.p50),
                f(s.p75),
                f(s.mean),
            ]);
        }
        // Ablation: unconstrained least squares (β free) — shows why the
        // paper constrains β ≥ 0.
        let unconstrained = Themis::build(
            sample.clone(),
            aggregates.clone(),
            n,
            ThemisConfig {
                reweighting: ReweightMethod::LinReg(LinRegOptions {
                    nonnegative: false,
                    intercept_row: true,
                }),
                bn_mode: None,
                ..ThemisConfig::default()
            },
        );
        let errors: Vec<f64> = queries
            .iter()
            .map(|q| {
                percent_difference(
                    q.truth,
                    unconstrained.point_query_sample(&q.attrs, &q.values),
                )
            })
            .collect();
        let s = summarize(&errors);
        rows.push(vec![
            (*sample_name).into(),
            "LinReg(unconstrained)".into(),
            f(s.p25),
            f(s.p50),
            f(s.p75),
            f(s.mean),
        ]);
    }
    table(&["sample", "method", "p25", "p50", "p75", "mean"], &rows);
}
