//! Table 1: the motivating example of §2.
//!
//! A data scientist estimates the number of short flights per origin state
//! from a sample biased towards four major states, comparing: the raw
//! sample, uniform rescaling (default AQP), state-marginal reweighting
//! ("US State"), and Themis.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_bench::report::{banner, f, table};
use themis_bench::setup::Scale;
use themis_core::{ReweightMethod, Themis, ThemisConfig};
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};

fn main() {
    let scale = Scale::from_env();
    banner("Table 1", "motivating example: short flights per origin state");

    let dataset = FlightsDataset::generate(FlightsConfig {
        n: scale.flights_n,
        ..Default::default()
    });
    let attrs = FlightsDataset::attrs();
    let mut rng = SmallRng::seed_from_u64(1);
    let sample = dataset.sample_scorners(&mut rng);
    let n = dataset.population_size() as f64;

    // "Short" flights: the smallest elapsed-time bucket.
    let short_bucket = 0u32;
    let pop = &dataset.population;

    // US State: reweight on the origin-state marginal only (what the
    // scientist would do by hand with N/n per state).
    let state_agg = AggregateSet::from_results(vec![AggregateResult::compute(pop, &[attrs.o])]);
    let us_state = Themis::build(
        sample.clone(),
        state_agg.clone(),
        n,
        ThemisConfig {
            bn_mode: None,
            ..ThemisConfig::default()
        },
    );

    // Themis proper: state marginal + month marginal + (O, DT) aggregate,
    // hybrid evaluation.
    let themis_aggs = AggregateSet::from_results(vec![
        AggregateResult::compute(pop, &[attrs.o]),
        AggregateResult::compute(pop, &[attrs.f]),
        AggregateResult::compute(pop, &[attrs.o, attrs.e]),
    ]);
    let themis = Themis::build(sample.clone(), themis_aggs, n, ThemisConfig::default());

    let aqp = Themis::build(
        sample.clone(),
        AggregateSet::new(),
        n,
        ThemisConfig {
            reweighting: ReweightMethod::Uniform,
            bn_mode: None,
            ..ThemisConfig::default()
        },
    );

    // CA (heavy, in the bias), TX / OH-style mid states (underrepresented),
    // and UT (rare, likely missing from the sample).
    let rows: Vec<Vec<String>> = ["CA", "TX", "OH", "UT"]
        .iter()
        .map(|state| {
            let sid = pop.schema().domain(attrs.o).id_of(state).expect("state");
            let q_attrs = [attrs.e, attrs.o];
            let q_vals = [short_bucket, sid];
            let truth = pop.point_count(&q_attrs, &q_vals);
            let raw = sample.point_count(&q_attrs, &q_vals);
            let aqp_est = aqp.point_query_sample(&q_attrs, &q_vals);
            let state_est = us_state.point_query_sample(&q_attrs, &q_vals);
            let themis_est = themis.point_query(&q_attrs, &q_vals);
            vec![
                state.to_string(),
                f(truth),
                f(raw),
                f(aqp_est),
                f(state_est),
                f(themis_est),
            ]
        })
        .collect();

    table(&["Query", "True", "Raw", "AQP", "US State", "Themis"], &rows);
    println!();
    println!(
        "(population n = {}, sample n_S = {}, sample biased 90% to CA/NY/FL/WA)",
        dataset.population_size(),
        sample.len()
    );
}
