//! Fig. 3 + Table 4: heavy- and light-hitter point-query percent difference
//! for the four Flights samples (Unif, June, SCorners, Corners) with B = 4
//! 2-D aggregates, comparing AQP, IPF, BB, and Hybrid; Table 4 reports the
//! percentile improvement of Hybrid over AQP.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_bench::methods::{build_model, eval_point_queries, Method};
use themis_bench::report::{banner, f, summarize, table, Summary};
use themis_bench::setup::{flights_setup, Scale};
use themis_bench::workload::{attr_subsets, pick_point_queries, Hitter};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 3 / Table 4",
        "Flights heavy & light hitter percent difference (B = 4 2D aggregates)",
    );
    let setup = flights_setup(&scale);
    let aggregates = setup.aggregates_2d_set(4);
    let sets = attr_subsets(&setup.aggregate_attrs, 2..=4);
    let mut rng = SmallRng::seed_from_u64(3);

    let mut fig_rows: Vec<Vec<String>> = Vec::new();
    let mut table4: Vec<Vec<String>> = Vec::new();
    for hitter in [Hitter::Heavy, Hitter::Light] {
        for (sample_name, sample) in &setup.samples {
            let queries = pick_point_queries(
                &setup.population,
                &sets,
                hitter,
                scale.queries,
                &mut rng,
            );
            let mut summaries: Vec<(Method, Summary)> = Vec::new();
            for method in Method::HEADLINE {
                let model = build_model(
                    sample,
                    &aggregates,
                    setup.population.len() as f64,
                    method,
                );
                let errors = eval_point_queries(&model, method, &queries);
                let s = summarize(&errors);
                fig_rows.push(vec![
                    hitter.name().into(),
                    (*sample_name).into(),
                    method.name().into(),
                    f(s.p25),
                    f(s.p50),
                    f(s.p75),
                    f(s.mean),
                ]);
                summaries.push((method, s));
            }
            // Table 4: improvement of hybrid over AQP per percentile.
            let aqp = summaries
                .iter()
                .find(|(m, _)| *m == Method::Aqp)
                .expect("AQP in headline")
                .1;
            let hyb = summaries
                .iter()
                .find(|(m, _)| *m == Method::Hybrid)
                .expect("Hybrid in headline")
                .1;
            let improvement = |a: f64, h: f64| {
                if h == 0.0 {
                    f64::INFINITY
                } else {
                    (a - h) / h
                }
            };
            table4.push(vec![
                hitter.name().into(),
                (*sample_name).into(),
                f(improvement(aqp.p25, hyb.p25)),
                f(improvement(aqp.p50, hyb.p50)),
                f(improvement(aqp.p75, hyb.p75)),
            ]);
        }
    }

    println!("\nFig. 3 — percent-difference distribution per sample and method:");
    table(
        &["hitters", "sample", "method", "p25", "p50", "p75", "mean"],
        &fig_rows,
    );
    println!("\nTable 4 — improvement of Hybrid over AQP ((AQP − Hybrid)/Hybrid) per percentile:");
    table(&["hitters", "sample", "p25", "p50", "p75"], &table4);
}
