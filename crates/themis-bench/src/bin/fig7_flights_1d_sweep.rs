//! Fig. 7: average percent difference on Flights SCorners and June as 1-D
//! aggregates are added in order A (F, O, DE, E, DT) and order B (reverse).
//! The big accuracy jump lands when the bias-inducing attribute's marginal
//! arrives (O for SCorners, F for June).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_bench::methods::{average_error, Method};
use themis_bench::report::{banner, f, table};
use themis_bench::setup::{flights_setup, Scale};
use themis_bench::workload::{attr_subsets, pick_point_queries, Hitter};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 7",
        "Flights: adding 1D aggregates in order A and order B",
    );
    let setup = flights_setup(&scale);
    let n = setup.population.len() as f64;
    let sets = attr_subsets(&setup.aggregate_attrs, 2..=4);
    let mut rng = SmallRng::seed_from_u64(7);
    let queries = pick_point_queries(
        &setup.population,
        &sets,
        Hitter::Random,
        scale.queries,
        &mut rng,
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (sample_name, sample) in setup
        .samples
        .iter()
        .filter(|(name, _)| *name == "SCorners" || *name == "June")
    {
        for (order_name, reverse) in [("A", false), ("B", true)] {
            for b in 1..=5usize {
                let aggs = setup.aggregates_1d_set(b, reverse);
                let mut row = vec![
                    (*sample_name).to_string(),
                    order_name.to_string(),
                    b.to_string(),
                ];
                for method in Method::HEADLINE {
                    row.push(f(average_error(sample, &aggs, n, method, &queries)));
                }
                rows.push(row);
            }
        }
    }
    table(
        &["sample", "order", "1D B", "AQP", "IPF", "BB", "Hybrid"],
        &rows,
    );
}
