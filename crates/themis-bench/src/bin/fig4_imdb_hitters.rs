//! Fig. 4: heavy- and light-hitter point-query percent difference for the
//! four IMDB samples (Unif, GB, SR159, R159) with B = 4 2-D aggregates.
//! IMDB queries use 20 random 3-D attribute sets over *all* attributes
//! (including the dense `name`), per §6.3.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use themis_bench::methods::{build_model, eval_point_queries, Method};
use themis_bench::report::{banner, f, summarize, table};
use themis_bench::setup::{imdb_setup, Scale};
use themis_bench::workload::{pick_point_queries, random_attr_sets, Hitter};
use themis_data::AttrId;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Fig. 4",
        "IMDB heavy & light hitter percent difference (B = 4 2D aggregates)",
    );
    let setup = imdb_setup(&scale);
    let aggregates = setup.aggregates_2d_set(4);
    let all_attrs: Vec<AttrId> = setup.population.schema().attr_ids().collect();
    let mut rng = SmallRng::seed_from_u64(4);
    let sets = random_attr_sets(&all_attrs, 3, 20, &mut rng);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for hitter in [Hitter::Heavy, Hitter::Light] {
        for (sample_name, sample) in &setup.samples {
            let queries = pick_point_queries(
                &setup.population,
                &sets,
                hitter,
                scale.queries,
                &mut rng,
            );
            for method in Method::HEADLINE {
                let model = build_model(
                    sample,
                    &aggregates,
                    setup.population.len() as f64,
                    method,
                );
                let errors = eval_point_queries(&model, method, &queries);
                let s = summarize(&errors);
                rows.push(vec![
                    hitter.name().into(),
                    (*sample_name).into(),
                    method.name().into(),
                    f(s.p25),
                    f(s.p50),
                    f(s.p75),
                    f(s.mean),
                ]);
            }
        }
    }
    table(
        &["hitters", "sample", "method", "p25", "p50", "p75", "mean"],
        &rows,
    );
}
