//! Criterion version of Table 8: learning times (LinReg, IPF, BB structure
//! and parameters) as aggregate knowledge grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use themis_bench::setup::{imdb_setup, Scale};
use themis_bn::parameters::{learn_parameters, ParamOptions, ParamSource};
use themis_bn::{learn_structure, StructureOptions, StructureSource};
use themis_reweight::{ipf_weights, linreg_weights, IpfOptions, LinRegOptions};

fn bench_solvers(c: &mut Criterion) {
    let scale = Scale {
        imdb_n: 20_000,
        imdb_names: 2_000,
        ..Scale::from_env()
    };
    let setup = imdb_setup(&scale);
    let n = setup.population.len() as f64;
    let sample = &setup.samples[2].1; // SR159

    let mut group = c.benchmark_group("table8_solver_time");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for b in [1usize, 4] {
        let aggs = setup.aggregates_1d_plus(2, b);
        group.bench_with_input(BenchmarkId::new("linreg", b), &aggs, |bench, aggs| {
            bench.iter(|| black_box(linreg_weights(sample, aggs, n, &LinRegOptions::default())))
        });
        group.bench_with_input(BenchmarkId::new("ipf", b), &aggs, |bench, aggs| {
            bench.iter(|| black_box(ipf_weights(sample, aggs, &IpfOptions::default())))
        });
        group.bench_with_input(BenchmarkId::new("bb_structure", b), &aggs, |bench, aggs| {
            bench.iter(|| {
                black_box(learn_structure(
                    sample,
                    aggs,
                    n,
                    StructureSource::Both,
                    &StructureOptions::default(),
                ))
            })
        });
        let parents = learn_structure(
            sample,
            &aggs,
            n,
            StructureSource::Both,
            &StructureOptions::default(),
        );
        group.bench_with_input(BenchmarkId::new("bb_parameters", b), &aggs, |bench, aggs| {
            bench.iter(|| {
                black_box(learn_parameters(
                    sample,
                    aggs,
                    n,
                    parents.clone(),
                    ParamSource::Both,
                    &ParamOptions::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
