//! Reweighter scaling: LinReg vs IPF as the sample grows. LinReg solves for
//! m^{0/1} parameters, IPF for n_S — their scaling differs accordingly
//! (§4.1: "linear regression is over constrained while IPF is under
//! constrained").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};
use themis_data::sampling::SampleSpec;
use themis_reweight::{ipf_weights, linreg_weights, IpfOptions, LinRegOptions};

fn bench_reweight_scaling(c: &mut Criterion) {
    let dataset = FlightsDataset::generate(FlightsConfig {
        n: 60_000,
        ..Default::default()
    });
    let attrs = FlightsDataset::attrs();
    let pop = &dataset.population;
    let n = pop.len() as f64;
    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(pop, &[attrs.o]),
        AggregateResult::compute(pop, &[attrs.o, attrs.de]),
        AggregateResult::compute(pop, &[attrs.e, attrs.dt]),
    ]);
    let mut rng = SmallRng::seed_from_u64(1);

    let mut group = c.benchmark_group("reweight_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for ns in [1_000usize, 4_000, 16_000] {
        let sample = SampleSpec::uniform(ns as f64 / n).draw(pop, &mut rng);
        group.bench_with_input(BenchmarkId::new("linreg", ns), &sample, |b, s| {
            b.iter(|| black_box(linreg_weights(s, &aggregates, n, &LinRegOptions::default())))
        });
        group.bench_with_input(BenchmarkId::new("ipf", ns), &sample, |b, s| {
            b.iter(|| black_box(ipf_weights(s, &aggregates, &IpfOptions::default())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reweight_scaling);
criterion_main!(benches);
