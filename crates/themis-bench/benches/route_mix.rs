//! Route mix and per-route latency of the open-world session (ROADMAP
//! item 6: the route-mix bench emits `BENCH_routes.json`).
//!
//! Not a criterion target: this bench builds a biased-sample world where
//! every §4.3 route genuinely fires — scalar queries stay on the reweighted
//! sample, grouped queries go hybrid (sample groups + BN-agreed open-world
//! groups), and point predicates on labels absent from the sample route to
//! pure BN inference — then times each route and tallies the route mix of a
//! rotating mixed workload, exactly as the server exports it per
//! connection.

use std::time::Instant;
use themis_bench::report::{self, Jv};
use themis_core::{Route, Themis, ThemisConfig, ThemisSession, TraceSpan};
use themis_data::{AttrId, Attribute, Domain, Relation, Schema};
use themis_query::EngineOptions;

const REPS: usize = 7;
const MIXED_QUERIES: usize = 300;

/// Best-of-`REPS` wall-clock seconds.
fn best_of<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// A 50 000-row population over moderate domains, sampled with a hard bias
/// (`a < 10` only), so labels `a = 10..16` exist in the aggregates but not
/// in the sample: the open-world gap every route decision is about.
fn world() -> ThemisSession {
    let sizes = [16usize, 12, 8];
    let schema = Schema::new(vec![
        Attribute::new("a", Domain::indexed("a", sizes[0])),
        Attribute::new("b", Domain::indexed("b", sizes[1])),
        Attribute::new("c", Domain::indexed("c", sizes[2])),
    ]);
    let mut pop = Relation::new(schema);
    for i in 0..50_000usize {
        pop.push_row(&[
            ((i * 7 + i / 13) % sizes[0]) as u32,
            ((i * 5 + 1) % sizes[1]) as u32,
            ((i * 11 + i / 7) % sizes[2]) as u32,
        ]);
    }
    let aggregates = themis_aggregates::AggregateSet::from_results(vec![
        themis_aggregates::AggregateResult::compute(&pop, &[AttrId(0)]),
        themis_aggregates::AggregateResult::compute(&pop, &[AttrId(1), AttrId(2)]),
    ]);
    let n = pop.len() as f64;
    let rows: Vec<usize> = (0..pop.len())
        .filter(|&r| pop.value(r, AttrId(0)) < 10)
        .take(5_000)
        .collect();
    let sample = pop.select_rows(&rows);
    let config = ThemisConfig {
        bn_sample_size: Some(2_000),
        ..ThemisConfig::default()
    };
    ThemisSession::new(Themis::build(sample, aggregates, n, config))
}

/// Flatten a span tree into `(path, elapsed_us)` rows, depth-first, summing
/// repeated paths (per-replicate spans) into the first occurrence so the
/// attribution stays one row per distinct phase.
fn flatten_spans(spans: &[TraceSpan], prefix: &str, out: &mut Vec<(String, u64)>) {
    for span in spans {
        let path = if prefix.is_empty() {
            span.name.clone()
        } else {
            format!("{prefix}/{}", span.name)
        };
        match out.iter_mut().find(|(p, _)| *p == path) {
            Some(slot) => slot.1 += span.elapsed_us,
            None => out.push((path.clone(), span.elapsed_us)),
        }
        flatten_spans(&span.children, &path, out);
    }
}

/// Best-of-`REPS` traced run of one query: the span attribution of the
/// fastest repetition (fastest, so the attribution matches `best_ms` rather
/// than averaging scheduler noise in).
fn best_attribution(session: &ThemisSession, sql: &str) -> Vec<(String, u64)> {
    let mut best_total = u64::MAX;
    let mut best = Vec::new();
    for _ in 0..REPS {
        let analyzed = session.analyze(sql).expect(sql);
        let total: u64 = analyzed.trace.spans.iter().map(|s| s.elapsed_us).sum();
        if total < best_total {
            best_total = total;
            best.clear();
            flatten_spans(&analyzed.trace.spans, "", &mut best);
        }
    }
    best
}

fn route_kind(route: &Route) -> &'static str {
    match route {
        Route::Sample => "sample",
        Route::BayesNet { .. } => "bayes_net",
        Route::Hybrid { .. } => "hybrid",
        Route::Degraded { .. } => "degraded",
    }
}

fn main() {
    report::banner(
        "route-mix",
        "per-route latency and route distribution of a mixed open-world workload",
    );
    let session = world();
    let engine = EngineOptions::default();

    // One workload per route the decision function can pick.
    let workloads: [(&str, &str, &str); 4] = [
        ("scalar_sample", "SELECT COUNT(*) AS n FROM t", "sample"),
        (
            "grouped_hybrid",
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a",
            "hybrid",
        ),
        (
            "bn_point",
            "SELECT COUNT(*) AS n FROM t WHERE a = '12'",
            "bayes_net",
        ),
        (
            "grouped_filtered",
            "SELECT b, COUNT(*) AS n, AVG(c) FROM t WHERE a <> 3 GROUP BY b ORDER BY n DESC",
            "hybrid",
        ),
    ];

    let mut rows = Vec::new();
    let mut span_rows = Vec::new();
    let mut json_workloads = Vec::new();
    for (name, sql, expected_route) in workloads {
        // Warm the replicate cache and pin the route before timing.
        let answer = session.sql_with(sql, &engine).expect(sql);
        assert_eq!(
            route_kind(&answer.route),
            expected_route,
            "{name}: route drifted"
        );
        let best = best_of(|| {
            std::hint::black_box(session.sql_with(sql, &engine).expect(sql));
        });
        rows.push(vec![
            name.to_string(),
            expected_route.to_string(),
            report::f(best * 1e3),
        ]);
        // Per-span attribution: where the route's wall time actually goes,
        // so a shift in `best_ms` is explainable from this record alone.
        let attribution = best_attribution(&session, sql);
        json_workloads.push(Jv::Obj(vec![
            ("name".into(), Jv::Str(name.into())),
            ("sql".into(), Jv::Str(sql.into())),
            ("route".into(), Jv::Str(expected_route.into())),
            ("best_ms".into(), Jv::Num(best * 1e3)),
            (
                "spans".into(),
                Jv::Arr(
                    attribution
                        .iter()
                        .map(|(path, us)| {
                            Jv::Obj(vec![
                                ("path".into(), Jv::Str(path.clone())),
                                ("best_us".into(), Jv::Int(*us)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
        for (path, us) in &attribution {
            span_rows.push(vec![name.to_string(), path.clone(), format!("{us}")]);
        }
    }
    report::table(&["workload", "route", "best ms"], &rows);
    println!();
    report::table(&["workload", "span", "best us"], &span_rows);

    // Mixed traffic: rotate through the workloads and tally what the
    // decision function actually picked, as the server's per-route
    // counters would.
    let mut counts = [("sample", 0u64), ("bayes_net", 0), ("hybrid", 0), ("degraded", 0)];
    let start = Instant::now();
    for i in 0..MIXED_QUERIES {
        let (_, sql, _) = workloads[i % workloads.len()];
        let answer = session.sql_with(sql, &engine).expect(sql);
        let kind = route_kind(&answer.route);
        if let Some(slot) = counts.iter_mut().find(|(k, _)| *k == kind) {
            slot.1 += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "\nmixed workload: {MIXED_QUERIES} queries in {:.2}s ({:.0} q/s); route mix: {}",
        elapsed,
        MIXED_QUERIES as f64 / elapsed,
        counts
            .iter()
            .map(|(k, c)| format!("{k}={c}"))
            .collect::<Vec<_>>()
            .join(" "),
    );

    let record = Jv::Obj(vec![
        ("bench".into(), Jv::Str("route_mix".into())),
        ("population_rows".into(), Jv::Int(50_000)),
        ("sample_rows".into(), Jv::Int(5_000)),
        ("reps".into(), Jv::Int(REPS as u64)),
        ("workloads".into(), Jv::Arr(json_workloads)),
        ("mixed_queries".into(), Jv::Int(MIXED_QUERIES as u64)),
        ("mixed_elapsed_s".into(), Jv::Num(elapsed)),
        (
            "mixed_qps".into(),
            Jv::Num(MIXED_QUERIES as f64 / elapsed),
        ),
        (
            "route_mix".into(),
            Jv::Obj(
                counts
                    .iter()
                    .map(|(k, c)| ((*k).to_string(), Jv::Int(*c)))
                    .collect(),
            ),
        ),
    ]);
    match report::write_bench_json("routes", &record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_routes.json: {e}"),
    }
}
