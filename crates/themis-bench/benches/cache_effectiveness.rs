//! Answer-cache effectiveness under a skewed interactive workload
//! (`BENCH_cache.json`): a Zipf-distributed stream of distinct plans is
//! replayed against a cache-enabled session and an identical uncached
//! session, and the per-query latency distributions are compared.
//!
//! Dashboards and interactive exploration re-ask a small set of hot
//! queries; Zipf is the standard model for that skew. The bench **asserts**
//! the cache earns its keep — cached p50 under 20% of uncached p50 — so a
//! regression that makes hits slow (or stops them happening) fails the
//! bench rather than just shifting a number.
//!
//! Not a criterion target: the interesting output is the latency quantile
//! split by hit/miss and the hit rate, not a single mean.

use std::time::Instant;
use themis_bench::report::{self, Jv};
use themis_core::{Themis, ThemisConfig, ThemisSession};
use themis_data::{AttrId, Attribute, Domain, Relation, Schema};
use themis_query::EngineOptions;

/// Distinct plans in the workload pool.
const DISTINCT_QUERIES: usize = 32;
/// Queries in the replayed stream.
const STREAM_LEN: usize = 1_200;
/// Answer-cache capacity — smaller than the pool, so cold-tail plans evict.
const CACHE_ENTRIES: usize = 24;
/// Acceptance: cached p50 must be below this fraction of uncached p50.
const P50_BUDGET: f64 = 0.20;

/// The same biased open-world dataset as `route_mix`, smaller so the
/// uncached arm stays fast enough to replay the full stream.
fn world() -> Themis {
    let sizes = [16usize, 12, 8];
    let schema = Schema::new(vec![
        Attribute::new("a", Domain::indexed("a", sizes[0])),
        Attribute::new("b", Domain::indexed("b", sizes[1])),
        Attribute::new("c", Domain::indexed("c", sizes[2])),
    ]);
    let mut pop = Relation::new(schema);
    for i in 0..20_000usize {
        pop.push_row(&[
            ((i * 7 + i / 13) % sizes[0]) as u32,
            ((i * 5 + 1) % sizes[1]) as u32,
            ((i * 11 + i / 7) % sizes[2]) as u32,
        ]);
    }
    let aggregates = themis_aggregates::AggregateSet::from_results(vec![
        themis_aggregates::AggregateResult::compute(&pop, &[AttrId(0)]),
        themis_aggregates::AggregateResult::compute(&pop, &[AttrId(1), AttrId(2)]),
    ]);
    let n = pop.len() as f64;
    let rows: Vec<usize> = (0..pop.len())
        .filter(|&r| pop.value(r, AttrId(0)) < 10)
        .take(3_000)
        .collect();
    let sample = pop.select_rows(&rows);
    let config = ThemisConfig {
        bn_sample_size: Some(1_000),
        ..ThemisConfig::default()
    };
    Themis::build(sample, aggregates, n, config)
}

/// The distinct-plan pool: grouped (hybrid-route) and filtered queries over
/// every attribute, varied by predicate value so each is its own
/// fingerprint.
fn query_pool() -> Vec<String> {
    let mut pool = Vec::with_capacity(DISTINCT_QUERIES);
    pool.push("SELECT a, COUNT(*) AS n FROM t GROUP BY a".to_string());
    pool.push("SELECT b, COUNT(*) AS n FROM t GROUP BY b".to_string());
    pool.push("SELECT c, COUNT(*) AS n FROM t GROUP BY c".to_string());
    pool.push("SELECT a, b, COUNT(*) AS n FROM t GROUP BY a, b ORDER BY n DESC LIMIT 12".to_string());
    for v in 0..10 {
        pool.push(format!(
            "SELECT b, COUNT(*) AS n FROM t WHERE a = '{v}' GROUP BY b"
        ));
    }
    for v in 0..10 {
        pool.push(format!(
            "SELECT a, COUNT(*) AS n, AVG(c) FROM t WHERE b <> {v} GROUP BY a"
        ));
    }
    for v in 0..8 {
        pool.push(format!(
            "SELECT b, c, COUNT(*) AS n FROM t WHERE a = '{v}' GROUP BY b, c"
        ));
    }
    assert_eq!(pool.len(), DISTINCT_QUERIES);
    pool
}

/// Deterministic Zipf(s = 1) sampling over `n` ranks via a fixed-seed LCG:
/// rank k is drawn proportionally to 1/(k+1). No process entropy, so every
/// run replays the identical stream.
struct Zipf {
    cumulative: Vec<f64>,
    state: u64,
}

impl Zipf {
    fn new(n: usize, seed: u64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / (k as f64 + 1.0);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf {
            cumulative,
            state: seed,
        }
    }

    fn next_rank(&mut self) -> usize {
        // Numerical Recipes LCG; the top bits feed a uniform in [0, 1).
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (self.state >> 11) as f64 / (1u64 << 53) as f64;
        self.cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

/// Replay the stream on one session, returning sorted per-query latencies
/// in microseconds.
fn replay(session: &ThemisSession, pool: &[String], stream: &[usize]) -> Vec<f64> {
    let engine = EngineOptions::default();
    let mut latencies = Vec::with_capacity(stream.len());
    for &rank in stream {
        let sql = &pool[rank];
        let start = Instant::now();
        std::hint::black_box(session.sql_with(sql, &engine).expect(sql));
        latencies.push(start.elapsed().as_secs_f64() * 1e6);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    latencies
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    report::banner(
        "cache-effectiveness",
        "answer-cache latency win on a Zipf-skewed interactive workload",
    );
    let pool = query_pool();
    let mut zipf = Zipf::new(pool.len(), 0xCAC4E);
    let stream: Vec<usize> = (0..STREAM_LEN).map(|_| zipf.next_rank()).collect();

    let model = world();
    let uncached = ThemisSession::new(model.clone());
    let cached = ThemisSession::new(model).with_answer_cache(CACHE_ENTRIES);

    // Warm both sessions' replicate caches outside the timed stream (the
    // one-time BN simulation would otherwise land on an arbitrary query).
    let engine = EngineOptions::default();
    for s in [&uncached, &cached] {
        s.sql_with(&pool[0], &engine).expect("warmup");
    }

    let uncached_lat = replay(&uncached, &pool, &stream);
    let cached_lat = replay(&cached, &pool, &stream);
    let snap = cached.live_snapshot();
    let served = snap.cache_hits + snap.cache_misses;
    let hit_rate = snap.cache_hits as f64 / served.max(1) as f64;

    let mut rows = Vec::new();
    for (name, lat) in [("uncached", &uncached_lat), ("cached", &cached_lat)] {
        rows.push(vec![
            name.to_string(),
            report::f(quantile(lat, 0.50)),
            report::f(quantile(lat, 0.90)),
            report::f(quantile(lat, 0.99)),
        ]);
    }
    report::table(&["arm", "p50 us", "p90 us", "p99 us"], &rows);
    println!(
        "\nhit rate: {:.1}% ({} hits, {} misses, {} evictions over {} distinct plans, cache {CACHE_ENTRIES})",
        hit_rate * 100.0,
        snap.cache_hits,
        snap.cache_misses,
        snap.cache_evictions,
        DISTINCT_QUERIES,
    );

    let uncached_p50 = quantile(&uncached_lat, 0.50);
    let cached_p50 = quantile(&cached_lat, 0.50);
    let ratio = cached_p50 / uncached_p50;
    println!(
        "p50: cached {:.1} us vs uncached {:.1} us ({:.1}% — budget {:.0}%)",
        cached_p50,
        uncached_p50,
        ratio * 100.0,
        P50_BUDGET * 100.0,
    );

    let record = Jv::Obj(vec![
        ("bench".into(), Jv::Str("cache_effectiveness".into())),
        ("population_rows".into(), Jv::Int(20_000)),
        ("sample_rows".into(), Jv::Int(3_000)),
        ("distinct_queries".into(), Jv::Int(DISTINCT_QUERIES as u64)),
        ("stream_len".into(), Jv::Int(STREAM_LEN as u64)),
        ("cache_entries".into(), Jv::Int(CACHE_ENTRIES as u64)),
        ("zipf_exponent".into(), Jv::Num(1.0)),
        ("uncached_p50_us".into(), Jv::Num(uncached_p50)),
        ("uncached_p90_us".into(), Jv::Num(quantile(&uncached_lat, 0.90))),
        ("uncached_p99_us".into(), Jv::Num(quantile(&uncached_lat, 0.99))),
        ("cached_p50_us".into(), Jv::Num(cached_p50)),
        ("cached_p90_us".into(), Jv::Num(quantile(&cached_lat, 0.90))),
        ("cached_p99_us".into(), Jv::Num(quantile(&cached_lat, 0.99))),
        ("p50_ratio".into(), Jv::Num(ratio)),
        ("hit_rate".into(), Jv::Num(hit_rate)),
        ("hits".into(), Jv::Int(snap.cache_hits)),
        ("misses".into(), Jv::Int(snap.cache_misses)),
        ("evictions".into(), Jv::Int(snap.cache_evictions)),
    ]);
    match report::write_bench_json("cache", &record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_cache.json: {e}"),
    }

    assert!(
        ratio < P50_BUDGET,
        "cache ineffective: cached p50 {cached_p50:.1} us is {:.1}% of uncached {uncached_p50:.1} us (budget {:.0}%)",
        ratio * 100.0,
        P50_BUDGET * 100.0,
    );
    println!("cache effectiveness within budget");
}
