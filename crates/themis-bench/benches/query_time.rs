//! Criterion version of Table 7: point-query execution time for the
//! reweighted sample (weighted scan) vs BN exact inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;
use themis_bench::methods::{answer_point, build_model, Method};
use themis_bench::setup::{imdb_setup, Scale};
use themis_bench::workload::{pick_point_queries, random_attr_sets, Hitter};
use themis_bn::LearnMode;
use themis_data::AttrId;

fn bench_query_time(c: &mut Criterion) {
    let scale = Scale {
        imdb_n: 20_000,
        imdb_names: 2_000,
        ..Scale::from_env()
    };
    let setup = imdb_setup(&scale);
    let n = setup.population.len() as f64;
    let aggregates = setup.aggregates_2d_set(4);
    let sample = &setup.samples[2].1; // SR159
    let mut rng = SmallRng::seed_from_u64(7);
    let all_attrs: Vec<AttrId> = setup.population.schema().attr_ids().collect();
    let sets = random_attr_sets(&all_attrs, 3, 10, &mut rng);
    let queries = pick_point_queries(&setup.population, &sets, Hitter::Random, 20, &mut rng);

    let mut group = c.benchmark_group("table7_query_time");
    group.sample_size(20).measurement_time(Duration::from_secs(3));
    for (name, method) in [
        ("RW", Method::Ipf),
        ("BB", Method::Bn(LearnMode::BB)),
        ("SS", Method::Bn(LearnMode::SS)),
    ] {
        let model = build_model(sample, &aggregates, n, method);
        group.bench_with_input(BenchmarkId::new("point_queries", name), &model, |b, m| {
            b.iter(|| {
                let mut acc = 0.0;
                for q in &queries {
                    acc += answer_point(m, method, q);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_time);
criterion_main!(benches);
