//! Serial vs morsel-driven parallel engine throughput.
//!
//! Not a criterion target: this bench compares the two query engines
//! head-to-head at 1/2/4/8 threads and prints a speedup table via the
//! shared report formatter, which the criterion shim cannot express. Every
//! parallel result is checked against the serial engine's before timing is
//! trusted.
//!
//! On a single-core host the speedup at >1 thread comes from the parallel
//! engine's denser accumulators (flat arrays instead of per-row allocated
//! hash keys); on multi-core hosts thread scaling compounds it.

use std::time::Instant;
use themis_bench::report::{self, Jv};
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};
use themis_query::{execute, execute_parallel, Catalog, EngineOptions, QueryResult};
use themis_sql::Query;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

/// Best-of-`REPS` wall-clock seconds.
fn best_of<F: FnMut() -> QueryResult>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn close(a: &QueryResult, b: &QueryResult) -> bool {
    use themis_query::Value;
    a.columns == b.columns
        && a.rows.len() == b.rows.len()
        && a.rows.iter().zip(&b.rows).all(|(x, y)| {
            x.iter().zip(y).all(|(u, v)| match (u, v) {
                (Value::Str(s), Value::Str(t)) => s == t,
                (Value::Num(s), Value::Num(t)) => (s - t).abs() <= 1e-6 * s.abs().max(1.0),
                _ => false,
            })
        })
}

fn main() {
    report::banner(
        "parallel-engine",
        "serial interpreter vs morsel-driven parallel engine (EngineOptions thread sweep)",
    );
    let n = 300_000;
    let dataset = FlightsDataset::generate(FlightsConfig {
        n,
        ..Default::default()
    });
    let mut catalog = Catalog::new();
    catalog.register("F", dataset.population.clone());

    // The self-join runs on a subset to keep its quadratic output bounded.
    let join_rows: Vec<usize> = (0..20_000).collect();
    let mut join_catalog = Catalog::new();
    join_catalog.register("F", dataset.population.select_rows(&join_rows));

    let workloads: [(&str, &Catalog, &str); 4] = [
        (
            "group_by_scan",
            &catalog,
            "SELECT origin_state, COUNT(*) AS n, AVG(elapsed_time) FROM F GROUP BY origin_state",
        ),
        (
            "filtered_scan",
            &catalog,
            "SELECT COUNT(*) FROM F WHERE distance <= 5 AND origin_state <> 'CA'",
        ),
        (
            "group_by_2d",
            &catalog,
            "SELECT origin_state, fl_date, COUNT(*) AS n FROM F \
             GROUP BY origin_state, fl_date ORDER BY n DESC LIMIT 20",
        ),
        (
            "self_join_20k",
            &join_catalog,
            "SELECT t.origin_state, COUNT(*) FROM F t, F s \
             WHERE t.dest_state = s.origin_state AND t.dest_state IN ('CO', 'MN') \
             GROUP BY t.origin_state",
        ),
    ];

    let mut rows = Vec::new();
    let mut json_workloads = Vec::new();
    let mut group_by_speedup_at_4 = 0.0;
    for (name, cat, sql) in workloads {
        let query: Query = themis_sql::parse(sql).expect(sql);
        let oracle = execute(cat, &query).expect(sql);
        let serial_s = best_of(|| execute(cat, &query).expect(sql));

        let mut cells = vec![name.to_string(), report::f(serial_s * 1e3)];
        let mut json_points = Vec::new();
        for threads in THREAD_COUNTS {
            let opts = EngineOptions::with_threads(threads);
            let result = execute_parallel(cat, &query, &opts).expect(sql);
            assert!(
                close(&oracle, &result),
                "{name}: parallel result diverged from serial at {threads} threads"
            );
            let par_s = best_of(|| execute_parallel(cat, &query, &opts).expect(sql));
            let speedup = serial_s / par_s;
            if name == "group_by_scan" && threads == 4 {
                group_by_speedup_at_4 = speedup;
            }
            cells.push(format!(
                "{} ({}x)",
                report::f(par_s * 1e3),
                report::f(speedup)
            ));
            json_points.push(Jv::Obj(vec![
                ("threads".into(), Jv::Int(threads as u64)),
                ("ms".into(), Jv::Num(par_s * 1e3)),
                ("speedup".into(), Jv::Num(speedup)),
            ]));
        }
        rows.push(cells);
        json_workloads.push(Jv::Obj(vec![
            ("name".into(), Jv::Str(name.into())),
            ("sql".into(), Jv::Str(sql.into())),
            ("serial_ms".into(), Jv::Num(serial_s * 1e3)),
            ("parallel".into(), Jv::Arr(json_points)),
        ]));
    }
    report::table(
        &[
            "workload",
            "serial ms",
            "par t=1 ms",
            "par t=2 ms",
            "par t=4 ms",
            "par t=8 ms",
        ],
        &rows,
    );
    println!(
        "\nn = {n}; best of {REPS}; speedups relative to the serial engine.\n\
         group_by_scan speedup at 4 threads: {}x (acceptance floor: 2x)",
        report::f(group_by_speedup_at_4)
    );

    let record = Jv::Obj(vec![
        ("bench".into(), Jv::Str("parallel_engine".into())),
        ("n_rows".into(), Jv::Int(n as u64)),
        ("reps".into(), Jv::Int(REPS as u64)),
        (
            "thread_counts".into(),
            Jv::Arr(THREAD_COUNTS.iter().map(|&t| Jv::Int(t as u64)).collect()),
        ),
        ("workloads".into(), Jv::Arr(json_workloads)),
        (
            "group_by_speedup_at_4_threads".into(),
            Jv::Num(group_by_speedup_at_4),
        ),
    ]);
    match report::write_bench_json("parallel", &record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_parallel.json: {e}"),
    }

    assert!(
        group_by_speedup_at_4 >= 2.0,
        "parallel engine below the 2x acceptance floor on group_by_scan at 4 threads"
    );
}
