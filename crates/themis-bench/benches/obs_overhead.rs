//! Overhead of the observability layer (trace spans + engine counters) on
//! both engines.
//!
//! Not a criterion target: this bench runs each workload three ways —
//! uninstrumented, instrumented with a *disabled* [`TraceSink`], and
//! instrumented with an *enabled* sink — serial and parallel, and reports
//! the relative overheads. The acceptance criterion is the disabled case:
//! a `TraceSink::disabled()` threaded through execution must cost under 2%
//! aggregate, because every production query path carries one. The enabled
//! cost is reported for context but not capped — turning tracing on is an
//! explicit opt-in.
//!
//! The serial oracle `execute` is the uninstrumented baseline; the
//! parallel engine has no uninstrumented twin, so its disabled-sink run
//! joins the baseline side and only its enabled run is an overhead.

use std::time::Instant;
use themis_bench::report::{self, Jv};
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};
use themis_query::{
    execute, execute_guarded, execute_parallel, Catalog, EngineOptions, QueryResult, TraceSink,
};
use themis_sql::Query;

const REPS: usize = 7;
const PARALLEL_THREADS: usize = 4;
/// Aggregate disabled-tracing overhead cap (acceptance criterion).
const MAX_DISABLED_OVERHEAD: f64 = 0.02;

/// Best-of-`REPS` wall-clock seconds.
fn best_of<F: FnMut() -> QueryResult>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    report::banner(
        "obs-overhead",
        "traced vs untraced execution, serial and parallel (disabled sink must be free)",
    );
    let n = 300_000;
    let dataset = FlightsDataset::generate(FlightsConfig {
        n,
        ..Default::default()
    });
    let mut catalog = Catalog::new();
    catalog.register("F", dataset.population.clone());

    // The self-join runs on a subset to keep its quadratic output bounded.
    let join_rows: Vec<usize> = (0..20_000).collect();
    let mut join_catalog = Catalog::new();
    join_catalog.register("F", dataset.population.select_rows(&join_rows));

    let workloads: [(&str, &Catalog, &str); 3] = [
        (
            "group_by_scan",
            &catalog,
            "SELECT origin_state, COUNT(*) AS n, AVG(elapsed_time) FROM F GROUP BY origin_state",
        ),
        (
            "filtered_scan",
            &catalog,
            "SELECT COUNT(*) FROM F WHERE distance <= 5 AND origin_state <> 'CA'",
        ),
        (
            "self_join_20k",
            &join_catalog,
            "SELECT t.origin_state, COUNT(*) FROM F t, F s \
             WHERE t.dest_state = s.origin_state AND t.dest_state IN ('CO', 'MN') \
             GROUP BY t.origin_state",
        ),
    ];

    let serial_disabled = EngineOptions {
        threads: 1,
        ..EngineOptions::default()
    };
    let par_disabled = EngineOptions::with_threads(PARALLEL_THREADS);
    let enabled = |threads| EngineOptions {
        threads,
        trace: TraceSink::enabled(),
        ..EngineOptions::default()
    };

    let mut rows = Vec::new();
    let mut json_workloads = Vec::new();
    let (mut baseline_total, mut disabled_total) = (0.0f64, 0.0f64);
    for (name, cat, sql) in workloads {
        let query: Query = themis_sql::parse(sql).expect(sql);
        // Tracing observes, never steers: every configuration returns the
        // bit-identical result.
        let oracle = execute(cat, &query).expect(sql);
        assert_eq!(
            oracle,
            execute_guarded(cat, &query, &serial_disabled).expect(sql),
            "{name}: disabled-sink serial result diverged"
        );
        assert_eq!(
            oracle,
            execute_guarded(cat, &query, &enabled(1)).expect(sql),
            "{name}: enabled-sink serial result diverged"
        );
        assert_eq!(
            execute_parallel(cat, &query, &par_disabled).expect(sql),
            execute_parallel(cat, &query, &enabled(PARALLEL_THREADS)).expect(sql),
            "{name}: enabled-sink parallel result diverged"
        );

        let serial_plain = best_of(|| execute(cat, &query).expect(sql));
        let serial_off = best_of(|| execute_guarded(cat, &query, &serial_disabled).expect(sql));
        let serial_on = best_of(|| execute_guarded(cat, &query, &enabled(1)).expect(sql));
        let par_off = best_of(|| execute_parallel(cat, &query, &par_disabled).expect(sql));
        let par_on = best_of(|| execute_parallel(cat, &query, &enabled(PARALLEL_THREADS)).expect(sql));
        baseline_total += serial_plain;
        disabled_total += serial_off;

        let disabled_over = serial_off / serial_plain - 1.0;
        let serial_on_over = serial_on / serial_off - 1.0;
        let par_on_over = par_on / par_off - 1.0;
        rows.push(vec![
            name.to_string(),
            report::f(serial_plain * 1e3),
            report::f(serial_off * 1e3),
            format!("{:+.1}%", disabled_over * 100.0),
            format!("{:+.1}%", serial_on_over * 100.0),
            report::f(par_off * 1e3),
            format!("{:+.1}%", par_on_over * 100.0),
        ]);
        json_workloads.push(Jv::Obj(vec![
            ("name".into(), Jv::Str(name.into())),
            ("sql".into(), Jv::Str(sql.into())),
            ("serial_plain_ms".into(), Jv::Num(serial_plain * 1e3)),
            ("serial_disabled_ms".into(), Jv::Num(serial_off * 1e3)),
            ("serial_disabled_overhead".into(), Jv::Num(disabled_over)),
            ("serial_enabled_ms".into(), Jv::Num(serial_on * 1e3)),
            ("serial_enabled_overhead".into(), Jv::Num(serial_on_over)),
            ("parallel_disabled_ms".into(), Jv::Num(par_off * 1e3)),
            ("parallel_enabled_ms".into(), Jv::Num(par_on * 1e3)),
            ("parallel_enabled_overhead".into(), Jv::Num(par_on_over)),
        ]));
    }
    report::table(
        &[
            "workload",
            "plain ms",
            "off ms",
            "off ovh",
            "on ovh",
            "par t=4 off ms",
            "on ovh",
        ],
        &rows,
    );
    let aggregate = disabled_total / baseline_total - 1.0;
    println!(
        "\nn = {n}; best of {REPS}; parallel at {PARALLEL_THREADS} threads.\n\
         aggregate disabled-tracing overhead: {:+.2}% (acceptance ceiling: {:.0}%)",
        aggregate * 100.0,
        MAX_DISABLED_OVERHEAD * 100.0
    );

    let record = Jv::Obj(vec![
        ("bench".into(), Jv::Str("obs_overhead".into())),
        ("n_rows".into(), Jv::Int(n as u64)),
        ("reps".into(), Jv::Int(REPS as u64)),
        ("parallel_threads".into(), Jv::Int(PARALLEL_THREADS as u64)),
        ("workloads".into(), Jv::Arr(json_workloads)),
        ("aggregate_disabled_overhead".into(), Jv::Num(aggregate)),
        ("max_overhead_accepted".into(), Jv::Num(MAX_DISABLED_OVERHEAD)),
    ]);
    match report::write_bench_json("obs", &record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_obs.json: {e}"),
    }

    assert!(
        aggregate < MAX_DISABLED_OVERHEAD,
        "disabled-tracing overhead {:.2}% exceeds the {:.0}% acceptance ceiling",
        aggregate * 100.0,
        MAX_DISABLED_OVERHEAD * 100.0
    );
}
