//! Query-engine micro-benchmarks: weighted scans, group-by aggregation,
//! and the hash self-join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};
use themis_query::{Catalog, EngineOptions};

fn bench_engine(c: &mut Criterion) {
    let dataset = FlightsDataset::generate(FlightsConfig {
        n: 100_000,
        ..Default::default()
    });
    let mut catalog = Catalog::new();
    catalog.register("F", dataset.population.clone());

    let mut group = c.benchmark_group("engine");
    group.sample_size(20).measurement_time(Duration::from_secs(3));

    let cases = [
        ("scalar_filter", "SELECT COUNT(*) FROM F WHERE origin_state = 'CA'"),
        (
            "group_by",
            "SELECT origin_state, COUNT(*) FROM F GROUP BY origin_state",
        ),
        (
            "group_by_avg_filtered",
            "SELECT origin_state, AVG(elapsed_time) FROM F WHERE distance <= 5 GROUP BY origin_state",
        ),
    ];
    let opts = EngineOptions::default();
    for (name, sql) in cases {
        group.bench_with_input(BenchmarkId::new("scan", name), &sql, |b, sql| {
            b.iter(|| black_box(themis_query::run_sql(&catalog, sql, &opts).unwrap()))
        });
    }

    // Self-join on a 10k subset (quadratic-ish output).
    let rows: Vec<usize> = (0..10_000).collect();
    let small = dataset.population.select_rows(&rows);
    let mut join_catalog = Catalog::new();
    join_catalog.register("F", small);
    group.bench_function("self_join_10k", |b| {
        b.iter(|| {
            black_box(
                themis_query::run_sql(
                    &join_catalog,
                    "SELECT t.origin_state, COUNT(*) FROM F t, F s \
                     WHERE t.dest_state = s.origin_state AND t.dest_state IN ('CO', 'MN') \
                     GROUP BY t.origin_state",
                    &EngineOptions::default(),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
