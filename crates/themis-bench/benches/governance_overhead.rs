//! Overhead of the query-governance layer (deadlines, budgets,
//! cancellation) on both engines.
//!
//! Not a criterion target: this bench runs each workload guarded and
//! unguarded — serial and parallel — and reports the relative overhead. The
//! guarded configuration arms *generous* limits (an hour-long deadline,
//! effectively infinite budgets, a live cancel token), so every cooperative
//! check executes but none trips: what is measured is the cost of the
//! guard itself, which the acceptance criterion caps at 5% aggregate.

use std::time::{Duration, Instant};
use themis_bench::report::{self, Jv};
use themis_data::datasets::flights::{FlightsConfig, FlightsDataset};
use themis_query::{
    execute, execute_guarded, execute_parallel, CancelToken, Catalog, EngineOptions, Limits,
    QueryResult,
};
use themis_sql::Query;

const REPS: usize = 7;
const PARALLEL_THREADS: usize = 4;
/// Aggregate guarded-over-unguarded overhead cap (acceptance criterion).
const MAX_OVERHEAD: f64 = 0.05;

/// Best-of-`REPS` wall-clock seconds.
fn best_of<F: FnMut() -> QueryResult>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Limits generous enough never to trip, so the guard stays armed on every
/// code path without changing any result.
fn generous_limits() -> Limits {
    Limits {
        deadline: Some(Duration::from_secs(3600)),
        max_rows: Some(u64::MAX / 2),
        max_groups: Some(usize::MAX / 2),
    }
}

fn main() {
    report::banner(
        "governance-overhead",
        "guarded vs unguarded execution, serial and parallel (generous never-tripping limits)",
    );
    let n = 300_000;
    let dataset = FlightsDataset::generate(FlightsConfig {
        n,
        ..Default::default()
    });
    let mut catalog = Catalog::new();
    catalog.register("F", dataset.population.clone());

    // The self-join runs on a subset to keep its quadratic output bounded.
    let join_rows: Vec<usize> = (0..20_000).collect();
    let mut join_catalog = Catalog::new();
    join_catalog.register("F", dataset.population.select_rows(&join_rows));

    let workloads: [(&str, &Catalog, &str); 3] = [
        (
            "group_by_scan",
            &catalog,
            "SELECT origin_state, COUNT(*) AS n, AVG(elapsed_time) FROM F GROUP BY origin_state",
        ),
        (
            "filtered_scan",
            &catalog,
            "SELECT COUNT(*) FROM F WHERE distance <= 5 AND origin_state <> 'CA'",
        ),
        (
            "self_join_20k",
            &join_catalog,
            "SELECT t.origin_state, COUNT(*) FROM F t, F s \
             WHERE t.dest_state = s.origin_state AND t.dest_state IN ('CO', 'MN') \
             GROUP BY t.origin_state",
        ),
    ];

    let guarded_opts = EngineOptions {
        threads: PARALLEL_THREADS,
        limits: generous_limits(),
        cancel: Some(CancelToken::new()),
        ..EngineOptions::default()
    };
    let plain_opts = EngineOptions::with_threads(PARALLEL_THREADS);
    // The serial guarded path takes the same options; threads are ignored.
    let serial_guarded_opts = EngineOptions {
        threads: 1,
        limits: generous_limits(),
        cancel: Some(CancelToken::new()),
        ..EngineOptions::default()
    };

    let mut rows = Vec::new();
    let mut json_workloads = Vec::new();
    let (mut plain_total, mut guarded_total) = (0.0f64, 0.0f64);
    for (name, cat, sql) in workloads {
        let query: Query = themis_sql::parse(sql).expect(sql);
        // Guarded execution must not change the answer.
        let oracle = execute(cat, &query).expect(sql);
        assert_eq!(
            oracle,
            execute_guarded(cat, &query, &serial_guarded_opts).expect(sql),
            "{name}: serial guarded result diverged"
        );
        assert_eq!(
            execute_parallel(cat, &query, &plain_opts).expect(sql),
            execute_parallel(cat, &query, &guarded_opts).expect(sql),
            "{name}: parallel guarded result diverged"
        );

        let serial_s = best_of(|| execute(cat, &query).expect(sql));
        let serial_g = best_of(|| execute_guarded(cat, &query, &serial_guarded_opts).expect(sql));
        let par_s = best_of(|| execute_parallel(cat, &query, &plain_opts).expect(sql));
        let par_g = best_of(|| execute_parallel(cat, &query, &guarded_opts).expect(sql));
        plain_total += serial_s + par_s;
        guarded_total += serial_g + par_g;

        let serial_over = serial_g / serial_s - 1.0;
        let par_over = par_g / par_s - 1.0;
        rows.push(vec![
            name.to_string(),
            report::f(serial_s * 1e3),
            report::f(serial_g * 1e3),
            format!("{:+.1}%", serial_over * 100.0),
            report::f(par_s * 1e3),
            report::f(par_g * 1e3),
            format!("{:+.1}%", par_over * 100.0),
        ]);
        json_workloads.push(Jv::Obj(vec![
            ("name".into(), Jv::Str(name.into())),
            ("sql".into(), Jv::Str(sql.into())),
            ("serial_ms".into(), Jv::Num(serial_s * 1e3)),
            ("serial_guarded_ms".into(), Jv::Num(serial_g * 1e3)),
            ("serial_overhead".into(), Jv::Num(serial_over)),
            ("parallel_ms".into(), Jv::Num(par_s * 1e3)),
            ("parallel_guarded_ms".into(), Jv::Num(par_g * 1e3)),
            ("parallel_overhead".into(), Jv::Num(par_over)),
        ]));
    }
    report::table(
        &[
            "workload",
            "serial ms",
            "guarded ms",
            "overhead",
            "par t=4 ms",
            "guarded ms",
            "overhead",
        ],
        &rows,
    );
    let aggregate = guarded_total / plain_total - 1.0;
    println!(
        "\nn = {n}; best of {REPS}; parallel at {PARALLEL_THREADS} threads.\n\
         aggregate governance overhead: {:+.2}% (acceptance ceiling: {:.0}%)",
        aggregate * 100.0,
        MAX_OVERHEAD * 100.0
    );

    let record = Jv::Obj(vec![
        ("bench".into(), Jv::Str("governance_overhead".into())),
        ("n_rows".into(), Jv::Int(n as u64)),
        ("reps".into(), Jv::Int(REPS as u64)),
        ("parallel_threads".into(), Jv::Int(PARALLEL_THREADS as u64)),
        ("workloads".into(), Jv::Arr(json_workloads)),
        ("aggregate_overhead".into(), Jv::Num(aggregate)),
        ("max_overhead_accepted".into(), Jv::Num(MAX_OVERHEAD)),
    ]);
    match report::write_bench_json("robustness", &record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_robustness.json: {e}"),
    }

    assert!(
        aggregate < MAX_OVERHEAD,
        "governance overhead {:.2}% exceeds the {:.0}% acceptance ceiling",
        aggregate * 100.0,
        MAX_OVERHEAD * 100.0
    );
}
