//! Numeric-kernel micro-benchmarks: least squares, NNLS, simplex
//! projection, and the constrained MLE.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;
use themis_solver::constrained::{ConstrainedMle, LinearConstraint};
use themis_solver::matrix::DenseMatrix;
use themis_solver::{lstsq, nnls, project_simplex};

fn random_matrix(rows: usize, cols: usize, rng: &mut SmallRng) -> DenseMatrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    DenseMatrix::from_vec(rows, cols, data)
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(9);
    let mut group = c.benchmark_group("solver_core");
    group.sample_size(20).measurement_time(Duration::from_secs(3));

    for n in [16usize, 64] {
        let a = random_matrix(4 * n, n, &mut rng);
        let b: Vec<f64> = (0..4 * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        group.bench_with_input(BenchmarkId::new("lstsq", n), &(a.clone(), b.clone()), |be, (a, b)| {
            be.iter(|| black_box(lstsq(a, b)))
        });
        group.bench_with_input(BenchmarkId::new("nnls", n), &(a, b), |be, (a, b)| {
            be.iter(|| black_box(nnls(a, b)))
        });
    }

    for n in [64usize, 1024] {
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        group.bench_with_input(BenchmarkId::new("project_simplex", n), &v, |be, v| {
            be.iter(|| {
                let mut x = v.clone();
                project_simplex(&mut x);
                black_box(x)
            })
        });
    }

    // Constrained MLE shaped like a CPT factor: 12 parent configs × 20
    // child values with 20 marginal constraints.
    let configs = 12usize;
    let card = 20usize;
    let counts: Vec<f64> = (0..configs * card).map(|_| rng.gen_range(0.0..50.0)).collect();
    let probs: Vec<f64> = {
        let raw: Vec<f64> = (0..configs).map(|_| rng.gen_range(0.1..1.0)).collect();
        let s: f64 = raw.iter().sum();
        raw.into_iter().map(|x| x / s).collect()
    };
    let constraints: Vec<LinearConstraint> = (0..card)
        .map(|v| LinearConstraint {
            terms: (0..configs).map(|k| (k * card + v, probs[k])).collect(),
            rhs: 1.0 / card as f64,
        })
        .collect();
    let problem = ConstrainedMle::new(vec![card; configs], counts, constraints);
    group.bench_function("constrained_mle_12x20", |b| {
        b.iter(|| black_box(problem.solve()))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
