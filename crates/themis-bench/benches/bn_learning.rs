//! BN learning ablations (DESIGN.md §5):
//!
//! 1. per-factor simplified constraint solving (§5.2) vs the naive joint
//!    Eq. 2 solver — the reason the optimization exists,
//! 2. trees (max_parents = 1) vs wider structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_bn::joint::learn_parameters_joint;
use themis_bn::parameters::{learn_parameters, ParamOptions, ParamSource};
use themis_bn::{learn_structure, StructureOptions, StructureSource};
use themis_data::datasets::child::ChildNetwork;
use themis_data::paper_example::{example_population, example_sample};
use themis_data::sampling::SampleSpec;
use themis_data::AttrId;

/// §5.2 ablation on the paper's 3-attribute example (the only size where
/// the naive joint solver is even runnable).
fn bench_simplified_vs_joint(c: &mut Criterion) {
    let p = example_population();
    let s = example_sample();
    let aggs = AggregateSet::from_results(vec![
        AggregateResult::compute(&p, &[AttrId(0)]),
        AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
    ]);
    let parents = vec![vec![], vec![AttrId(0)], vec![AttrId(1)]];

    let mut group = c.benchmark_group("eq2_simplification");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("per_factor_simplified", |b| {
        b.iter(|| {
            black_box(learn_parameters(
                &s,
                &aggs,
                10.0,
                parents.clone(),
                ParamSource::Both,
                &ParamOptions::default(),
            ))
        })
    });
    group.bench_function("naive_joint_100_sweeps", |b| {
        b.iter(|| black_box(learn_parameters_joint(&s, &aggs, 10.0, parents.clone(), 100)))
    });
    group.finish();
}

/// Tree vs 2-parent structure learning cost on CHILD data.
fn bench_max_parents(c: &mut Criterion) {
    let child = ChildNetwork::new();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    use rand::SeedableRng;
    let pop = child.sample(10_000, &mut rng);
    let sample = SampleSpec::uniform(0.1).draw(&pop, &mut rng);
    let attrs: Vec<AttrId> = pop.schema().attr_ids().collect();
    let aggs = AggregateSet::from_results(
        attrs
            .iter()
            .take(8)
            .map(|&a| AggregateResult::compute(&pop, &[a]))
            .collect(),
    );

    let mut group = c.benchmark_group("structure_max_parents");
    group.sample_size(10).measurement_time(Duration::from_secs(4));
    for max_parents in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_parents),
            &max_parents,
            |b, &mp| {
                b.iter(|| {
                    black_box(learn_structure(
                        &sample,
                        &aggs,
                        10_000.0,
                        StructureSource::Both,
                        &StructureOptions { max_parents: mp, ..StructureOptions::default() },
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simplified_vs_joint, bench_max_parents);
criterion_main!(benches);
