//! The five BN learning modes of §6.6.
//!
//! A mode is named by (structure source, parameter source): `S` = sample
//! only, `B` = both sample and aggregates, `A` = aggregates only (structure;
//! attributes not covered by Γ become disconnected uniform nodes). The
//! paper's evaluation (Fig. 13) compares SS, SB, BS, AB, and BB; BB is the
//! Themis default.

use crate::network::BayesianNetwork;
use crate::parameters::{learn_parameters, ParamOptions, ParamSource};
use crate::structure::{learn_structure, StructureOptions, StructureSource};
use themis_aggregates::AggregateSet;
use themis_data::Relation;

/// A structure/parameter source combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnMode {
    /// Structure from sample, parameters from sample.
    SS,
    /// Structure from sample, parameters from both.
    SB,
    /// Structure from both, parameters from sample.
    BS,
    /// Structure from aggregates only, parameters from both.
    AB,
    /// Structure from both, parameters from both — the Themis default.
    BB,
}

impl LearnMode {
    /// All five modes, in the paper's presentation order.
    pub const ALL: [LearnMode; 5] = [
        LearnMode::SS,
        LearnMode::SB,
        LearnMode::BS,
        LearnMode::AB,
        LearnMode::BB,
    ];

    /// Structure source (first letter).
    pub fn structure_source(self) -> StructureSource {
        match self {
            LearnMode::SS | LearnMode::SB => StructureSource::SampleOnly,
            LearnMode::BS | LearnMode::BB => StructureSource::Both,
            LearnMode::AB => StructureSource::AggregatesOnly,
        }
    }

    /// Parameter source (second letter).
    pub fn param_source(self) -> ParamSource {
        match self {
            LearnMode::SS | LearnMode::BS => ParamSource::SampleOnly,
            LearnMode::SB | LearnMode::AB | LearnMode::BB => ParamSource::Both,
        }
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            LearnMode::SS => "SS",
            LearnMode::SB => "SB",
            LearnMode::BS => "BS",
            LearnMode::AB => "AB",
            LearnMode::BB => "BB",
        }
    }
}

/// Options combining structure and parameter learning knobs.
#[derive(Debug, Clone, Default)]
pub struct LearnOptions {
    /// Structure learning options.
    pub structure: StructureOptions,
    /// Parameter learning options.
    pub params: ParamOptions,
}

/// Learn a Bayesian network of the population from a biased sample and
/// population aggregates, per the chosen mode.
pub fn learn(
    sample: &Relation,
    aggregates: &AggregateSet,
    population_size: f64,
    mode: LearnMode,
    options: &LearnOptions,
) -> BayesianNetwork {
    let parents = learn_structure(
        sample,
        aggregates,
        population_size,
        mode.structure_source(),
        &options.structure,
    );
    learn_parameters(
        sample,
        aggregates,
        population_size,
        parents,
        mode.param_source(),
        &options.params,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::point_probability;
    use themis_aggregates::AggregateResult;
    use themis_data::paper_example::{example_population, example_sample};
    use themis_data::AttrId;

    fn aggregates() -> AggregateSet {
        let p = example_population();
        AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(0)]),
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ])
    }

    #[test]
    fn all_modes_produce_normalized_networks() {
        let s = example_sample();
        let g = aggregates();
        for mode in LearnMode::ALL {
            let net = learn(&s, &g, 10.0, mode, &LearnOptions::default());
            assert!(net.is_normalized(1e-9), "mode {} not normalized", mode.name());
            assert!(net.topological_order().is_some());
        }
    }

    #[test]
    fn bb_beats_ss_on_biased_marginal() {
        // The sample over-represents date=01 (3/4); the population is
        // 50/50. BB uses the aggregate and must be closer to 0.5 than SS.
        let s = example_sample();
        let g = aggregates();
        let bb = learn(&s, &g, 10.0, LearnMode::BB, &LearnOptions::default());
        let ss = learn(&s, &g, 10.0, LearnMode::SS, &LearnOptions::default());
        let p_bb = point_probability(&bb, &[AttrId(0)], &[0]);
        let p_ss = point_probability(&ss, &[AttrId(0)], &[0]);
        assert!(
            (p_bb - 0.5).abs() < (p_ss - 0.5).abs(),
            "BB ({p_bb}) should beat SS ({p_ss})"
        );
    }

    #[test]
    fn mode_letters_map_to_sources() {
        use crate::parameters::ParamSource as P;
        use crate::structure::StructureSource as S;
        assert_eq!(LearnMode::SS.structure_source(), S::SampleOnly);
        assert_eq!(LearnMode::BB.structure_source(), S::Both);
        assert_eq!(LearnMode::AB.structure_source(), S::AggregatesOnly);
        assert_eq!(LearnMode::BS.param_source(), P::SampleOnly);
        assert_eq!(LearnMode::SB.param_source(), P::Both);
    }
}
