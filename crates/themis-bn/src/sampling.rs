//! Forward (logic) sampling and K-replicate GROUP BY answering (§4.2.4).
//!
//! `GROUP BY` queries cannot be answered by a single probability lookup; the
//! paper generates `K` representative samples from the BN, uniformly scales
//! each to the population size, answers the query on each, and returns the
//! groups appearing in *all* `K` answers with the aggregate value averaged —
//! damping both variance and phantom groups (groups returned that do not
//! exist in the population).

use crate::network::BayesianNetwork;
use rand::Rng;
use std::collections::HashMap;
use themis_data::{AttrId, GroupKey, Relation};

/// Draw one forward sample of `size` tuples (weights all 1).
pub fn forward_sample<R: Rng>(net: &BayesianNetwork, size: usize, rng: &mut R) -> Relation {
    // themis-lint: allow(no-panic-in-libs) reason=BayesianNetwork::new rejects cyclic structures, so a topological order always exists
    let order = net.topological_order().expect("networks are DAGs");
    let mut rel = Relation::with_capacity(net.schema().clone(), size);
    let mut values = vec![0u32; net.arity()];
    let mut parent_vals: Vec<u32> = Vec::new();
    for _ in 0..size {
        for &node in &order {
            parent_vals.clear();
            parent_vals.extend(net.parents(node).iter().map(|&p| values[p.0]));
            let cpt = net.cpt(node);
            let config = cpt.config_index(&parent_vals);
            let row = cpt.row(config);
            values[node.0] = sample_row(row, rng);
        }
        rel.push_row(&values);
    }
    rel
}

/// Draw `k` independent forward samples, each uniformly scaled so its total
/// weight equals `population_size`.
pub fn forward_samples<R: Rng>(
    net: &BayesianNetwork,
    k: usize,
    size: usize,
    population_size: f64,
    rng: &mut R,
) -> Vec<Relation> {
    (0..k)
        .map(|_| {
            let mut s = forward_sample(net, size, rng);
            s.fill_weights(population_size / size as f64);
            s
        })
        .collect()
}

/// Answer `GROUP BY attrs, COUNT(*)` per §4.2.4: groups present in all `k`
/// sample answers, counts averaged.
pub fn answer_group_by<R: Rng>(
    net: &BayesianNetwork,
    attrs: &[AttrId],
    k: usize,
    sample_size: usize,
    population_size: f64,
    rng: &mut R,
) -> HashMap<GroupKey, f64> {
    let mut agreed: Option<HashMap<GroupKey, (f64, usize)>> = None;
    for _ in 0..k {
        let mut s = forward_sample(net, sample_size, rng);
        s.fill_weights(population_size / sample_size as f64);
        let answer = s.group_counts(attrs);
        agreed = Some(match agreed {
            None => answer.into_iter().map(|(g, c)| (g, (c, 1))).collect(),
            Some(prev) => {
                let mut next = HashMap::new();
                for (g, (sum, seen)) in prev {
                    if let Some(&c) = answer.get(&g) {
                        next.insert(g, (sum + c, seen + 1));
                    }
                }
                next
            }
        });
    }
    // k = 0 draws no replicates, so no group reaches consensus.
    let Some(agreed) = agreed else {
        return HashMap::new();
    };
    agreed
        .into_iter()
        .map(|(g, (sum, seen))| {
            debug_assert_eq!(seen, k);
            (g, sum / k as f64)
        })
        .collect()
}

fn sample_row<R: Rng>(probs: &[f64], rng: &mut R) -> u32 {
    let mut u: f64 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i as u32;
        }
    }
    (probs.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::point_probability;
    use crate::network::Cpt;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use themis_data::paper_example::example_schema;

    fn chain() -> BayesianNetwork {
        let schema = example_schema();
        BayesianNetwork::new(
            schema,
            vec![vec![], vec![AttrId(0)], vec![AttrId(1)]],
            vec![
                Cpt {
                    card: 2,
                    parent_cards: vec![],
                    table: vec![0.3, 0.7],
                },
                Cpt {
                    card: 3,
                    parent_cards: vec![2],
                    table: vec![0.6, 0.2, 0.2, 0.1, 0.1, 0.8],
                },
                Cpt {
                    card: 3,
                    parent_cards: vec![3],
                    table: vec![0.5, 0.25, 0.25, 0.3, 0.2, 0.5, 0.4, 0.3, 0.3],
                },
            ],
        )
    }

    #[test]
    fn empirical_marginals_match_exact() {
        let net = chain();
        let mut rng = SmallRng::seed_from_u64(5);
        let s = forward_sample(&net, 60_000, &mut rng);
        for attr in 0..3 {
            let counts = s.group_row_counts(&[AttrId(attr)]);
            for v in 0..net.schema().domain(AttrId(attr)).size() as u32 {
                let emp = counts.get(&vec![v]).copied().unwrap_or(0) as f64 / 60_000.0;
                let exact = point_probability(&net, &[AttrId(attr)], &[v]);
                assert!(
                    (emp - exact).abs() < 0.01,
                    "attr {attr} value {v}: empirical {emp} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn scaled_samples_total_population() {
        let net = chain();
        let mut rng = SmallRng::seed_from_u64(6);
        let samples = forward_samples(&net, 3, 100, 5_000.0, &mut rng);
        assert_eq!(samples.len(), 3);
        for s in &samples {
            assert!((s.total_weight() - 5_000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn group_by_counts_approximate_population() {
        let net = chain();
        let mut rng = SmallRng::seed_from_u64(7);
        let answer = answer_group_by(&net, &[AttrId(0)], 5, 5_000, 10_000.0, &mut rng);
        let p0 = point_probability(&net, &[AttrId(0)], &[0]);
        let got = answer[&vec![0]];
        assert!(
            (got - p0 * 10_000.0).abs() < 500.0,
            "got {got}, expected ≈ {}",
            p0 * 10_000.0
        );
    }

    #[test]
    fn zero_replicates_yield_empty_answer() {
        let net = chain();
        let mut rng = SmallRng::seed_from_u64(9);
        let answer = answer_group_by(&net, &[AttrId(0)], 0, 100, 1_000.0, &mut rng);
        assert!(answer.is_empty());
    }

    #[test]
    fn rare_groups_require_unanimity() {
        // With a tiny per-replicate sample, a rare group (probability ~1e-3)
        // will almost surely miss at least one of the K answers.
        let schema = themis_data::Schema::new(vec![themis_data::Attribute::new(
            "x",
            themis_data::Domain::indexed("x", 2),
        )]);
        let net = BayesianNetwork::new(
            schema,
            vec![vec![]],
            vec![Cpt {
                card: 2,
                parent_cards: vec![],
                table: vec![0.999, 0.001],
            }],
        );
        let mut rng = SmallRng::seed_from_u64(8);
        let answer = answer_group_by(&net, &[AttrId(0)], 10, 200, 1_000.0, &mut rng);
        assert!(answer.contains_key(&vec![0]));
        assert!(!answer.contains_key(&vec![1]), "rare group should be damped");
    }
}
