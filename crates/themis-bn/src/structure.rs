//! Two-phase greedy hill-climbing structure learning (Alg. 2 and 3).
//!
//! Phase 1 builds from the aggregates Γ: only moves whose score computation
//! has *support* in Γ (the family `{X_i, X_j} ∪ Pa` appears together in some
//! aggregate) are considered, and every edge added in this phase is *locked*
//! — it cannot be removed or reversed later, keeping all structural
//! knowledge from the population intact and preventing overfitting to the
//! sample. Phase 2 continues from the sample with all moves allowed (except
//! on locked edges).
//!
//! Like the paper's prototype (§6.1) the default restricts networks to
//! trees (`max_parents = 1`); the limit is configurable (§5.2's "limiting
//! the number of parents" optimization).

use crate::network::topological_order;
use crate::score::{family_bic, CountSource, GammaSource, SampleSource};
use std::collections::HashMap;
use themis_aggregates::AggregateSet;
use themis_data::{AttrId, Relation};

/// Which data source(s) drive structure learning (the first letter of the
/// §6.6 mode names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureSource {
    /// Sample only (`S*` modes): single phase over `S`.
    SampleOnly,
    /// Aggregates only (`A*` modes): phase 1 only; attributes not covered by
    /// Γ stay disconnected (uniformity assumption).
    AggregatesOnly,
    /// Both (`B*` modes): phase 1 over Γ with locking, then phase 2 over `S`.
    Both,
}

/// Options for structure learning.
#[derive(Debug, Clone)]
pub struct StructureOptions {
    /// Maximum number of parents per node (1 = trees, the paper's default).
    pub max_parents: usize,
    /// Additional random-restart climbs of the sample phase (the paper
    /// notes greedy search "will not always learn the optimal structure",
    /// §6.5, and leaves improving it as future work). 0 = plain greedy.
    pub restarts: usize,
    /// Seed for the restart initializations.
    pub restart_seed: u64,
}

impl Default for StructureOptions {
    fn default() -> Self {
        Self {
            max_parents: 1,
            restarts: 0,
            restart_seed: 0x57A7,
        }
    }
}

/// A candidate move in the hill climb.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Move {
    Add(AttrId, AttrId),
    Remove(AttrId, AttrId),
    Reverse(AttrId, AttrId),
}

/// Learn a parent structure. Returns `parents[i]` = parent list of node `i`.
pub fn learn_structure(
    sample: &Relation,
    aggregates: &AggregateSet,
    population_size: f64,
    source: StructureSource,
    options: &StructureOptions,
) -> Vec<Vec<AttrId>> {
    let arity = sample.schema().arity();
    let mut parents: Vec<Vec<AttrId>> = vec![Vec::new(); arity];
    let mut locked: Vec<(AttrId, AttrId)> = Vec::new();

    match source {
        StructureSource::SampleOnly => {
            let src = SampleSource::new(sample);
            hill_climb(sample, &src, None, &mut parents, &locked, options);
            restart_best(sample, &mut parents, &locked, options);
        }
        StructureSource::AggregatesOnly => {
            let src = GammaSource::new(aggregates, population_size);
            let covered = aggregates.covered_attrs();
            hill_climb(sample, &src, Some(&covered), &mut parents, &locked, options);
        }
        StructureSource::Both => {
            // Phase 1: Γ, restricted to covered attributes; lock the edges.
            let gamma = GammaSource::new(aggregates, population_size);
            let covered = aggregates.covered_attrs();
            hill_climb(sample, &gamma, Some(&covered), &mut parents, &locked, options);
            for (child, ps) in parents.iter().enumerate() {
                for &p in ps {
                    locked.push((p, AttrId(child)));
                }
            }
            // Phase 2: sample, all attributes.
            let src = SampleSource::new(sample);
            hill_climb(sample, &src, None, &mut parents, &locked, options);
            restart_best(sample, &mut parents, &locked, options);
        }
    }
    parents
}

/// Random-restart refinement: climb from `options.restarts` random seeds
/// (always containing the locked edges) and keep the structure with the
/// best total sample-BIC.
fn restart_best(
    sample: &Relation,
    parents: &mut [Vec<AttrId>],
    locked: &[(AttrId, AttrId)],
    options: &StructureOptions,
) {
    if options.restarts == 0 {
        return;
    }
    use rand::prelude::*;
    let src = SampleSource::new(sample);
    let arity = sample.schema().arity();
    let mut best_score = total_bic(sample, &src, parents);
    let mut rng = SmallRng::seed_from_u64(options.restart_seed);

    for _ in 0..options.restarts {
        // Random acyclic seed: locked edges plus random forward edges in a
        // shuffled node order (forward edges can never create a cycle).
        let mut order: Vec<usize> = (0..arity).collect();
        order.shuffle(&mut rng);
        let mut candidate: Vec<Vec<AttrId>> = vec![Vec::new(); arity];
        for &(p, c) in locked {
            candidate[c.0].push(p);
        }
        for pos in 1..arity {
            let child = order[pos];
            if candidate[child].len() >= options.max_parents || !rng.gen_bool(0.5) {
                continue;
            }
            let parent = AttrId(order[rng.gen_range(0..pos)]);
            if !candidate[child].contains(&parent) {
                candidate[child].push(parent);
            }
        }
        if topological_order(&candidate).is_none() {
            continue;
        }
        hill_climb(sample, &src, None, &mut candidate, locked, options);
        let score = total_bic(sample, &src, &candidate);
        if score > best_score {
            best_score = score;
            parents.clone_from_slice(&candidate);
        }
    }
}

/// Total decomposable BIC of a structure under a count source.
fn total_bic<S: CountSource>(sample: &Relation, source: &S, parents: &[Vec<AttrId>]) -> f64 {
    let schema = sample.schema();
    parents
        .iter()
        .enumerate()
        .map(|(i, ps)| {
            let child = AttrId(i);
            let mut sorted = ps.clone();
            sorted.sort();
            let pcards: Vec<usize> = sorted.iter().map(|&p| schema.domain(p).size()).collect();
            family_bic(source, child, &sorted, schema.domain(child).size(), &pcards)
                .unwrap_or(f64::NEG_INFINITY)
        })
        .sum()
}

/// One hill-climbing phase over a count source, optionally restricted to a
/// subset of nodes.
fn hill_climb<S: CountSource>(
    sample: &Relation,
    source: &S,
    restrict_to: Option<&[AttrId]>,
    parents: &mut [Vec<AttrId>],
    locked: &[(AttrId, AttrId)],
    options: &StructureOptions,
) {
    let schema = sample.schema().clone();
    let arity = schema.arity();
    let nodes: Vec<AttrId> = match restrict_to {
        Some(r) => r.to_vec(),
        None => (0..arity).map(AttrId).collect(),
    };
    let card = |a: AttrId| schema.domain(a).size();

    // Family-score cache keyed by (child, sorted parents). `None` = family
    // unsupported by this source.
    let mut cache: HashMap<(AttrId, Vec<AttrId>), Option<f64>> = HashMap::new();
    let mut score_family = |child: AttrId, ps: &[AttrId]| -> Option<f64> {
        let mut key_ps = ps.to_vec();
        key_ps.sort();
        cache
            .entry((child, key_ps.clone()))
            .or_insert_with(|| {
                let pcards: Vec<usize> = key_ps.iter().map(|&p| card(p)).collect();
                family_bic(source, child, &key_ps, card(child), &pcards)
            })
            .to_owned()
    };

    loop {
        // Current family scores for delta computation.
        let mut best: Option<(Move, f64)> = None;
        for &i in &nodes {
            for &j in &nodes {
                if i == j {
                    continue;
                }
                let has_edge = parents[j.0].contains(&i);
                let edge_locked = locked.contains(&(i, j));

                if !has_edge {
                    // Add i → j.
                    if parents[j.0].len() < options.max_parents
                        && !creates_cycle(parents, i, j)
                    {
                        let mut new_ps = parents[j.0].clone();
                        new_ps.push(i);
                        let delta = match (score_family(j, &new_ps), score_family(j, &parents[j.0].clone())) {
                            (Some(new), Some(old)) => Some(new - old),
                            _ => None,
                        };
                        if let Some(d) = delta {
                            if d > 1e-9 && best.is_none_or(|(_, bd)| d > bd) {
                                best = Some((Move::Add(i, j), d));
                            }
                        }
                    }
                } else if !edge_locked {
                    // Remove i → j.
                    let mut without = parents[j.0].clone();
                    without.retain(|&p| p != i);
                    if let (Some(new), Some(old)) =
                        (score_family(j, &without), score_family(j, &parents[j.0].clone()))
                    {
                        let d = new - old;
                        if d > 1e-9 && best.is_none_or(|(_, bd)| d > bd) {
                            best = Some((Move::Remove(i, j), d));
                        }
                    }
                    // Reverse i → j.
                    if parents[i.0].len() < options.max_parents {
                        let mut j_without = parents[j.0].clone();
                        j_without.retain(|&p| p != i);
                        let mut i_with = parents[i.0].clone();
                        i_with.push(j);
                        if !creates_cycle_after_reverse(parents, i, j) {
                            let delta = (|| {
                                let j_new = score_family(j, &j_without)?;
                                let j_old = score_family(j, &parents[j.0].clone())?;
                                let i_new = score_family(i, &i_with)?;
                                let i_old = score_family(i, &parents[i.0].clone())?;
                                Some((j_new - j_old) + (i_new - i_old))
                            })();
                            if let Some(d) = delta {
                                if d > 1e-9 && best.is_none_or(|(_, bd)| d > bd) {
                                    best = Some((Move::Reverse(i, j), d));
                                }
                            }
                        }
                    }
                }
            }
        }

        match best {
            Some((Move::Add(i, j), _)) => parents[j.0].push(i),
            Some((Move::Remove(i, j), _)) => parents[j.0].retain(|&p| p != i),
            Some((Move::Reverse(i, j), _)) => {
                parents[j.0].retain(|&p| p != i);
                parents[i.0].push(j);
            }
            None => break,
        }
    }
}

/// Whether adding `i → j` creates a directed cycle.
fn creates_cycle(parents: &[Vec<AttrId>], i: AttrId, j: AttrId) -> bool {
    let mut candidate = parents.to_vec();
    candidate[j.0].push(i);
    topological_order(&candidate).is_none()
}

/// Whether reversing `i → j` to `j → i` creates a cycle.
fn creates_cycle_after_reverse(parents: &[Vec<AttrId>], i: AttrId, j: AttrId) -> bool {
    let mut candidate = parents.to_vec();
    candidate[j.0].retain(|&p| p != i);
    candidate[i.0].push(j);
    topological_order(&candidate).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use themis_aggregates::AggregateResult;
    use themis_data::{Attribute, Domain, Relation, Schema};

    /// Population where Y is a noisy copy of X and Z is independent.
    fn dependent_population(n: usize) -> Relation {
        let schema = Schema::new(vec![
            Attribute::new("x", Domain::indexed("x", 3)),
            Attribute::new("y", Domain::indexed("y", 3)),
            Attribute::new("z", Domain::indexed("z", 2)),
        ]);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut p = Relation::new(schema);
        for _ in 0..n {
            let x = rng.gen_range(0..3u32);
            let y = if rng.gen_bool(0.85) { x } else { rng.gen_range(0..3u32) };
            let z = u32::from(rng.gen_bool(0.5));
            p.push_row(&[x, y, z]);
        }
        p
    }

    #[test]
    fn sample_only_finds_the_dependence() {
        let p = dependent_population(2000);
        let parents = learn_structure(
            &p,
            &AggregateSet::new(),
            2000.0,
            StructureSource::SampleOnly,
            &StructureOptions::default(),
        );
        // X-Y must be connected in one direction; Z must stay isolated.
        let xy = parents[1].contains(&AttrId(0)) || parents[0].contains(&AttrId(1));
        assert!(xy, "X-Y edge missing: {parents:?}");
        assert!(parents[2].is_empty(), "Z should have no parents");
        assert!(!parents[0].contains(&AttrId(2)) && !parents[1].contains(&AttrId(2)));
    }

    #[test]
    fn aggregates_only_limits_to_covered_attrs() {
        let p = dependent_population(2000);
        let set = AggregateSet::from_results(vec![AggregateResult::compute(
            &p,
            &[AttrId(0), AttrId(1)],
        )]);
        let parents = learn_structure(
            &p,
            &set,
            2000.0,
            StructureSource::AggregatesOnly,
            &StructureOptions::default(),
        );
        let xy = parents[1].contains(&AttrId(0)) || parents[0].contains(&AttrId(1));
        assert!(xy, "X-Y edge missing: {parents:?}");
        // Z is not covered by Γ: it must stay disconnected.
        assert!(parents[2].is_empty());
    }

    #[test]
    fn phase_one_edges_survive_phase_two() {
        // Aggregates say X-Y are dependent; a pathological sample that says
        // otherwise must not remove the locked edge.
        let p = dependent_population(2000);
        let set = AggregateSet::from_results(vec![AggregateResult::compute(
            &p,
            &[AttrId(0), AttrId(1)],
        )]);
        // Adversarial sample: X and Y independent.
        let schema = p.schema().clone();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut s = Relation::new(schema);
        for _ in 0..500 {
            s.push_row(&[rng.gen_range(0..3), rng.gen_range(0..3), u32::from(rng.gen_bool(0.5))]);
        }
        let parents = learn_structure(
            &s,
            &set,
            2000.0,
            StructureSource::Both,
            &StructureOptions::default(),
        );
        let xy = parents[1].contains(&AttrId(0)) || parents[0].contains(&AttrId(1));
        assert!(xy, "locked Γ edge was dropped: {parents:?}");
    }

    #[test]
    fn max_parents_is_respected() {
        let p = dependent_population(2000);
        for max_parents in [1usize, 2] {
            let parents = learn_structure(
                &p,
                &AggregateSet::new(),
                2000.0,
                StructureSource::SampleOnly,
                &StructureOptions { max_parents, ..StructureOptions::default() },
            );
            assert!(parents.iter().all(|ps| ps.len() <= max_parents));
        }
    }

    #[test]
    fn restarts_never_regress_the_score() {
        let p = dependent_population(1500);
        let plain = learn_structure(
            &p,
            &AggregateSet::new(),
            1500.0,
            StructureSource::SampleOnly,
            &StructureOptions::default(),
        );
        let restarted = learn_structure(
            &p,
            &AggregateSet::new(),
            1500.0,
            StructureSource::SampleOnly,
            &StructureOptions {
                restarts: 4,
                ..StructureOptions::default()
            },
        );
        use crate::score::SampleSource;
        let src = SampleSource::new(&p);
        let score = |parents: &[Vec<AttrId>]| super::total_bic(&p, &src, parents);
        assert!(score(&restarted) >= score(&plain) - 1e-9);
        assert!(topological_order(&restarted).is_some());
        assert!(restarted.iter().all(|ps| ps.len() <= 1));
    }

    #[test]
    fn restarts_preserve_locked_edges() {
        let p = dependent_population(1500);
        let set = AggregateSet::from_results(vec![AggregateResult::compute(
            &p,
            &[AttrId(0), AttrId(1)],
        )]);
        let parents = learn_structure(
            &p,
            &set,
            1500.0,
            StructureSource::Both,
            &StructureOptions {
                restarts: 4,
                ..StructureOptions::default()
            },
        );
        let xy = parents[1].contains(&AttrId(0)) || parents[0].contains(&AttrId(1));
        assert!(xy, "Γ edge must survive restarts: {parents:?}");
    }

    #[test]
    fn structure_is_acyclic() {
        let p = dependent_population(1000);
        let parents = learn_structure(
            &p,
            &AggregateSet::new(),
            1000.0,
            StructureSource::SampleOnly,
            &StructureOptions { max_parents: 2, ..StructureOptions::default() },
        );
        assert!(topological_order(&parents).is_some());
    }
}
