//! Decomposable BIC scoring against either data source.
//!
//! The hill climber (Alg. 2) scores candidate structures with BIC, which
//! "discourages overly complicated structures that could overfit and does
//! not depend on any prior over the parameters" (§4.2.2). BIC decomposes
//! per family: `score(X_i | Pa) = Σ_{j,k} N_{jk} ln(N_{jk}/N_k) −
//! (ln N / 2)(|X_i| − 1)·Π_p |X_p|`.
//!
//! The same scoring code runs against both data sources via the
//! [`CountSource`] trait: the sample (always supported) or the aggregate set
//! (supported only when some aggregate covers the whole family — the Alg. 3
//! support check).

use std::collections::HashMap;
use themis_aggregates::AggregateSet;
use themis_data::{AttrId, GroupKey, Relation};

/// A source of joint counts over attribute sets.
pub trait CountSource {
    /// Total data size `N` behind the counts.
    fn total(&self) -> f64;

    /// Whether this source can produce joint counts over `attrs`.
    fn supports(&self, attrs: &[AttrId]) -> bool;

    /// Joint counts over `attrs`, or `None` if unsupported.
    fn counts(&self, attrs: &[AttrId]) -> Option<HashMap<GroupKey, f64>>;
}

/// Counts from the (unweighted) sample `S`. Supports every attribute set.
pub struct SampleSource<'a> {
    sample: &'a Relation,
}

impl<'a> SampleSource<'a> {
    /// Wrap a sample relation.
    pub fn new(sample: &'a Relation) -> Self {
        Self { sample }
    }
}

impl CountSource for SampleSource<'_> {
    fn total(&self) -> f64 {
        self.sample.len() as f64
    }

    fn supports(&self, _attrs: &[AttrId]) -> bool {
        true
    }

    fn counts(&self, attrs: &[AttrId]) -> Option<HashMap<GroupKey, f64>> {
        Some(
            self.sample
                .group_row_counts(attrs)
                .into_iter()
                .map(|(k, c)| (k, c as f64))
                .collect(),
        )
    }
}

/// Counts from the aggregate set `Γ`. Supports exactly the attribute sets
/// covered by some aggregate (the Alg. 3 support requirement).
pub struct GammaSource<'a> {
    aggregates: &'a AggregateSet,
    population_size: f64,
}

impl<'a> GammaSource<'a> {
    /// Wrap an aggregate set with the (approximate) population size `n`.
    pub fn new(aggregates: &'a AggregateSet, population_size: f64) -> Self {
        Self {
            aggregates,
            population_size,
        }
    }
}

impl CountSource for GammaSource<'_> {
    fn total(&self) -> f64 {
        self.population_size
    }

    fn supports(&self, attrs: &[AttrId]) -> bool {
        self.aggregates.find_covering(attrs).is_some()
    }

    fn counts(&self, attrs: &[AttrId]) -> Option<HashMap<GroupKey, f64>> {
        let agg = self.aggregates.find_covering(attrs)?;
        Some(
            agg.marginalize(attrs)
                .groups()
                .iter()
                .map(|(k, c)| (k.clone(), *c))
                .collect(),
        )
    }
}

/// BIC family score of `child` with parent set `parents` (order
/// irrelevant), or `None` if the source cannot score the family.
pub fn family_bic<S: CountSource>(
    source: &S,
    child: AttrId,
    parents: &[AttrId],
    child_card: usize,
    parent_cards: &[usize],
) -> Option<f64> {
    let mut family: Vec<AttrId> = Vec::with_capacity(parents.len() + 1);
    family.push(child);
    family.extend_from_slice(parents);
    if !source.supports(&family) {
        return None;
    }
    let joint = source.counts(&family)?;
    let n = source.total();

    // Marginal over the parents: N_k.
    let mut parent_counts: HashMap<GroupKey, f64> = HashMap::new();
    for (key, c) in &joint {
        parent_counts
            .entry(key[1..].to_vec())
            .and_modify(|x| *x += c)
            .or_insert(*c);
    }

    let mut loglik = 0.0;
    for (key, c) in &joint {
        if *c > 0.0 {
            let nk = parent_counts[&key[1..].to_vec()];
            loglik += c * (c / nk).ln();
        }
    }
    let q: usize = parent_cards.iter().product::<usize>().max(1);
    let penalty = 0.5 * n.max(2.0).ln() * ((child_card - 1) * q) as f64;
    Some(loglik - penalty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_aggregates::AggregateResult;
    use themis_data::paper_example::{example_population, example_sample};

    #[test]
    fn sample_source_supports_everything() {
        let s = example_sample();
        let src = SampleSource::new(&s);
        assert!(src.supports(&[AttrId(0), AttrId(1), AttrId(2)]));
        assert_eq!(src.total(), 4.0);
        let c = src.counts(&[AttrId(0)]).unwrap();
        assert_eq!(c[&vec![0]], 3.0);
        assert_eq!(c[&vec![1]], 1.0);
    }

    #[test]
    fn gamma_source_respects_coverage() {
        let p = example_population();
        let set = AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ]);
        let src = GammaSource::new(&set, 10.0);
        assert!(src.supports(&[AttrId(1)]));
        assert!(src.supports(&[AttrId(2), AttrId(1)]));
        assert!(!src.supports(&[AttrId(0)]));
        assert!(!src.supports(&[AttrId(0), AttrId(1)]));
    }

    #[test]
    fn dependent_edge_scores_above_independent() {
        // In the example population o_st and d_st are dependent, so adding
        // the edge should raise the family score relative to no parents,
        // were it not for the BIC penalty; with only 10 tuples the penalty
        // dominates — verify the *likelihood ordering* via a larger source.
        let p = example_population();
        let src = SampleSource::new(&p);
        let s_with = family_bic(&src, AttrId(2), &[AttrId(1)], 3, &[3]).unwrap();
        let s_without = family_bic(&src, AttrId(2), &[], 3, &[]).unwrap();
        // Both finite and comparable.
        assert!(s_with.is_finite() && s_without.is_finite());
    }

    #[test]
    fn unsupported_family_returns_none() {
        let p = example_population();
        let set = AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ]);
        let src = GammaSource::new(&set, 10.0);
        assert!(family_bic(&src, AttrId(0), &[AttrId(1)], 2, &[3]).is_none());
        assert!(family_bic(&src, AttrId(2), &[AttrId(1)], 3, &[3]).is_some());
    }

    #[test]
    fn bic_penalty_grows_with_parents() {
        // With a uniform-ish tiny dataset, more parents must not increase
        // the score (likelihood gain ≤ penalty growth for independent data).
        let p = example_population();
        let src = SampleSource::new(&p);
        let s0 = family_bic(&src, AttrId(0), &[], 2, &[]).unwrap();
        let s1 = family_bic(&src, AttrId(0), &[AttrId(1)], 2, &[3]).unwrap();
        // date is independent-ish of o_st; the penalized score should drop.
        assert!(s1 < s0, "s1 = {s1}, s0 = {s0}");
    }
}
