//! Discrete factors for sum-product inference.
//!
//! A [`Factor`] is a non-negative table over a set of attributes. Variable
//! elimination multiplies factors and sums out variables; both operations
//! are implemented over a mixed-radix index layout (first variable most
//! significant).

use themis_data::AttrId;

/// A discrete factor over an ordered list of variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    /// Variables in index order (most significant first).
    pub vars: Vec<AttrId>,
    /// Cardinalities aligned with `vars`.
    pub cards: Vec<usize>,
    /// Flat table of size `Π cards`.
    pub table: Vec<f64>,
}

impl Factor {
    /// A constant scalar factor (no variables).
    pub fn scalar(value: f64) -> Self {
        Self {
            vars: vec![],
            cards: vec![],
            table: vec![value],
        }
    }

    /// Build a factor, checking the table size.
    ///
    /// # Panics
    /// Panics if `table.len() != Π cards` or `vars` and `cards` differ in
    /// length.
    pub fn new(vars: Vec<AttrId>, cards: Vec<usize>, table: Vec<f64>) -> Self {
        assert_eq!(vars.len(), cards.len(), "vars/cards mismatch");
        let size: usize = cards.iter().product::<usize>().max(1);
        assert_eq!(table.len(), size, "table size mismatch");
        Self { vars, cards, table }
    }

    /// Number of table entries.
    pub fn size(&self) -> usize {
        self.table.len()
    }

    /// Index of an assignment given values for (a superset of) this factor's
    /// variables, provided as a lookup function.
    fn index_of(&self, value_of: impl Fn(AttrId) -> u32) -> usize {
        let mut idx = 0usize;
        for (&v, &c) in self.vars.iter().zip(&self.cards) {
            idx = idx * c + value_of(v) as usize;
        }
        idx
    }

    /// Value at a full assignment over this factor's variables (in `vars`
    /// order).
    pub fn at(&self, values: &[u32]) -> f64 {
        assert_eq!(values.len(), self.vars.len());
        self.table[self.index_of(|a| {
            // themis-lint: allow(no-panic-in-libs) reason=index_of only asks for this factor's own vars, each of which is in self.vars
            values[self.vars.iter().position(|&v| v == a).expect("own var")]
        })]
    }

    /// Pointwise product of two factors over the union of their variables.
    pub fn multiply(&self, other: &Factor) -> Factor {
        // Union of variables, self's first.
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        for (&v, &c) in other.vars.iter().zip(&other.cards) {
            if !vars.contains(&v) {
                vars.push(v);
                cards.push(c);
            }
        }
        let size: usize = cards.iter().product::<usize>().max(1);
        let mut table = vec![0.0; size];

        // Walk all assignments of the union via mixed-radix counting.
        let mut assignment = vec![0u32; vars.len()];
        for (flat, entry) in table.iter_mut().enumerate() {
            // Decode flat index into the assignment.
            let mut rem = flat;
            for i in (0..vars.len()).rev() {
                assignment[i] = (rem % cards[i]) as u32;
                rem /= cards[i];
            }
            let value_of = |a: AttrId| {
                // themis-lint: allow(no-panic-in-libs) reason=vars is the union of both factors' vars, so every queried var is present
                assignment[vars.iter().position(|&v| v == a).expect("var in union")]
            };
            let left = self.table[self.index_of(value_of)];
            let right = other.table[other.index_of(value_of)];
            *entry = left * right;
        }
        Factor { vars, cards, table }
    }

    /// Sum out one variable.
    ///
    /// # Panics
    /// Panics if `var` is not in this factor.
    pub fn marginalize_out(&self, var: AttrId) -> Factor {
        let pos = self
            .vars
            .iter()
            .position(|&v| v == var)
            // themis-lint: allow(no-panic-in-libs) reason=documented `# Panics` contract of marginalize_out
            .expect("variable not in factor");
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        let removed_card = cards.remove(pos);
        vars.remove(pos);

        let size: usize = cards.iter().product::<usize>().max(1);
        let mut table = vec![0.0; size];
        let mut assignment = vec![0u32; self.vars.len()];
        for (flat, &value) in self.table.iter().enumerate() {
            let mut rem = flat;
            for i in (0..self.vars.len()).rev() {
                assignment[i] = (rem % self.cards[i]) as u32;
                rem /= self.cards[i];
            }
            // Index into the reduced factor.
            let mut idx = 0usize;
            for (i, (&_v, &c)) in vars.iter().zip(&cards).enumerate() {
                let orig = if i < pos { i } else { i + 1 };
                idx = idx * c + assignment[orig] as usize;
            }
            table[idx] += value;
        }
        debug_assert!(removed_card > 0);
        Factor { vars, cards, table }
    }

    /// Restrict (condition) a variable to a fixed value, removing it.
    ///
    /// # Panics
    /// Panics if `var` is not in this factor or `value` is out of range.
    pub fn restrict(&self, var: AttrId, value: u32) -> Factor {
        let pos = self
            .vars
            .iter()
            .position(|&v| v == var)
            // themis-lint: allow(no-panic-in-libs) reason=documented `# Panics` contract of restrict
            .expect("variable not in factor");
        assert!((value as usize) < self.cards[pos], "value out of range");
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        cards.remove(pos);

        let size: usize = cards.iter().product::<usize>().max(1);
        let mut table = vec![0.0; size];
        let mut assignment = vec![0u32; self.vars.len()];
        for (flat, &v) in self.table.iter().enumerate() {
            let mut rem = flat;
            for i in (0..self.vars.len()).rev() {
                assignment[i] = (rem % self.cards[i]) as u32;
                rem /= self.cards[i];
            }
            if assignment[pos] != value {
                continue;
            }
            let mut idx = 0usize;
            for (i, &c) in cards.iter().enumerate() {
                let orig = if i < pos { i } else { i + 1 };
                idx = idx * c + assignment[orig] as usize;
            }
            table[idx] += v;
        }
        Factor { vars, cards, table }
    }

    /// Sum of all entries.
    pub fn total(&self) -> f64 {
        self.table.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f_ab() -> Factor {
        // A (card 2) × B (card 2): table [a0b0, a0b1, a1b0, a1b1].
        Factor::new(
            vec![AttrId(0), AttrId(1)],
            vec![2, 2],
            vec![0.1, 0.2, 0.3, 0.4],
        )
    }

    fn f_b() -> Factor {
        Factor::new(vec![AttrId(1)], vec![2], vec![0.5, 2.0])
    }

    #[test]
    fn at_indexes_mixed_radix() {
        let f = f_ab();
        assert_eq!(f.at(&[0, 1]), 0.2);
        assert_eq!(f.at(&[1, 0]), 0.3);
    }

    #[test]
    fn multiply_broadcasts_shared_vars() {
        let p = f_ab().multiply(&f_b());
        assert_eq!(p.vars, vec![AttrId(0), AttrId(1)]);
        assert!((p.at(&[0, 0]) - 0.05).abs() < 1e-12);
        assert!((p.at(&[0, 1]) - 0.4).abs() < 1e-12);
        assert!((p.at(&[1, 1]) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn multiply_disjoint_is_outer_product() {
        let a = Factor::new(vec![AttrId(0)], vec![2], vec![0.25, 0.75]);
        let c = Factor::new(vec![AttrId(2)], vec![3], vec![1.0, 2.0, 3.0]);
        let p = a.multiply(&c);
        assert_eq!(p.size(), 6);
        assert!((p.at(&[1, 2]) - 2.25).abs() < 1e-12);
        assert!((p.total() - 1.0 * 6.0).abs() < 1e-12);
    }

    #[test]
    fn marginalize_out_sums() {
        let m = f_ab().marginalize_out(AttrId(1));
        assert_eq!(m.vars, vec![AttrId(0)]);
        assert!((m.at(&[0]) - 0.3).abs() < 1e-12);
        assert!((m.at(&[1]) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn restrict_conditions() {
        let r = f_ab().restrict(AttrId(0), 1);
        assert_eq!(r.vars, vec![AttrId(1)]);
        assert_eq!(r.table, vec![0.3, 0.4]);
    }

    #[test]
    fn scalar_factor_multiplies_as_constant() {
        let s = Factor::scalar(2.0);
        let p = s.multiply(&f_b());
        assert_eq!(p.table, vec![1.0, 4.0]);
    }

    #[test]
    fn marginalize_then_total_preserves_mass() {
        let f = f_ab();
        let total = f.total();
        let m = f.marginalize_out(AttrId(0));
        assert!((m.total() - total).abs() < 1e-12);
    }
}
