//! Parameter learning with aggregate constraints (Eq. 2, simplified per
//! §5.2).
//!
//! BN parameters maximize the sample likelihood subject to the aggregate
//! constraints. The unsimplified problem has nonlinear constraints over
//! products of factors and is intractable (§6: "experiments did not finish
//! in under 10 hours without using the optimization"). The §5.2
//! simplification makes it tractable:
//!
//! 1. only aggregate constraints acting on a *single factor* — a child `X_i`
//!    together with (a subset of) its parents — are added; aggregates that
//!    mention other attributes are marginalized down onto the factor's
//!    attributes first (Example 5.1 turns the `(O, DE)` aggregate into one
//!    over `O` by aggregation when solving `O`),
//! 2. factors are solved in *topological order*, so every ancestor term in a
//!    constraint is an already-known constant and the constraint becomes
//!    linear in the factor's parameters.
//!
//! Each per-factor problem is a [`ConstrainedMle`]: maximize the (smoothed)
//! count likelihood over the CPT's simplex blocks subject to the linear
//! aggregate constraints.

use crate::inference::point_probability;
use crate::network::{BayesianNetwork, Cpt};
use themis_aggregates::AggregateSet;
use themis_data::{AttrId, Relation};
use themis_solver::constrained::{ConstrainedMle, LinearConstraint};

/// Which data source(s) drive parameter learning (the second letter of the
/// §6.6 mode names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamSource {
    /// Sample only (`*S` modes): smoothed maximum likelihood.
    SampleOnly,
    /// Both (`*B` modes): constrained maximum likelihood.
    Both,
}

/// Options for parameter learning.
#[derive(Debug, Clone)]
pub struct ParamOptions {
    /// Additive (Laplace) smoothing applied to the sample counts. The
    /// paper's prototype inherits BNLearn-style smoothing; with very dense
    /// attributes (IMDB's `name`) this drives the learned marginal towards
    /// uniform — exactly the §6.4 failure mode.
    pub laplace: f64,
}

impl Default for ParamOptions {
    fn default() -> Self {
        Self { laplace: 1.0 }
    }
}

/// Learn all CPTs for a given structure.
pub fn learn_parameters(
    sample: &Relation,
    aggregates: &AggregateSet,
    population_size: f64,
    parents: Vec<Vec<AttrId>>,
    source: ParamSource,
    options: &ParamOptions,
) -> BayesianNetwork {
    let schema = sample.schema().clone();
    // Start with uniform CPTs; nodes are filled in topological order, so by
    // the time a node is solved all its ancestors carry final parameters.
    let uniform_cpts: Vec<Cpt> = schema
        .attr_ids()
        .map(|a| {
            let pcards: Vec<usize> = parents[a.0]
                .iter()
                .map(|&p| schema.domain(p).size())
                .collect();
            Cpt::uniform(schema.domain(a).size(), pcards)
        })
        .collect();
    let mut net = BayesianNetwork::new(schema.clone(), parents.clone(), uniform_cpts);

    let order = net
        .topological_order()
        // themis-lint: allow(no-panic-in-libs) reason=structure learning emits tree/forest parent sets, which are acyclic by construction
        .expect("structure learning produces DAGs");

    for node in order {
        let cpt = solve_factor(sample, aggregates, population_size, &net, node, source, options);
        *net.cpt_mut(node) = cpt;
    }
    net
}

/// Solve one factor `Pr(node | Pa(node))`.
fn solve_factor(
    sample: &Relation,
    aggregates: &AggregateSet,
    population_size: f64,
    net: &BayesianNetwork,
    node: AttrId,
    source: ParamSource,
    options: &ParamOptions,
) -> Cpt {
    let schema = net.schema();
    let card = schema.domain(node).size();
    let parents = net.parents(node).to_vec();
    let parent_cards: Vec<usize> = parents.iter().map(|&p| schema.domain(p).size()).collect();
    let configs: usize = parent_cards.iter().product::<usize>().max(1);

    // Smoothed counts in (config, value) order.
    let mut counts = vec![options.laplace; configs * card];
    let mut family = vec![node];
    family.extend_from_slice(&parents);
    for (key, c) in sample.group_row_counts(&family) {
        let mut config = 0usize;
        for (i, &pc) in parent_cards.iter().enumerate() {
            config = config * pc + key[1 + i] as usize;
        }
        counts[config * card + key[0] as usize] += c as f64;
    }

    let constraints = match source {
        ParamSource::SampleOnly => Vec::new(),
        ParamSource::Both => build_factor_constraints(
            aggregates,
            population_size,
            net,
            node,
            card,
            &parents,
            &parent_cards,
        ),
    };

    let problem = ConstrainedMle::new(vec![card; configs], counts, constraints);
    let (theta, _report) = problem.solve();

    let mut cpt = Cpt {
        card,
        parent_cards,
        table: theta,
    };
    // Footnote 7: approximate solving can leave tiny negatives.
    cpt.clamp_and_renormalize();
    cpt
}

/// Build the linear constraints for one factor from every aggregate that
/// mentions the child. Aggregates are marginalized onto
/// `{child} ∪ (γ ∩ parents)`; ancestor joint probabilities (computed from
/// the already-solved part of the network) fold into constant coefficients.
fn build_factor_constraints(
    aggregates: &AggregateSet,
    population_size: f64,
    net: &BayesianNetwork,
    node: AttrId,
    card: usize,
    parents: &[AttrId],
    parent_cards: &[usize],
) -> Vec<LinearConstraint> {
    let configs: usize = parent_cards.iter().product::<usize>().max(1);

    // Joint probability of each full parent configuration under the solved
    // ancestors (constants by the topological solving order).
    let mut parent_probs = vec![1.0; configs];
    if !parents.is_empty() {
        let mut values = vec![0u32; parents.len()];
        for (k, pp) in parent_probs.iter_mut().enumerate() {
            let mut rem = k;
            for i in (0..parents.len()).rev() {
                values[i] = (rem % parent_cards[i]) as u32;
                rem /= parent_cards[i];
            }
            *pp = point_probability(net, parents, &values);
        }
    }

    let mut out = Vec::new();
    for agg in aggregates.iter() {
        if !agg.attrs().contains(&node) {
            continue;
        }
        // Marginalize onto the factor's attributes: child first, then the
        // covered parents in parent order.
        let covered_parents: Vec<AttrId> = parents
            .iter()
            .copied()
            .filter(|p| agg.attrs().contains(p))
            .collect();
        let mut onto = vec![node];
        onto.extend_from_slice(&covered_parents);
        let projected = agg.marginalize(&onto);

        // Positions of covered parents within the full parent list.
        let cover_pos: Vec<usize> = covered_parents
            .iter()
            // themis-lint: allow(no-panic-in-libs) reason=covered_parents is filtered from `parents` two statements up, so every element is present
            .map(|cp| parents.iter().position(|p| p == cp).expect("covered parent"))
            .collect();

        for (key, count) in projected.groups() {
            let child_value = key[0];
            debug_assert!((child_value as usize) < card);
            // All full parent configs consistent with the covered-parent
            // values contribute `Pr(parents = k) · θ_{child, k}`.
            let mut terms = Vec::new();
            let mut values = vec![0u32; parents.len()];
            for (k, &pp) in parent_probs.iter().enumerate() {
                let mut rem = k;
                for i in (0..parents.len()).rev() {
                    values[i] = (rem % parent_cards[i]) as u32;
                    rem /= parent_cards[i];
                }
                let consistent = cover_pos
                    .iter()
                    .zip(&key[1..])
                    .all(|(&pos, &v)| values[pos] == v);
                if consistent && pp > 0.0 {
                    terms.push((k * card + child_value as usize, pp));
                }
            }
            if !terms.is_empty() {
                out.push(LinearConstraint {
                    terms,
                    rhs: (count / population_size).min(1.0),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_aggregates::AggregateResult;
    use themis_data::paper_example::{example_population, example_sample};

    fn aggregates() -> AggregateSet {
        let p = example_population();
        AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(0)]),
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ])
    }

    #[test]
    fn sample_only_matches_smoothed_mle() {
        let s = example_sample();
        let net = learn_parameters(
            &s,
            &AggregateSet::new(),
            10.0,
            vec![vec![], vec![], vec![]],
            ParamSource::SampleOnly,
            &ParamOptions { laplace: 0.0 },
        );
        // date: 3 of 4 rows are 01.
        assert!((net.cpt(AttrId(0)).prob(0, &[]) - 0.75).abs() < 1e-9);
        assert!((net.cpt(AttrId(0)).prob(1, &[]) - 0.25).abs() < 1e-9);
        assert!(net.is_normalized(1e-9));
    }

    #[test]
    fn laplace_smoothing_pulls_toward_uniform() {
        let s = example_sample();
        let net = learn_parameters(
            &s,
            &AggregateSet::new(),
            10.0,
            vec![vec![], vec![], vec![]],
            ParamSource::SampleOnly,
            &ParamOptions { laplace: 100.0 },
        );
        let p0 = net.cpt(AttrId(0)).prob(0, &[]);
        assert!((p0 - 0.5).abs() < 0.02, "heavy smoothing ≈ uniform, got {p0}");
    }

    #[test]
    fn root_constraint_pins_marginal_to_aggregate() {
        // The sample has date=01 three out of four times, but Γ says the
        // population is 50/50; constrained learning must follow Γ.
        let s = example_sample();
        let net = learn_parameters(
            &s,
            &aggregates(),
            10.0,
            vec![vec![], vec![], vec![]],
            ParamSource::Both,
            &ParamOptions::default(),
        );
        let p01 = net.cpt(AttrId(0)).prob(0, &[]);
        assert!((p01 - 0.5).abs() < 1e-3, "Pr(date=01) = {p01}, want 0.5");
        assert!(net.is_normalized(1e-9));
    }

    #[test]
    fn child_factor_respects_joint_aggregate() {
        // Structure o_st → d_st; the (o_st, d_st) aggregate constrains the
        // joint, so after learning, n·Pr(o=FL, d=NY) ≈ 1 even though the
        // sample has no FL→NY tuple (the open-world case).
        let s = example_sample();
        let net = learn_parameters(
            &s,
            &aggregates(),
            10.0,
            vec![vec![], vec![], vec![AttrId(1)]],
            ParamSource::Both,
            &ParamOptions::default(),
        );
        let p = point_probability(&net, &[AttrId(1), AttrId(2)], &[0, 2]);
        let expected = 1.0 / 10.0;
        assert!(
            (p - expected).abs() < 0.03,
            "Pr(FL→NY) = {p}, aggregate says {expected}"
        );
    }

    #[test]
    fn marginalized_aggregate_constrains_partially_covered_factor() {
        // Structure: date → o_st. No aggregate covers (date, o_st) jointly,
        // but the (o_st, d_st) aggregate marginalizes onto o_st and must
        // still pin the o_st *marginal*: Σ_d Pr(d) θ_{o|d}.
        let s = example_sample();
        let net = learn_parameters(
            &s,
            &aggregates(),
            10.0,
            vec![vec![], vec![AttrId(0)], vec![]],
            ParamSource::Both,
            &ParamOptions::default(),
        );
        // Population o_st marginal: FL 3, NC 4, NY 3 → 0.3/0.4/0.3.
        let p_nc = point_probability(&net, &[AttrId(1)], &[1]);
        assert!((p_nc - 0.4).abs() < 0.02, "Pr(o=NC) = {p_nc}, want 0.4");
    }

    #[test]
    fn cpts_are_normalized_after_constrained_solve() {
        let s = example_sample();
        let net = learn_parameters(
            &s,
            &aggregates(),
            10.0,
            vec![vec![], vec![AttrId(0)], vec![AttrId(1)]],
            ParamSource::Both,
            &ParamOptions::default(),
        );
        assert!(net.is_normalized(1e-9));
    }
}
