//! # themis-bn
//!
//! Discrete Bayesian-network substrate for Themis (§4.2 of the paper).
//!
//! Themis cannot use off-the-shelf BN learners because the population is
//! unavailable: both the structure and the parameters must be learned from
//! the biased sample `S` *and* the population aggregates `Γ` together. This
//! crate provides:
//!
//! * [`network`] — DAGs with conditional probability tables,
//! * [`factor`] — discrete factors and the sum-product operations behind
//!   exact inference,
//! * [`inference`] — variable elimination for point-probability queries,
//! * [`score`] — decomposable BIC scoring against either data source,
//! * [`structure`] — the two-phase greedy hill climber of Alg. 2/3 (build
//!   from `Γ` first with support checks and edge locking, then from `S`),
//! * [`parameters`] — maximum-likelihood parameter learning with aggregate
//!   constraints (Eq. 2), simplified to per-factor linear constraints solved
//!   in topological order (§5.2),
//! * [`sampling`] — forward/logic sampling and the K-replicate `GROUP BY`
//!   answering of §4.2.4,
//! * [`modes`] — the five structure/parameter source combinations evaluated
//!   in §6.6 (SS, SB, BS, AB, BB),
//! * [`joint`] — a deliberately naive *unsimplified* Eq. 2 solver used only
//!   to demonstrate why the §5.2 simplification is necessary.

#![forbid(unsafe_code)]

pub mod factor;
pub mod inference;
pub mod joint;
pub mod modes;
pub mod network;
pub mod parameters;
pub mod sampling;
pub mod score;
pub mod structure;

pub use inference::{conditional_probability, point_probability};
pub use modes::{learn, LearnMode, LearnOptions};
pub use network::{BayesianNetwork, Cpt};
pub use sampling::{answer_group_by, forward_sample};
pub use structure::{learn_structure, StructureOptions, StructureSource};
