//! The *unsimplified* Eq. 2 solver — ablation only.
//!
//! Without the §5.2 simplification, each aggregate constraint couples the
//! parameters of every factor through a sum over `O(Π_{j∉J} N_j)` joint
//! assignments, and the constraints are nonlinear (products of parameters
//! across factors). The paper reports that experiments without the
//! simplification "did not finish in under 10 hours". This module implements
//! the naive formulation by full joint enumeration with a quadratic-penalty
//! method so the benchmark suite can demonstrate the blow-up on small
//! networks; it refuses inputs whose joint space exceeds a hard cap.

use crate::network::BayesianNetwork;
use themis_aggregates::AggregateSet;
use themis_data::{AttrId, Relation};

/// Hard cap on the joint-assignment space; beyond this the naive method is
/// hopeless (which is the point of the ablation).
pub const MAX_JOINT_CELLS: usize = 1 << 16;

/// Report from the joint solve.
#[derive(Debug, Clone, PartialEq)]
pub struct JointReport {
    /// Gradient/objective sweeps performed.
    pub iterations: usize,
    /// Joint assignments enumerated per constraint evaluation.
    pub joint_cells: usize,
    /// Final maximum constraint violation.
    pub feasibility: f64,
}

/// Learn all CPT parameters jointly with full nonlinear constraints (penalty
/// method + mirror descent over every factor simultaneously).
///
/// # Panics
/// Panics if the schema's joint space exceeds [`MAX_JOINT_CELLS`].
pub fn learn_parameters_joint(
    sample: &Relation,
    aggregates: &AggregateSet,
    population_size: f64,
    parents: Vec<Vec<AttrId>>,
    iterations: usize,
) -> (BayesianNetwork, JointReport) {
    let schema = sample.schema().clone();
    let joint_cells = schema.joint_cells();
    assert!(
        joint_cells <= MAX_JOINT_CELLS,
        "joint space {joint_cells} exceeds the naive solver's cap — \
         this is exactly why §5.2 exists"
    );

    // Start from the smoothed sample MLE.
    let mut net = crate::parameters::learn_parameters(
        sample,
        &AggregateSet::new(),
        population_size,
        parents,
        crate::parameters::ParamSource::SampleOnly,
        &crate::parameters::ParamOptions::default(),
    );

    let cards: Vec<usize> = schema
        .attr_ids()
        .map(|a| schema.domain(a).size())
        .collect();
    let arity = cards.len();

    // Precompute, per aggregate group, the set of joint assignments that
    // participate (consistency masks would be cheaper, but clarity wins in
    // an ablation).
    let mut constraint_targets: Vec<(Vec<AttrId>, Vec<u32>, f64)> = Vec::new();
    for agg in aggregates.iter() {
        for (key, c) in agg.groups() {
            constraint_targets.push((agg.attrs().to_vec(), key.clone(), c / population_size));
        }
    }

    let mut assignment = vec![0u32; arity];
    let decode = |flat: usize, assignment: &mut [u32], cards: &[usize]| {
        let mut rem = flat;
        for i in (0..cards.len()).rev() {
            assignment[i] = (rem % cards[i]) as u32;
            rem /= cards[i];
        }
    };

    let mu = 50.0;
    let mut step: f64 = 0.02;
    let mut feasibility = f64::INFINITY;
    let mut prev_feasibility = f64::INFINITY;
    for _ in 0..iterations {
        // Evaluate constraint residuals by full enumeration.
        let mut residuals = vec![0.0f64; constraint_targets.len()];
        for flat in 0..joint_cells {
            decode(flat, &mut assignment, &cards);
            let p = net.joint_prob(&assignment);
            if p == 0.0 {
                continue;
            }
            for (r, (attrs, key, _)) in residuals.iter_mut().zip(&constraint_targets) {
                if attrs.iter().zip(key).all(|(&a, &v)| assignment[a.0] == v) {
                    *r += p;
                }
            }
        }
        for (r, (_, _, target)) in residuals.iter_mut().zip(&constraint_targets) {
            *r -= target;
        }
        feasibility = residuals.iter().fold(0.0f64, |m, r| m.max(r.abs()));
        if feasibility < 1e-6 {
            break;
        }
        // Crude step control: back off when a sweep makes feasibility worse
        // (the multiplicative updates overshoot easily).
        if feasibility > prev_feasibility {
            step *= 0.5;
        } else {
            step = (step * 1.05).min(0.05);
        }
        prev_feasibility = feasibility;

        // Penalty-gradient step on every CPT entry (gradient of the squared
        // residual w.r.t. θ_{i,j,k} again needs a joint enumeration).
        let mut grads: Vec<Vec<f64>> = (0..arity)
            .map(|i| vec![0.0; net.cpt(AttrId(i)).table.len()])
            .collect();
        for flat in 0..joint_cells {
            decode(flat, &mut assignment, &cards);
            let p = net.joint_prob(&assignment);
            for (r, (attrs, key, _)) in residuals.iter().zip(&constraint_targets) {
                if !attrs.iter().zip(key).all(|(&a, &v)| assignment[a.0] == v) {
                    continue;
                }
                let coef = 2.0 * mu * r;
                for i in 0..arity {
                    let cpt = net.cpt(AttrId(i));
                    let pv: Vec<u32> = net.parents(AttrId(i)).iter().map(|&p| assignment[p.0]).collect();
                    let config = cpt.config_index(&pv);
                    let idx = config * cpt.card + assignment[i] as usize;
                    let theta = cpt.table[idx].max(1e-12);
                    // ∂(Π θ)/∂θ_i = p / θ_i.
                    grads[i][idx] += coef * p / theta;
                }
            }
        }
        for (i, grad) in grads.iter().enumerate() {
            let cpt = net.cpt_mut(AttrId(i));
            for (t, g) in cpt.table.iter_mut().zip(grad) {
                let e = (-step * g).clamp(-1.0, 1.0);
                *t = (*t).max(1e-12) * e.exp();
            }
            for config in 0..cpt.configs() {
                let row = cpt.row_mut(config);
                let sum: f64 = row.iter().sum();
                row.iter_mut().for_each(|p| *p /= sum);
            }
        }
    }

    (
        net,
        JointReport {
            iterations,
            joint_cells,
            feasibility,
        },
    )
}

/// Number of CPT parameters a joint solve touches per gradient sweep —
/// used by the ablation bench to report work.
pub fn joint_work(net: &BayesianNetwork, aggregates: &AggregateSet) -> usize {
    net.schema().joint_cells() * aggregates.total_groups()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::point_probability;
    use themis_aggregates::AggregateResult;
    use themis_data::paper_example::{example_population, example_sample};

    #[test]
    fn joint_solver_moves_toward_constraints() {
        let p = example_population();
        let s = example_sample();
        let set = AggregateSet::from_results(vec![AggregateResult::compute(&p, &[AttrId(0)])]);
        let (net, report) = learn_parameters_joint(&s, &set, 10.0, vec![vec![], vec![], vec![]], 200);
        // Sample says Pr(date=01) = 0.75; aggregate says 0.5.
        let prob = point_probability(&net, &[AttrId(0)], &[0]);
        assert!(
            (prob - 0.5).abs() < 0.05,
            "penalty method should approach 0.5, got {prob} ({report:?})"
        );
    }

    #[test]
    fn work_scales_with_joint_cells() {
        let p = example_population();
        let s = example_sample();
        let set = AggregateSet::from_results(vec![
            AggregateResult::compute(&p, &[AttrId(1), AttrId(2)]),
        ]);
        let (net, report) = learn_parameters_joint(&s, &set, 10.0, vec![vec![], vec![], vec![]], 5);
        assert_eq!(report.joint_cells, 2 * 3 * 3);
        assert!(joint_work(&net, &set) >= report.joint_cells);
    }

    #[test]
    #[should_panic(expected = "exceeds the naive solver's cap")]
    fn refuses_large_joint_spaces() {
        use themis_data::{Attribute, Domain, Relation, Schema};
        let schema = Schema::new(
            (0..9)
                .map(|i| Attribute::new(format!("a{i}"), Domain::indexed(format!("a{i}"), 8)))
                .collect(),
        );
        let mut s = Relation::new(schema);
        s.push_row(&[0; 9]);
        learn_parameters_joint(&s, &AggregateSet::new(), 10.0, vec![vec![]; 9], 1);
    }
}
