//! Exact inference by variable elimination.
//!
//! Point queries are answered as `n · Pr(X_{q1} = v_1, …, X_{qd} = v_d)`
//! (§4.2.4); the probability is an exact marginal of the Bayesian network
//! computed by sum-product variable elimination with a min-degree
//! elimination order.

use crate::factor::Factor;
use crate::network::BayesianNetwork;
use themis_data::AttrId;

/// Exact marginal probability `Pr(⋀_i X_{attrs[i]} = values[i])`.
///
/// # Panics
/// Panics if `attrs` and `values` differ in length or contain an attribute
/// twice.
pub fn point_probability(net: &BayesianNetwork, attrs: &[AttrId], values: &[u32]) -> f64 {
    assert_eq!(attrs.len(), values.len());
    for i in 0..attrs.len() {
        for j in (i + 1)..attrs.len() {
            assert_ne!(attrs[i], attrs[j], "duplicate query attribute");
        }
    }

    // Build one factor per CPT, restricting evidence variables immediately.
    let mut factors: Vec<Factor> = Vec::with_capacity(net.arity());
    for node in net.schema().attr_ids() {
        let cpt = net.cpt(node);
        let mut vars = vec![node];
        let mut cards = vec![cpt.card];
        for &p in net.parents(node) {
            vars.push(p);
            cards.push(net.schema().domain(p).size());
        }
        // CPT layout is (parents most significant, child least); our factor
        // layout is vars-order-major. Rebuild the table in (child, parents)
        // order by enumeration.
        let size: usize = cards.iter().product();
        let mut table = vec![0.0; size];
        let mut assignment = vec![0u32; vars.len()];
        for (flat, entry) in table.iter_mut().enumerate() {
            let mut rem = flat;
            for i in (0..vars.len()).rev() {
                assignment[i] = (rem % cards[i]) as u32;
                rem /= cards[i];
            }
            // themis-lint: allow(no-panic-in-libs) reason=vars always starts with the node itself, so assignment has at least one element
            *entry = cpt.prob(assignment[0], &assignment[1..]);
        }
        let mut factor = Factor::new(vars, cards, table);
        // Apply evidence.
        for (&a, &v) in attrs.iter().zip(values) {
            if factor.vars.contains(&a) {
                factor = factor.restrict(a, v);
            }
        }
        factors.push(factor);
    }

    // Eliminate all remaining (hidden) variables, smallest-degree first.
    let mut hidden: Vec<AttrId> = net
        .schema()
        .attr_ids()
        .filter(|a| !attrs.contains(a))
        .collect();

    while let Some(pos) = pick_min_degree(&hidden, &factors) {
        let var = hidden.swap_remove(pos);
        let (with_var, rest): (Vec<Factor>, Vec<Factor>) =
            factors.into_iter().partition(|f| f.vars.contains(&var));
        let mut product = Factor::scalar(1.0);
        for f in with_var {
            product = product.multiply(&f);
        }
        factors = rest;
        factors.push(product.marginalize_out(var));
    }

    factors
        .into_iter()
        .fold(Factor::scalar(1.0), |acc, f| acc.multiply(&f))
        .total()
}

/// Conditional probability `Pr(target = tv | given = gv)` by two marginal
/// queries. Returns `None` when the conditioning event has zero
/// probability.
///
/// # Panics
/// Panics if the target and given sets overlap.
pub fn conditional_probability(
    net: &BayesianNetwork,
    target: &[AttrId],
    target_values: &[u32],
    given: &[AttrId],
    given_values: &[u32],
) -> Option<f64> {
    for t in target {
        assert!(!given.contains(t), "target and given sets must be disjoint");
    }
    let denom = point_probability(net, given, given_values);
    if denom <= 0.0 {
        return None;
    }
    let mut attrs = target.to_vec();
    attrs.extend_from_slice(given);
    let mut values = target_values.to_vec();
    values.extend_from_slice(given_values);
    Some(point_probability(net, &attrs, &values) / denom)
}

/// Index into `hidden` of the variable whose elimination product is
/// smallest (a min-degree-style heuristic).
fn pick_min_degree(hidden: &[AttrId], factors: &[Factor]) -> Option<usize> {
    if hidden.is_empty() {
        return None;
    }
    let mut best: Option<(usize, usize)> = None;
    for (i, &var) in hidden.iter().enumerate() {
        // Size of the union table produced by eliminating var.
        let mut union_vars: Vec<AttrId> = Vec::new();
        let mut union_cards: Vec<usize> = Vec::new();
        for f in factors.iter().filter(|f| f.vars.contains(&var)) {
            for (&v, &c) in f.vars.iter().zip(&f.cards) {
                if !union_vars.contains(&v) {
                    union_vars.push(v);
                    union_cards.push(c);
                }
            }
        }
        let size: usize = union_cards.iter().product::<usize>().max(1);
        if best.is_none_or(|(_, bs)| size < bs) {
            best = Some((i, size));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Cpt;
    use themis_data::paper_example::example_schema;

    fn chain() -> BayesianNetwork {
        let schema = example_schema();
        let cpt_date = Cpt {
            card: 2,
            parent_cards: vec![],
            table: vec![0.5, 0.5],
        };
        let cpt_o = Cpt {
            card: 3,
            parent_cards: vec![2],
            table: vec![0.4, 0.2, 0.4, 0.2, 0.6, 0.2],
        };
        let cpt_d = Cpt {
            card: 3,
            parent_cards: vec![3],
            table: vec![0.5, 0.25, 0.25, 0.3, 0.2, 0.5, 0.4, 0.3, 0.3],
        };
        BayesianNetwork::new(
            schema,
            vec![vec![], vec![AttrId(0)], vec![AttrId(1)]],
            vec![cpt_date, cpt_o, cpt_d],
        )
    }

    /// Brute-force joint enumeration reference.
    fn brute_force(net: &BayesianNetwork, attrs: &[AttrId], values: &[u32]) -> f64 {
        let cards: Vec<usize> = net
            .schema()
            .attr_ids()
            .map(|a| net.schema().domain(a).size())
            .collect();
        let total: usize = cards.iter().product();
        let mut p = 0.0;
        let mut assignment = vec![0u32; cards.len()];
        for flat in 0..total {
            let mut rem = flat;
            for i in (0..cards.len()).rev() {
                assignment[i] = (rem % cards[i]) as u32;
                rem /= cards[i];
            }
            if attrs
                .iter()
                .zip(values)
                .all(|(&a, &v)| assignment[a.0] == v)
            {
                p += net.joint_prob(&assignment);
            }
        }
        p
    }

    #[test]
    fn full_joint_matches_joint_prob() {
        let net = chain();
        let attrs = vec![AttrId(0), AttrId(1), AttrId(2)];
        let p = point_probability(&net, &attrs, &[0, 1, 2]);
        assert!((p - net.joint_prob(&[0, 1, 2])).abs() < 1e-12);
    }

    #[test]
    fn marginals_match_brute_force() {
        let net = chain();
        for a in 0..3 {
            let dom = net.schema().domain(AttrId(a)).size();
            for v in 0..dom as u32 {
                let ve = point_probability(&net, &[AttrId(a)], &[v]);
                let bf = brute_force(&net, &[AttrId(a)], &[v]);
                assert!((ve - bf).abs() < 1e-12, "attr {a} value {v}: {ve} vs {bf}");
            }
        }
    }

    #[test]
    fn pairwise_marginals_match_brute_force() {
        let net = chain();
        for (x, y) in [(0usize, 2usize), (0, 1), (1, 2)] {
            for vx in 0..net.schema().domain(AttrId(x)).size() as u32 {
                for vy in 0..net.schema().domain(AttrId(y)).size() as u32 {
                    let ve = point_probability(&net, &[AttrId(x), AttrId(y)], &[vx, vy]);
                    let bf = brute_force(&net, &[AttrId(x), AttrId(y)], &[vx, vy]);
                    assert!((ve - bf).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn empty_query_is_total_probability() {
        let net = chain();
        let p = point_probability(&net, &[], &[]);
        assert!((p - 1.0).abs() < 1e-10);
    }

    #[test]
    fn marginal_sums_to_one() {
        let net = chain();
        let mut total = 0.0;
        for v in 0..3u32 {
            total += point_probability(&net, &[AttrId(2)], &[v]);
        }
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn conditional_recovers_cpt_entries() {
        // Pr(o_st | date) is exactly the o_st CPT row in the chain.
        let net = chain();
        let p = conditional_probability(&net, &[AttrId(1)], &[1], &[AttrId(0)], &[1]).unwrap();
        assert!((p - 0.6).abs() < 1e-12);
    }

    #[test]
    fn conditional_matches_bayes_rule_backwards() {
        // Pr(date | o_st) via Bayes on brute-force marginals.
        let net = chain();
        let joint = brute_force(&net, &[AttrId(0), AttrId(1)], &[0, 1]);
        let marg = brute_force(&net, &[AttrId(1)], &[1]);
        let expected = joint / marg;
        let got = conditional_probability(&net, &[AttrId(0)], &[0], &[AttrId(1)], &[1]).unwrap();
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn conditional_on_impossible_event_is_none() {
        let schema = themis_data::Schema::new(vec![themis_data::Attribute::new(
            "x",
            themis_data::Domain::indexed("x", 2),
        )]);
        let net = BayesianNetwork::new(
            schema,
            vec![vec![]],
            vec![Cpt {
                card: 2,
                parent_cards: vec![],
                table: vec![1.0, 0.0],
            }],
        );
        // Conditioning on x = 1, which has probability 0... needs 2 attrs;
        // use a second network instead: condition target on itself is
        // disallowed, so build a 2-node net.
        let schema2 = themis_data::paper_example::example_schema();
        let net2 = BayesianNetwork::new(
            schema2,
            vec![vec![], vec![AttrId(0)], vec![]],
            vec![
                Cpt {
                    card: 2,
                    parent_cards: vec![],
                    table: vec![1.0, 0.0],
                },
                Cpt::uniform(3, vec![2]),
                Cpt::uniform(3, vec![]),
            ],
        );
        assert_eq!(
            conditional_probability(&net2, &[AttrId(1)], &[0], &[AttrId(0)], &[1]),
            None
        );
        drop(net);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn conditional_rejects_overlapping_sets() {
        let net = chain();
        conditional_probability(&net, &[AttrId(0)], &[0], &[AttrId(0)], &[1]);
    }
}
