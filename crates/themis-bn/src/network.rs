//! Bayesian networks: DAG structure plus conditional probability tables.

use std::sync::Arc;
use themis_data::{AttrId, Schema};

/// Conditional probability table of one node.
///
/// Layout: `table[config * card + value]` where `config` is the mixed-radix
/// index of the parent assignment (first parent most significant) and `card`
/// is the node's domain size.
#[derive(Debug, Clone, PartialEq)]
pub struct Cpt {
    /// Domain size of the child.
    pub card: usize,
    /// Domain sizes of the parents, in parent order.
    pub parent_cards: Vec<usize>,
    /// Flat probability table.
    pub table: Vec<f64>,
}

impl Cpt {
    /// A uniform CPT.
    pub fn uniform(card: usize, parent_cards: Vec<usize>) -> Self {
        let configs: usize = parent_cards.iter().product::<usize>().max(1);
        Self {
            card,
            parent_cards,
            table: vec![1.0 / card as f64; configs * card],
        }
    }

    /// Number of parent configurations.
    pub fn configs(&self) -> usize {
        self.parent_cards.iter().product::<usize>().max(1)
    }

    /// Mixed-radix index of a parent assignment.
    ///
    /// # Panics
    /// Panics if `parent_values.len() != parent_cards.len()`.
    pub fn config_index(&self, parent_values: &[u32]) -> usize {
        assert_eq!(parent_values.len(), self.parent_cards.len());
        let mut idx = 0usize;
        for (&v, &c) in parent_values.iter().zip(&self.parent_cards) {
            debug_assert!((v as usize) < c, "parent value out of range");
            idx = idx * c + v as usize;
        }
        idx
    }

    /// `Pr(child = value | parents = parent_values)`.
    pub fn prob(&self, value: u32, parent_values: &[u32]) -> f64 {
        let config = self.config_index(parent_values);
        self.table[config * self.card + value as usize]
    }

    /// The probability row for one parent configuration.
    pub fn row(&self, config: usize) -> &[f64] {
        &self.table[config * self.card..(config + 1) * self.card]
    }

    /// Mutable probability row.
    pub fn row_mut(&mut self, config: usize) -> &mut [f64] {
        &mut self.table[config * self.card..(config + 1) * self.card]
    }

    /// Clamp tiny negative entries to zero and renormalize each row
    /// (footnote 7 of the paper: approximate constraint solving occasionally
    /// produces very small negative parameters).
    pub fn clamp_and_renormalize(&mut self) {
        for config in 0..self.configs() {
            let row = self.row_mut(config);
            for p in row.iter_mut() {
                if *p < 0.0 {
                    *p = 0.0;
                }
            }
            let sum: f64 = row.iter().sum();
            if sum > 0.0 {
                row.iter_mut().for_each(|p| *p /= sum);
            } else {
                let u = 1.0 / row.len() as f64;
                row.iter_mut().for_each(|p| *p = u);
            }
        }
    }

    /// Whether every row sums to 1 within `tol` and is non-negative.
    pub fn is_normalized(&self, tol: f64) -> bool {
        (0..self.configs()).all(|c| {
            let row = self.row(c);
            let sum: f64 = row.iter().sum();
            (sum - 1.0).abs() <= tol && row.iter().all(|&p| p >= -tol)
        })
    }
}

/// A discrete Bayesian network over a relation schema: one node per
/// attribute.
#[derive(Debug, Clone)]
pub struct BayesianNetwork {
    schema: Arc<Schema>,
    /// `parents[i]` — parent attributes of node `i`, in CPT order.
    parents: Vec<Vec<AttrId>>,
    /// `cpts[i]` — CPT of node `i`.
    cpts: Vec<Cpt>,
}

impl BayesianNetwork {
    /// A fully disconnected network with uniform marginals.
    pub fn disconnected(schema: Arc<Schema>) -> Self {
        let parents = vec![Vec::new(); schema.arity()];
        let cpts = schema
            .attr_ids()
            .map(|a| Cpt::uniform(schema.domain(a).size(), Vec::new()))
            .collect();
        Self {
            schema,
            parents,
            cpts,
        }
    }

    /// Build from explicit structure and CPTs.
    ///
    /// # Panics
    /// Panics if the shapes are inconsistent or the graph has a cycle.
    pub fn new(schema: Arc<Schema>, parents: Vec<Vec<AttrId>>, cpts: Vec<Cpt>) -> Self {
        assert_eq!(parents.len(), schema.arity());
        assert_eq!(cpts.len(), schema.arity());
        for (i, (ps, cpt)) in parents.iter().zip(&cpts).enumerate() {
            assert_eq!(
                cpt.card,
                schema.domain(AttrId(i)).size(),
                "CPT cardinality mismatch at node {i}"
            );
            assert_eq!(cpt.parent_cards.len(), ps.len());
            for (p, &pc) in ps.iter().zip(&cpt.parent_cards) {
                assert_eq!(pc, schema.domain(*p).size(), "parent cardinality mismatch");
            }
            assert_eq!(cpt.table.len(), cpt.configs() * cpt.card);
        }
        let net = Self {
            schema,
            parents,
            cpts,
        };
        assert!(
            net.topological_order().is_some(),
            "parent structure contains a cycle"
        );
        net
    }

    /// The schema the network models.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of nodes.
    pub fn arity(&self) -> usize {
        self.parents.len()
    }

    /// Parents of a node.
    pub fn parents(&self, node: AttrId) -> &[AttrId] {
        &self.parents[node.0]
    }

    /// CPT of a node.
    pub fn cpt(&self, node: AttrId) -> &Cpt {
        &self.cpts[node.0]
    }

    /// Mutable CPT of a node.
    pub fn cpt_mut(&mut self, node: AttrId) -> &mut Cpt {
        &mut self.cpts[node.0]
    }

    /// All directed edges `(parent, child)`.
    pub fn edges(&self) -> Vec<(AttrId, AttrId)> {
        let mut out = Vec::new();
        for (child, ps) in self.parents.iter().enumerate() {
            for &p in ps {
                out.push((p, AttrId(child)));
            }
        }
        out
    }

    /// Topological order of the nodes, or `None` if the graph has a cycle.
    pub fn topological_order(&self) -> Option<Vec<AttrId>> {
        topological_order(&self.parents)
    }

    /// Joint probability of a full assignment (one value per attribute in
    /// schema order).
    pub fn joint_prob(&self, values: &[u32]) -> f64 {
        assert_eq!(values.len(), self.arity());
        let mut p = 1.0;
        let mut parent_vals = Vec::new();
        for (i, ps) in self.parents.iter().enumerate() {
            parent_vals.clear();
            parent_vals.extend(ps.iter().map(|&pa| values[pa.0]));
            p *= self.cpts[i].prob(values[i], &parent_vals);
            if p == 0.0 {
                return 0.0;
            }
        }
        p
    }

    /// Number of free parameters `Σ_i (N_i − 1) · Π_{p ∈ Pa(i)} N_p`.
    pub fn parameter_count(&self) -> usize {
        self.cpts
            .iter()
            .map(|c| (c.card - 1) * c.configs())
            .sum()
    }

    /// Whether all CPTs are normalized within `tol`.
    pub fn is_normalized(&self, tol: f64) -> bool {
        self.cpts.iter().all(|c| c.is_normalized(tol))
    }
}

/// Kahn's algorithm over a parent-list representation.
pub(crate) fn topological_order(parents: &[Vec<AttrId>]) -> Option<Vec<AttrId>> {
    let n = parents.len();
    let mut indegree: Vec<usize> = parents.iter().map(|p| p.len()).collect();
    // children[i] = nodes that have i as a parent.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (child, ps) in parents.iter().enumerate() {
        for p in ps {
            children[p.0].push(child);
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(node) = queue.pop() {
        order.push(AttrId(node));
        for &c in &children[node] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                queue.push(c);
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_data::paper_example::example_schema;

    /// date → o_st → d_st chain with hand-built CPTs.
    fn chain() -> BayesianNetwork {
        let schema = example_schema();
        let cpt_date = Cpt {
            card: 2,
            parent_cards: vec![],
            table: vec![0.5, 0.5],
        };
        let cpt_o = Cpt {
            card: 3,
            parent_cards: vec![2],
            table: vec![
                0.4, 0.2, 0.4, // date = 01
                0.2, 0.6, 0.2, // date = 02
            ],
        };
        let cpt_d = Cpt {
            card: 3,
            parent_cards: vec![3],
            table: vec![
                0.5, 0.25, 0.25, // o = FL
                0.3, 0.2, 0.5, // o = NC
                0.4, 0.3, 0.3, // o = NY
            ],
        };
        BayesianNetwork::new(
            schema,
            vec![vec![], vec![AttrId(0)], vec![AttrId(1)]],
            vec![cpt_date, cpt_o, cpt_d],
        )
    }

    #[test]
    fn joint_prob_multiplies_chain_factors() {
        let net = chain();
        // Pr(01, NC, NY) = 0.5 * 0.2 * 0.5.
        let p = net.joint_prob(&[0, 1, 2]);
        assert!((p - 0.05).abs() < 1e-12);
    }

    #[test]
    fn topological_order_respects_edges() {
        let net = chain();
        let order = net.topological_order().unwrap();
        let pos = |a: AttrId| order.iter().position(|&x| x == a).unwrap();
        assert!(pos(AttrId(0)) < pos(AttrId(1)));
        assert!(pos(AttrId(1)) < pos(AttrId(2)));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_is_rejected() {
        let schema = example_schema();
        let cpts = vec![
            Cpt::uniform(2, vec![3]),
            Cpt::uniform(3, vec![2]),
            Cpt::uniform(3, vec![]),
        ];
        BayesianNetwork::new(
            schema,
            vec![vec![AttrId(1)], vec![AttrId(0)], vec![]],
            cpts,
        );
    }

    #[test]
    fn parameter_count_is_decomposable() {
        let net = chain();
        // date: 1, o_st: 2 configs × 2 free, d_st: 3 × 2.
        assert_eq!(net.parameter_count(), 1 + 4 + 6);
    }

    #[test]
    fn clamp_and_renormalize_fixes_negatives() {
        let mut cpt = Cpt {
            card: 2,
            parent_cards: vec![],
            table: vec![1.0000001, -1e-7],
        };
        cpt.clamp_and_renormalize();
        assert!(cpt.is_normalized(1e-12));
        assert_eq!(cpt.table[1], 0.0);
    }

    #[test]
    fn disconnected_network_is_uniform() {
        let net = BayesianNetwork::disconnected(example_schema());
        assert!((net.joint_prob(&[0, 0, 0]) - 0.5 / 3.0 / 3.0).abs() < 1e-12);
        assert!(net.is_normalized(1e-12));
    }

    #[test]
    fn edges_lists_parent_child_pairs() {
        let net = chain();
        let mut e = net.edges();
        e.sort();
        assert_eq!(
            e,
            vec![(AttrId(0), AttrId(1)), (AttrId(1), AttrId(2))]
        );
    }
}
