//! Property-based tests for the Bayesian-network substrate: variable
//! elimination against brute force on random networks, forward-sampling
//! consistency, and constrained-learning invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_bn::parameters::{learn_parameters, ParamOptions, ParamSource};
use themis_bn::{forward_sample, point_probability, BayesianNetwork, Cpt};
use themis_data::{AttrId, Attribute, Domain, Relation, Schema};

/// A random chain/forest network over the given cardinalities: node i has
/// parent i-1 with probability `edge_prob[i]`.
fn random_network(cards: Vec<usize>, edges: Vec<bool>, seed: u64) -> BayesianNetwork {
    let schema = Schema::new(
        cards
            .iter()
            .enumerate()
            .map(|(i, &c)| Attribute::new(format!("x{i}"), Domain::indexed(format!("x{i}"), c)))
            .collect(),
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut parents: Vec<Vec<AttrId>> = vec![Vec::new(); cards.len()];
    for i in 1..cards.len() {
        if edges[i - 1] {
            parents[i].push(AttrId(i - 1));
        }
    }
    let cpts: Vec<Cpt> = (0..cards.len())
        .map(|i| {
            let pcards: Vec<usize> = parents[i].iter().map(|p| cards[p.0]).collect();
            let configs: usize = pcards.iter().product::<usize>().max(1);
            let mut table = Vec::with_capacity(configs * cards[i]);
            for _ in 0..configs {
                let raw: Vec<f64> = (0..cards[i]).map(|_| rng.gen_range(0.05..1.0)).collect();
                let s: f64 = raw.iter().sum();
                table.extend(raw.into_iter().map(|x| x / s));
            }
            Cpt {
                card: cards[i],
                parent_cards: pcards,
                table,
            }
        })
        .collect();
    BayesianNetwork::new(schema, parents, cpts)
}

fn brute_force(net: &BayesianNetwork, attrs: &[AttrId], values: &[u32]) -> f64 {
    let cards: Vec<usize> = net
        .schema()
        .attr_ids()
        .map(|a| net.schema().domain(a).size())
        .collect();
    let total: usize = cards.iter().product();
    let mut p = 0.0;
    let mut assignment = vec![0u32; cards.len()];
    for flat in 0..total {
        let mut rem = flat;
        for i in (0..cards.len()).rev() {
            assignment[i] = (rem % cards[i]) as u32;
            rem /= cards[i];
        }
        if attrs.iter().zip(values).all(|(&a, &v)| assignment[a.0] == v) {
            p += net.joint_prob(&assignment);
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn variable_elimination_matches_brute_force(
        cards in prop::collection::vec(2usize..4, 2..5),
        edges in prop::collection::vec(any::<bool>(), 4),
        seed in 0u64..500,
        qattr in 0usize..4,
    ) {
        let net = random_network(cards.clone(), edges, seed);
        let a = AttrId(qattr % cards.len());
        for v in 0..cards[a.0] as u32 {
            let ve = point_probability(&net, &[a], &[v]);
            let bf = brute_force(&net, &[a], &[v]);
            prop_assert!((ve - bf).abs() < 1e-10, "{ve} vs {bf}");
        }
    }

    #[test]
    fn pairwise_ve_matches_brute_force(
        cards in prop::collection::vec(2usize..4, 3..5),
        edges in prop::collection::vec(any::<bool>(), 4),
        seed in 0u64..500,
    ) {
        let net = random_network(cards.clone(), edges, seed);
        let a = AttrId(0);
        let b = AttrId(cards.len() - 1);
        let ve = point_probability(&net, &[a, b], &[0, 0]);
        let bf = brute_force(&net, &[a, b], &[0, 0]);
        prop_assert!((ve - bf).abs() < 1e-10);
    }

    #[test]
    fn marginals_sum_to_one(
        cards in prop::collection::vec(2usize..5, 2..5),
        edges in prop::collection::vec(any::<bool>(), 4),
        seed in 0u64..500,
    ) {
        let net = random_network(cards.clone(), edges, seed);
        for (i, &c) in cards.iter().enumerate() {
            let total: f64 = (0..c as u32)
                .map(|v| point_probability(&net, &[AttrId(i)], &[v]))
                .sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn forward_samples_respect_the_schema(
        cards in prop::collection::vec(2usize..4, 2..5),
        edges in prop::collection::vec(any::<bool>(), 4),
        seed in 0u64..500,
    ) {
        let net = random_network(cards.clone(), edges, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
        let s = forward_sample(&net, 200, &mut rng);
        prop_assert_eq!(s.len(), 200);
        for r in (0..200).step_by(17) {
            for (i, &c) in cards.iter().enumerate() {
                prop_assert!((s.value(r, AttrId(i)) as usize) < c);
            }
        }
    }

    #[test]
    fn constrained_learning_keeps_cpts_normalized(
        rows in prop::collection::vec((0u32..3, 0u32..3), 5..40),
        pin in 0.05f64..0.9,
    ) {
        // Two attributes; constrain Pr(x0 = 0) = pin via an aggregate.
        let schema = Schema::new(vec![
            Attribute::new("x0", Domain::indexed("x0", 3)),
            Attribute::new("x1", Domain::indexed("x1", 3)),
        ]);
        let mut sample = Relation::new(schema);
        for (a, b) in rows {
            sample.push_row(&[a, b]);
        }
        let n = 1000.0;
        let agg = AggregateResult::from_groups(
            vec![AttrId(0)],
            vec![
                (vec![0], pin * n),
                (vec![1], (1.0 - pin) * n / 2.0),
                (vec![2], (1.0 - pin) * n / 2.0),
            ],
        );
        let set = AggregateSet::from_results(vec![agg]);
        let net = learn_parameters(
            &sample,
            &set,
            n,
            vec![vec![], vec![AttrId(0)]],
            ParamSource::Both,
            &ParamOptions::default(),
        );
        prop_assert!(net.is_normalized(1e-8));
        let p0 = point_probability(&net, &[AttrId(0)], &[0]);
        prop_assert!((p0 - pin).abs() < 1e-3, "Pr(x0=0) = {p0}, want {pin}");
    }
}
