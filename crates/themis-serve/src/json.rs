//! Dependency-free JSON for the wire protocol.
//!
//! The build environment has no crates.io access, so the server carries its
//! own minimal JSON layer: a [`Json`] tree, a panic-free recursive-descent
//! parser with a depth cap, and a serializer whose `f64` formatting is
//! Rust's shortest-round-trip `Display` — `parse(serialize(x)) == x`
//! **bit-identically** for every finite `f64`, which is what lets the
//! server-vs-session differential suite demand exact row equality through
//! the wire.
//!
//! Objects are insertion-ordered `Vec`s of pairs, never hash maps: the
//! serialized byte sequence of a response is a deterministic function of how
//! the protocol layer built it (and `deterministic-iteration` stays happy).
//!
//! Non-finite numbers have no JSON spelling; [`Json::Num`] with a NaN or
//! infinity serializes as `null`. The protocol layer encodes non-finite
//! *cells* as tagged strings before they get here (see
//! [`crate::protocol::cell_to_json`]).

use std::fmt;

/// Maximum nesting depth the parser accepts — far beyond any protocol
/// message, small enough that a hostile `[[[[…` line cannot exhaust the
/// stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Serialized with shortest-round-trip `Display`; non-finite
    /// values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Write a JSON string literal, escaping quotes, backslashes, and control
/// characters.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.consume(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest escape-free ASCII/UTF-8 run in one slice.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so any slice between byte positions
                // we advanced over whole UTF-8 sequences of is valid; the
                // loop above only stops on ASCII bytes, which never split a
                // multi-byte sequence.
                match std::str::from_utf8(&self.bytes[start..self.pos]) {
                    Ok(run) => out.push_str(run),
                    Err(_) => return Err(self.err("invalid UTF-8 in string")),
                }
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a low surrogate escape next.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.consume(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(code)
                            .ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(j: &Json) -> Json {
        Json::parse(&j.to_string()).expect("serialized JSON must reparse")
    }

    #[test]
    fn scalars_roundtrip() {
        for j in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-0.0),
            Json::Num(1.5),
            Json::Num(1e300),
            Json::Num(f64::MIN_POSITIVE),
            Json::Str(String::new()),
            Json::Str("line\nbreak \"quoted\" back\\slash \u{1}".to_string()),
            Json::Str("ünïcødé 🦀".to_string()),
        ] {
            assert_eq!(roundtrip(&j), j, "{j}");
        }
    }

    #[test]
    fn f64_roundtrip_is_bit_identical() {
        // Shortest-round-trip Display + correctly-rounded parse: exact.
        for bits in [
            0x3FF0_0000_0000_0001u64, // 1.0 + 1 ulp
            0x3FB9_9999_9999_999Au64, // 0.1
            0x7FEF_FFFF_FFFF_FFFFu64, // f64::MAX
            0x0000_0000_0000_0001u64, // smallest subnormal
            0x8000_0000_0000_0000u64, // -0.0
        ] {
            let x = f64::from_bits(bits);
            let back = roundtrip(&Json::Num(x)).as_f64().unwrap();
            assert_eq!(back.to_bits(), bits, "{x}");
        }
    }

    #[test]
    fn nested_structures_roundtrip_in_order() {
        let j = Json::Obj(vec![
            ("z".to_string(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("a".to_string(), Json::Obj(vec![("k".to_string(), Json::Str("v".into()))])),
            ("z".to_string(), Json::Bool(false)), // duplicate keys survive
        ]);
        assert_eq!(roundtrip(&j), j);
        assert_eq!(j.to_string(), r#"{"z":[1,null],"a":{"k":"v"},"z":false}"#);
        assert_eq!(j.get("z"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Null])));
    }

    #[test]
    fn parser_accepts_whitespace_and_escapes() {
        let j = Json::parse(" { \"a\" : [ 1 , \"\\u0041\\u00e9\\ud83e\\udd80\\n\" ] } ")
            .unwrap();
        assert_eq!(
            j.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("Aé🦀\n")
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 unpaired\"",
            "[1] trailing",
            "nan",
            "1e999", // overflows to infinity: not representable
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
        // Depth cap trips instead of blowing the stack.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn accessors_are_typed() {
        let j = Json::parse(r#"{"n":3,"s":"x","b":true,"f":2.5,"neg":-1}"#).unwrap();
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("f").and_then(Json::as_u64), None);
        assert_eq!(j.get("neg").and_then(Json::as_u64), None);
        assert_eq!(j.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("missing"), None);
        assert!(Json::Null.is_null());
        assert_eq!(Json::Null.get("k"), None);
    }
}
