//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, always in order.
//! Requests are objects with an `"op"` discriminant:
//!
//! | request | shape |
//! |---|---|
//! | query   | `{"op":"query","sql":"SELECT …"}` — add `"trace":true` for a span tree |
//! | explain | `{"op":"explain","sql":"SELECT …"}` |
//! | set     | `{"op":"set","deadline_ms":50,"max_rows":null,…}` |
//! | ingest  | `{"op":"ingest","table":"flights","rows":[["01","FL","NY"],…]}` |
//! | stats   | `{"op":"stats"}` |
//! | metrics | `{"op":"metrics"}` |
//!
//! Successful responses are `{"ok":true,"op":…,…}`; failures are
//! `{"ok":false,"error":{"kind":…,"message":…}}` with a structured
//! `"trip"` member on governance trips. Every encoder and decoder lives in
//! this module — the server, the client, the golden tests, and the
//! differential oracle all call the *same* functions, so the wire shape
//! cannot drift between them silently.
//!
//! ## Exactness
//!
//! Result cells are tagged: a group label is `{"s":"1"}`, an aggregate is
//! `{"n":12.5}`. Finite numbers round-trip bit-identically (see
//! [`crate::json`]); the non-finite values JSON cannot spell ride as tagged
//! strings `{"n":"NaN"}`, `{"n":"inf"}`, `{"n":"-inf"}`. This is what the
//! server-vs-session differential suite leans on when it demands the wire
//! answer equal the in-process answer bit for bit.

use crate::json::Json;
use std::time::Duration;
use themis_core::{
    Answer, DegradeReason, EngineOptions, Explain, FaultPlan, IngestReport, QueryTrace, Route,
    RouteKind, ThemisError, TraceSpan,
};
use themis_obs::saturating_micros;
use themis_query::{ExecError, QueryResult, Trip, Value};

/// Whole milliseconds through the same saturating path as
/// [`saturating_micros`] — every duration this module serializes goes
/// through one of these two helpers, so f64 precision loss is impossible
/// by construction at any magnitude.
fn saturating_millis(d: Duration) -> u64 {
    saturating_micros(d) / 1_000
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute SQL with §4.3 routing and return rows + provenance.
    Query {
        /// The SQL text.
        sql: String,
        /// Collect and return a query trace (`"trace":true`). Tracing is
        /// observation-only: the answer stays bit-identical.
        trace: bool,
    },
    /// Return the routing decision without executing.
    Explain {
        /// The SQL text.
        sql: String,
    },
    /// Adjust this connection's engine options.
    Set(SetRequest),
    /// Append labeled rows to the shared world (a new generation; see
    /// [`themis_core::ThemisSession::ingest`]).
    Ingest {
        /// Invalidation tag: cache entries whose plan touches this table
        /// are dropped.
        table: String,
        /// Rows as domain labels, one `Vec<String>` per row.
        rows: Vec<Vec<String>>,
    },
    /// Return the server's counters.
    Stats,
    /// Return the server's metrics registry (counters, gauges, latency
    /// histogram summaries), sorted by name.
    Metrics,
}

/// Fields of a `set` request. Each option is three-state: absent (leave as
/// is), `null` (clear), or a value (set). `threads`/`morsel_rows` cannot be
/// cleared, only set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SetRequest {
    /// Per-query wall-clock deadline in milliseconds.
    pub deadline_ms: Option<Option<u64>>,
    /// Row budget ([`themis_core::Limits::max_rows`]).
    pub max_rows: Option<Option<u64>>,
    /// Group budget ([`themis_core::Limits::max_groups`]).
    pub max_groups: Option<Option<u64>>,
    /// Engine worker threads per query.
    pub threads: Option<u64>,
    /// Rows per morsel.
    pub morsel_rows: Option<u64>,
    /// Deterministic fault plan (honored only when the server was built
    /// with `allow_fault_injection`).
    pub fault: Option<FaultPlan>,
}

impl SetRequest {
    /// Apply this request to a connection's engine options.
    /// `allow_fault_injection` gates the `fault` member: when false it is
    /// ignored entirely (production servers never run injected faults).
    pub fn apply(&self, engine: &mut EngineOptions, allow_fault_injection: bool) {
        if let Some(deadline) = self.deadline_ms {
            engine.limits.deadline = deadline.map(Duration::from_millis);
        }
        if let Some(rows) = self.max_rows {
            engine.limits.max_rows = rows;
        }
        if let Some(groups) = self.max_groups {
            engine.limits.max_groups = groups.map(|g| g as usize);
        }
        if let Some(threads) = self.threads {
            engine.threads = (threads as usize).max(1);
        }
        if let Some(morsel_rows) = self.morsel_rows {
            engine.morsel_rows = (morsel_rows as usize).max(1);
        }
        if allow_fault_injection {
            if let Some(fault) = &self.fault {
                engine.fault_plan = fault.clone();
            }
        }
    }
}

/// Parse one request line (already JSON-decoded). `Err` carries the message
/// for a `malformed` error response.
pub fn parse_request(j: &Json) -> Result<Request, String> {
    let op = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "request must be an object with a string \"op\"".to_string())?;
    match op {
        "query" | "explain" => {
            let sql = j
                .get("sql")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("\"{op}\" request needs a string \"sql\""))?
                .to_string();
            Ok(if op == "query" {
                let trace = match j.get("trace") {
                    None => false,
                    Some(v) => v
                        .as_bool()
                        .ok_or_else(|| "\"trace\" must be a boolean".to_string())?,
                };
                Request::Query { sql, trace }
            } else {
                Request::Explain { sql }
            })
        }
        "set" => Ok(Request::Set(parse_set(j)?)),
        "ingest" => {
            let table = j
                .get("table")
                .and_then(Json::as_str)
                .ok_or_else(|| "\"ingest\" request needs a string \"table\"".to_string())?
                .to_string();
            let rows = j
                .get("rows")
                .and_then(Json::as_arr)
                .ok_or_else(|| "\"ingest\" request needs an array \"rows\"".to_string())?
                .iter()
                .map(|row| {
                    row.as_arr()
                        .ok_or_else(|| "each ingest row must be an array".to_string())?
                        .iter()
                        .map(|cell| {
                            cell.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "ingest cells must be strings".to_string())
                        })
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Ingest { table, rows })
        }
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        other => Err(format!("unknown op \"{other}\"")),
    }
}

/// Three-state option: absent / `null` / non-negative integer.
fn tristate(j: &Json, key: &str) -> Result<Option<Option<u64>>, String> {
    match j.get(key) {
        None => Ok(None),
        Some(Json::Null) => Ok(Some(None)),
        Some(v) => v
            .as_u64()
            .map(|n| Some(Some(n)))
            .ok_or_else(|| format!("\"{key}\" must be null or a non-negative integer")),
    }
}

fn parse_set(j: &Json) -> Result<SetRequest, String> {
    let mut set = SetRequest {
        deadline_ms: tristate(j, "deadline_ms")?,
        max_rows: tristate(j, "max_rows")?,
        max_groups: tristate(j, "max_groups")?,
        threads: None,
        morsel_rows: None,
        fault: None,
    };
    for (key, slot) in [
        ("threads", &mut set.threads),
        ("morsel_rows", &mut set.morsel_rows),
    ] {
        if let Some(v) = j.get(key) {
            *slot = Some(
                v.as_u64()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("\"{key}\" must be a positive integer"))?,
            );
        }
    }
    if let Some(f) = j.get("fault") {
        set.fault = Some(parse_fault(f)?);
    }
    Ok(set)
}

fn parse_fault(j: &Json) -> Result<FaultPlan, String> {
    if j.is_null() {
        return Ok(FaultPlan::None);
    }
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "\"fault\" must be null or an object with a string \"kind\"".to_string())?;
    let morsel = |j: &Json| {
        j.get("morsel")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("fault \"{kind}\" needs an integer \"morsel\""))
    };
    match kind {
        "none" => Ok(FaultPlan::None),
        "slow_morsel" => Ok(FaultPlan::SlowMorsel {
            morsel: morsel(j)?,
            delay: Duration::from_millis(
                j.get("delay_ms")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "fault \"slow_morsel\" needs an integer \"delay_ms\"".to_string())?,
            ),
        }),
        "panic_at_morsel" => Ok(FaultPlan::PanicAtMorsel { morsel: morsel(j)? }),
        "budget_exhaust" => Ok(FaultPlan::BudgetExhaust),
        other => Err(format!("unknown fault kind \"{other}\"")),
    }
}

// ---------------------------------------------------------------------------
// Encoding: answers, explains, errors.
// ---------------------------------------------------------------------------

/// Encode one result cell. Labels are `{"s":…}`; numbers are `{"n":…}` with
/// the non-finite values JSON cannot spell as tagged strings.
pub fn cell_to_json(v: &Value) -> Json {
    match v {
        Value::Str(s) => Json::Obj(vec![("s".to_string(), Json::Str(s.clone()))]),
        Value::Num(n) if n.is_finite() => Json::Obj(vec![("n".to_string(), Json::Num(*n))]),
        Value::Num(n) => {
            let tag = if n.is_nan() {
                "NaN"
            } else if *n > 0.0 {
                "inf"
            } else {
                "-inf"
            };
            Json::Obj(vec![("n".to_string(), Json::Str(tag.to_string()))])
        }
    }
}

/// Decode one result cell (inverse of [`cell_to_json`]).
pub fn cell_from_json(j: &Json) -> Result<Value, String> {
    if let Some(s) = j.get("s").and_then(Json::as_str) {
        return Ok(Value::Str(s.to_string()));
    }
    match j.get("n") {
        Some(Json::Num(n)) => Ok(Value::Num(*n)),
        Some(Json::Str(tag)) => match tag.as_str() {
            "NaN" => Ok(Value::Num(f64::NAN)),
            "inf" => Ok(Value::Num(f64::INFINITY)),
            "-inf" => Ok(Value::Num(f64::NEG_INFINITY)),
            other => Err(format!("unknown numeric tag \"{other}\"")),
        },
        _ => Err("cell must be {\"s\":…} or {\"n\":…}".to_string()),
    }
}

fn route_kind_str(kind: RouteKind) -> &'static str {
    match kind {
        RouteKind::Sample => "sample",
        RouteKind::BayesNet => "bayes_net",
        RouteKind::Hybrid => "hybrid",
    }
}

fn route_kind_from_str(s: &str) -> Result<RouteKind, String> {
    match s {
        "sample" => Ok(RouteKind::Sample),
        "bayes_net" => Ok(RouteKind::BayesNet),
        "hybrid" => Ok(RouteKind::Hybrid),
        other => Err(format!("unknown route kind \"{other}\"")),
    }
}

/// The wire spelling of a [`DegradeReason`].
pub fn degrade_reason_str(reason: DegradeReason) -> &'static str {
    match reason {
        DegradeReason::DeadlineExceeded => "deadline_exceeded",
        DegradeReason::RowBudgetExceeded => "row_budget_exceeded",
        DegradeReason::GroupBudgetExceeded => "group_budget_exceeded",
        DegradeReason::WorkerFailure => "worker_failure",
    }
}

fn degrade_reason_from_str(s: &str) -> Result<DegradeReason, String> {
    match s {
        "deadline_exceeded" => Ok(DegradeReason::DeadlineExceeded),
        "row_budget_exceeded" => Ok(DegradeReason::RowBudgetExceeded),
        "group_budget_exceeded" => Ok(DegradeReason::GroupBudgetExceeded),
        "worker_failure" => Ok(DegradeReason::WorkerFailure),
        other => Err(format!("unknown degrade reason \"{other}\"")),
    }
}

/// Encode the route provenance stamp.
pub fn route_to_json(route: &Route) -> Json {
    let kind = |k: &str| ("kind".to_string(), Json::Str(k.to_string()));
    match route {
        Route::Sample => Json::Obj(vec![kind("sample")]),
        Route::BayesNet { k_agreed } => Json::Obj(vec![
            kind("bayes_net"),
            ("k_agreed".to_string(), Json::Num(*k_agreed as f64)),
        ]),
        Route::Hybrid {
            sample_groups,
            bn_groups_added,
        } => Json::Obj(vec![
            kind("hybrid"),
            ("sample_groups".to_string(), Json::Num(*sample_groups as f64)),
            (
                "bn_groups_added".to_string(),
                Json::Num(*bn_groups_added as f64),
            ),
        ]),
        Route::Degraded { planned, reason } => Json::Obj(vec![
            kind("degraded"),
            (
                "planned".to_string(),
                Json::Str(route_kind_str(*planned).to_string()),
            ),
            (
                "reason".to_string(),
                Json::Str(degrade_reason_str(*reason).to_string()),
            ),
        ]),
    }
}

/// Decode a route stamp (inverse of [`route_to_json`]).
pub fn route_from_json(j: &Json) -> Result<Route, String> {
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "route must have a string \"kind\"".to_string())?;
    let field = |key: &str| {
        j.get(key)
            .and_then(Json::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("route \"{kind}\" needs an integer \"{key}\""))
    };
    match kind {
        "sample" => Ok(Route::Sample),
        "bayes_net" => Ok(Route::BayesNet {
            k_agreed: field("k_agreed")?,
        }),
        "hybrid" => Ok(Route::Hybrid {
            sample_groups: field("sample_groups")?,
            bn_groups_added: field("bn_groups_added")?,
        }),
        "degraded" => Ok(Route::Degraded {
            planned: route_kind_from_str(
                j.get("planned")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "degraded route needs a string \"planned\"".to_string())?,
            )?,
            reason: degrade_reason_from_str(
                j.get("reason")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "degraded route needs a string \"reason\"".to_string())?,
            )?,
        }),
        other => Err(format!("unknown route kind \"{other}\"")),
    }
}

/// Encode a successful `query` response.
pub fn answer_body(answer: &Answer) -> Json {
    answer_body_with_trace(answer, None)
}

/// Encode a successful `query` response, appending a `"trace"` member when
/// the request asked for one. The untraced body is byte-identical to
/// [`answer_body`]: tracing only ever *adds* the final key.
pub fn answer_body_with_trace(answer: &Answer, trace: Option<&QueryTrace>) -> Json {
    let rows = answer
        .result
        .rows
        .iter()
        .map(|row| Json::Arr(row.iter().map(cell_to_json).collect()))
        .collect();
    let mut body = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::Str("query".to_string())),
        (
            "columns".to_string(),
            Json::Arr(
                answer
                    .result
                    .columns
                    .iter()
                    .map(|c| Json::Str(c.clone()))
                    .collect(),
            ),
        ),
        (
            "group_arity".to_string(),
            Json::Num(answer.result.group_arity as f64),
        ),
        ("rows".to_string(), Json::Arr(rows)),
        ("route".to_string(), route_to_json(&answer.route)),
        (
            "elapsed_us".to_string(),
            Json::Num(saturating_micros(answer.elapsed) as f64),
        ),
    ];
    if let Some(trace) = trace {
        body.push(("trace".to_string(), trace_to_json(trace)));
    }
    Json::Obj(body)
}

/// Encode a [`QueryTrace`] as an array of span objects. Key order within a
/// span is fixed (`name`, `elapsed_us`, `counters`, `notes`, `children`)
/// and empty members are omitted; counters and notes are already sorted by
/// key when a span closes, so the serialization is deterministic — the
/// only wall-clock-dependent fields carry the `_us` suffix the golden
/// normalizer zeroes.
pub fn trace_to_json(trace: &QueryTrace) -> Json {
    Json::Arr(trace.spans.iter().map(span_to_json).collect())
}

fn span_to_json(span: &TraceSpan) -> Json {
    let mut obj = vec![
        ("name".to_string(), Json::Str(span.name.clone())),
        (
            "elapsed_us".to_string(),
            Json::Num(span.elapsed_us as f64),
        ),
    ];
    if !span.counters.is_empty() {
        obj.push((
            "counters".to_string(),
            Json::Obj(
                span.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ));
    }
    if !span.notes.is_empty() {
        obj.push((
            "notes".to_string(),
            Json::Obj(
                span.notes
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    if !span.children.is_empty() {
        obj.push((
            "children".to_string(),
            Json::Arr(span.children.iter().map(span_to_json).collect()),
        ));
    }
    Json::Obj(obj)
}

/// Decode a trace (inverse of [`trace_to_json`]).
pub fn trace_from_json(j: &Json) -> Result<QueryTrace, String> {
    let spans = j
        .as_arr()
        .ok_or_else(|| "trace must be an array of spans".to_string())?
        .iter()
        .map(span_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(QueryTrace { spans })
}

fn span_from_json(j: &Json) -> Result<TraceSpan, String> {
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| "span needs a string \"name\"".to_string())?
        .to_string();
    let elapsed_us = j
        .get("elapsed_us")
        .and_then(Json::as_u64)
        .ok_or_else(|| "span needs an integer \"elapsed_us\"".to_string())?;
    let counters = match j.get("counters") {
        None => Vec::new(),
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("counter \"{k}\" must be a non-negative integer"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err("\"counters\" must be an object".to_string()),
    };
    let notes = match j.get("notes") {
        None => Vec::new(),
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| format!("note \"{k}\" must be a string"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err("\"notes\" must be an object".to_string()),
    };
    let children = match j.get("children") {
        None => Vec::new(),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| "\"children\" must be an array".to_string())?
            .iter()
            .map(span_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(TraceSpan {
        name,
        elapsed_us,
        counters,
        notes,
        children,
    })
}

/// A `query` response decoded back into engine types — what the
/// differential suite compares against the in-process oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAnswer {
    /// The rows, columns, and group arity.
    pub result: QueryResult,
    /// The provenance stamp.
    pub route: Route,
    /// Server-measured execution time (informational; never compared).
    pub elapsed: Duration,
}

/// Decode a successful `query` response (inverse of [`answer_body`]).
pub fn decode_answer(j: &Json) -> Result<WireAnswer, String> {
    let columns = j
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| "answer needs \"columns\"".to_string())?
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_string)
                .ok_or_else(|| "column names must be strings".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    let rows = j
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| "answer needs \"rows\"".to_string())?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| "each row must be an array".to_string())?
                .iter()
                .map(cell_from_json)
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    let group_arity = j
        .get("group_arity")
        .and_then(Json::as_u64)
        .ok_or_else(|| "answer needs \"group_arity\"".to_string())? as usize;
    let route = route_from_json(
        j.get("route")
            .ok_or_else(|| "answer needs \"route\"".to_string())?,
    )?;
    let elapsed = Duration::from_micros(
        j.get("elapsed_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| "answer needs \"elapsed_us\"".to_string())?,
    );
    Ok(WireAnswer {
        result: QueryResult {
            columns,
            rows,
            group_arity,
        },
        route,
        elapsed,
    })
}

/// Encode a successful `explain` response. `"cached"` mirrors
/// [`Explain::cached`]: `null` when no cache opinion applies (cache off or
/// bypass), else whether the answer would be served from cache right now.
pub fn explain_body(explain: &Explain) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::Str("explain".to_string())),
        (
            "route".to_string(),
            Json::Str(route_kind_str(explain.route).to_string()),
        ),
        ("reason".to_string(), Json::Str(explain.reason.clone())),
        (
            "degrades_to".to_string(),
            match explain.degrades_to {
                Some(kind) => Json::Str(route_kind_str(kind).to_string()),
                None => Json::Null,
            },
        ),
        (
            "cached".to_string(),
            match explain.cached {
                Some(hit) => Json::Bool(hit),
                None => Json::Null,
            },
        ),
    ])
}

/// Decode an `explain` response (inverse of [`explain_body`]). A missing
/// `"cached"` member decodes as `None`, so pre-cache responses still parse.
pub fn decode_explain(j: &Json) -> Result<Explain, String> {
    Ok(Explain {
        route: route_kind_from_str(
            j.get("route")
                .and_then(Json::as_str)
                .ok_or_else(|| "explain needs a string \"route\"".to_string())?,
        )?,
        reason: j
            .get("reason")
            .and_then(Json::as_str)
            .ok_or_else(|| "explain needs a string \"reason\"".to_string())?
            .to_string(),
        degrades_to: match j.get("degrades_to") {
            None | Some(Json::Null) => None,
            Some(v) => Some(route_kind_from_str(v.as_str().ok_or_else(|| {
                "\"degrades_to\" must be null or a route kind".to_string()
            })?)?),
        },
        cached: match j.get("cached") {
            None | Some(Json::Null) => None,
            Some(Json::Bool(b)) => Some(*b),
            Some(_) => return Err("\"cached\" must be null or a boolean".to_string()),
        },
    })
}

/// Encode a successful `ingest` response: the [`IngestReport`] verbatim.
pub fn ingest_body(report: &IngestReport) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::Str("ingest".to_string())),
        ("table".to_string(), Json::Str(report.table.clone())),
        (
            "rows_added".to_string(),
            Json::Num(report.rows_added as f64),
        ),
        (
            "sample_rows".to_string(),
            Json::Num(report.sample_rows as f64),
        ),
        (
            "generation".to_string(),
            Json::Num(report.generation as f64),
        ),
        ("bn_moved".to_string(), Json::Bool(report.bn_moved)),
        (
            "replicates_kept".to_string(),
            Json::Num(report.replicates_kept as f64),
        ),
        (
            "cache_entries_dropped".to_string(),
            Json::Num(report.cache_entries_dropped as f64),
        ),
    ])
}

/// Decode an `ingest` response (inverse of [`ingest_body`]).
pub fn decode_ingest(j: &Json) -> Result<IngestReport, String> {
    let num = |key: &str| {
        j.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("ingest report needs an integer \"{key}\""))
    };
    Ok(IngestReport {
        table: j
            .get("table")
            .and_then(Json::as_str)
            .ok_or_else(|| "ingest report needs a string \"table\"".to_string())?
            .to_string(),
        rows_added: num("rows_added")? as usize,
        sample_rows: num("sample_rows")? as usize,
        generation: num("generation")?,
        bn_moved: match j.get("bn_moved") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("ingest report needs a boolean \"bn_moved\"".to_string()),
        },
        replicates_kept: num("replicates_kept")? as usize,
        cache_entries_dropped: num("cache_entries_dropped")? as usize,
    })
}

/// Encode an `ingest` request line (inverse of the parsing in
/// [`parse_request`]).
pub fn ingest_to_json(table: &str, rows: &[Vec<String>]) -> Json {
    Json::Obj(vec![
        ("op".to_string(), Json::Str("ingest".to_string())),
        ("table".to_string(), Json::Str(table.to_string())),
        (
            "rows".to_string(),
            Json::Arr(
                rows.iter()
                    .map(|row| {
                        Json::Arr(row.iter().map(|cell| Json::Str(cell.clone())).collect())
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Encode a successful `set` response: echo the connection's effective
/// engine options so clients can confirm what they negotiated.
pub fn set_body(engine: &EngineOptions) -> Json {
    let opt_num = |v: Option<u64>| match v {
        Some(n) => Json::Num(n as f64),
        None => Json::Null,
    };
    let fault = match &engine.fault_plan {
        FaultPlan::None => "none",
        FaultPlan::SlowMorsel { .. } => "slow_morsel",
        FaultPlan::PanicAtMorsel { .. } => "panic_at_morsel",
        FaultPlan::BudgetExhaust => "budget_exhaust",
    };
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::Str("set".to_string())),
        (
            "engine".to_string(),
            Json::Obj(vec![
                ("threads".to_string(), Json::Num(engine.threads as f64)),
                (
                    "morsel_rows".to_string(),
                    Json::Num(engine.morsel_rows as f64),
                ),
                (
                    "deadline_ms".to_string(),
                    opt_num(engine.limits.deadline.map(saturating_millis)),
                ),
                ("max_rows".to_string(), opt_num(engine.limits.max_rows)),
                (
                    "max_groups".to_string(),
                    opt_num(engine.limits.max_groups.map(|g| g as u64)),
                ),
                ("fault".to_string(), Json::Str(fault.to_string())),
            ]),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// The wire spelling of a [`Trip`].
pub fn trip_to_json(trip: &Trip) -> Json {
    let kind = |k: &str| ("kind".to_string(), Json::Str(k.to_string()));
    match trip {
        Trip::Deadline => Json::Obj(vec![kind("deadline")]),
        Trip::Cancelled => Json::Obj(vec![kind("cancelled")]),
        Trip::RowBudget { limit } => Json::Obj(vec![
            kind("row_budget"),
            ("limit".to_string(), Json::Num(*limit as f64)),
        ]),
        Trip::GroupBudget { limit } => Json::Obj(vec![
            kind("group_budget"),
            ("limit".to_string(), Json::Num(*limit as f64)),
        ]),
    }
}

/// Decode a trip (inverse of [`trip_to_json`]).
pub fn trip_from_json(j: &Json) -> Result<Trip, String> {
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "trip must have a string \"kind\"".to_string())?;
    let limit = || {
        j.get("limit")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("trip \"{kind}\" needs an integer \"limit\""))
    };
    match kind {
        "deadline" => Ok(Trip::Deadline),
        "cancelled" => Ok(Trip::Cancelled),
        "row_budget" => Ok(Trip::RowBudget { limit: limit()? }),
        "group_budget" => Ok(Trip::GroupBudget {
            limit: limit()? as usize,
        }),
        other => Err(format!("unknown trip kind \"{other}\"")),
    }
}

/// Build an error response from a kind, message, and optional structured
/// trip. The server-level kinds (`malformed`, `oversized`, `busy`) and the
/// engine-level kinds (from [`themis_error_body`]) share this one shape.
pub fn error_body(kind: &str, message: &str, trip: Option<&Trip>) -> Json {
    let mut error = vec![
        ("kind".to_string(), Json::Str(kind.to_string())),
        ("message".to_string(), Json::Str(message.to_string())),
    ];
    if let Some(t) = trip {
        error.push(("trip".to_string(), trip_to_json(t)));
    }
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Obj(error)),
    ])
}

/// Encode a [`ThemisError`] as an error response. The differential suite
/// calls this on the oracle's error and compares the resulting JSON against
/// the server's response verbatim.
pub fn themis_error_body(err: &ThemisError) -> Json {
    let message = err.to_string();
    match err {
        ThemisError::Exec(e) => {
            let kind = match e {
                ExecError::UnknownTable(_) => "unknown_table",
                ExecError::UnknownColumn(_) => "unknown_column",
                ExecError::Unsupported(_) => "unsupported",
                ExecError::Parse(_) => "parse",
                ExecError::Governed(_) => "governed",
                ExecError::Internal(_) => "internal",
            };
            let trip = match e {
                ExecError::Governed(t) => Some(t),
                _ => None,
            };
            error_body(kind, &message, trip)
        }
        ThemisError::NoBayesNet => error_body("no_bayes_net", &message, None),
        ThemisError::Ingest(_) => error_body("ingest", &message, None),
        // Model-construction errors cannot occur at query time; encode them
        // as internal so the protocol stays total over the error type.
        ThemisError::NoSamples | ThemisError::SchemaMismatch { .. } => {
            error_body("internal", &message, None)
        }
    }
}

/// An error response decoded back into structured form.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// The error kind discriminant (`"parse"`, `"governed"`, `"busy"`, …).
    pub kind: String,
    /// Human-readable message.
    pub message: String,
    /// The structured trip, on `"governed"` errors.
    pub trip: Option<Trip>,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

/// Decode an error response (inverse of [`error_body`]).
pub fn decode_error(j: &Json) -> Result<WireError, String> {
    let error = j
        .get("error")
        .ok_or_else(|| "error response needs an \"error\" object".to_string())?;
    Ok(WireError {
        kind: error
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "error needs a string \"kind\"".to_string())?
            .to_string(),
        message: error
            .get("message")
            .and_then(Json::as_str)
            .ok_or_else(|| "error needs a string \"message\"".to_string())?
            .to_string(),
        trip: match error.get("trip") {
            None => None,
            Some(t) => Some(trip_from_json(t)?),
        },
    })
}

/// Encode a [`SetRequest`] as a `set` request object (inverse of the
/// parsing in [`parse_request`]).
pub fn set_to_json(set: &SetRequest) -> Json {
    let mut pairs = vec![("op".to_string(), Json::Str("set".to_string()))];
    let tristate = |v: Option<u64>| match v {
        Some(n) => Json::Num(n as f64),
        None => Json::Null,
    };
    for (key, value) in [
        ("deadline_ms", set.deadline_ms),
        ("max_rows", set.max_rows),
        ("max_groups", set.max_groups),
    ] {
        if let Some(v) = value {
            pairs.push((key.to_string(), tristate(v)));
        }
    }
    for (key, value) in [("threads", set.threads), ("morsel_rows", set.morsel_rows)] {
        if let Some(n) = value {
            pairs.push((key.to_string(), Json::Num(n as f64)));
        }
    }
    if let Some(fault) = &set.fault {
        let kind = |k: &str, mut extra: Vec<(String, Json)>| {
            let mut obj = vec![("kind".to_string(), Json::Str(k.to_string()))];
            obj.append(&mut extra);
            Json::Obj(obj)
        };
        pairs.push((
            "fault".to_string(),
            match fault {
                FaultPlan::None => Json::Null,
                FaultPlan::SlowMorsel { morsel, delay } => kind(
                    "slow_morsel",
                    vec![
                        ("morsel".to_string(), Json::Num(*morsel as f64)),
                        (
                            "delay_ms".to_string(),
                            Json::Num(saturating_millis(*delay) as f64),
                        ),
                    ],
                ),
                FaultPlan::PanicAtMorsel { morsel } => kind(
                    "panic_at_morsel",
                    vec![("morsel".to_string(), Json::Num(*morsel as f64))],
                ),
                FaultPlan::BudgetExhaust => kind("budget_exhaust", Vec::new()),
            },
        ));
    }
    Json::Obj(pairs)
}

/// Build a request line for a `query` or `explain` op.
pub fn request_line(op: &str, sql: &str) -> String {
    Json::Obj(vec![
        ("op".to_string(), Json::Str(op.to_string())),
        ("sql".to_string(), Json::Str(sql.to_string())),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_reject() {
        let q = Json::parse(r#"{"op":"query","sql":"SELECT COUNT(*) AS n FROM t"}"#).unwrap();
        assert_eq!(
            parse_request(&q).unwrap(),
            Request::Query {
                sql: "SELECT COUNT(*) AS n FROM t".to_string(),
                trace: false,
            }
        );
        let traced =
            Json::parse(r#"{"op":"query","sql":"SELECT COUNT(*) AS n FROM t","trace":true}"#)
                .unwrap();
        assert!(matches!(
            parse_request(&traced),
            Ok(Request::Query { trace: true, .. })
        ));
        assert!(parse_request(
            &Json::parse(r#"{"op":"query","sql":"SELECT 1","trace":1}"#).unwrap()
        )
        .is_err());
        assert!(matches!(
            parse_request(&Json::parse(r#"{"op":"metrics"}"#).unwrap()),
            Ok(Request::Metrics)
        ));
        let e = Json::parse(r#"{"op":"explain","sql":"SELECT 1"}"#).unwrap();
        assert!(matches!(parse_request(&e), Ok(Request::Explain { .. })));
        assert!(matches!(
            parse_request(&Json::parse(r#"{"op":"stats"}"#).unwrap()),
            Ok(Request::Stats)
        ));
        for bad in [
            r#"{"sql":"x"}"#,
            r#"{"op":"query"}"#,
            r#"{"op":"query","sql":7}"#,
            r#"{"op":"warp"}"#,
            r#"[1,2]"#,
        ] {
            assert!(parse_request(&Json::parse(bad).unwrap()).is_err(), "{bad}");
        }
    }

    #[test]
    fn set_requests_apply_tristate_fields() {
        let j = Json::parse(
            r#"{"op":"set","deadline_ms":50,"max_rows":null,"threads":2,"morsel_rows":7,
                "fault":{"kind":"panic_at_morsel","morsel":3}}"#,
        )
        .unwrap();
        let Request::Set(set) = parse_request(&j).unwrap() else {
            panic!("not a set request");
        };
        let mut engine = EngineOptions {
            threads: 1,
            morsel_rows: 2048,
            ..EngineOptions::default()
        };
        engine.limits.max_rows = Some(9);
        set.apply(&mut engine, true);
        assert_eq!(engine.limits.deadline, Some(Duration::from_millis(50)));
        assert_eq!(engine.limits.max_rows, None); // null cleared it
        assert_eq!(engine.limits.max_groups, None); // absent left it alone
        assert_eq!((engine.threads, engine.morsel_rows), (2, 7));
        assert_eq!(engine.fault_plan, FaultPlan::PanicAtMorsel { morsel: 3 });

        // Fault plans are ignored unless the server allows injection.
        let mut hardened = EngineOptions::default();
        set.apply(&mut hardened, false);
        assert_eq!(hardened.fault_plan, FaultPlan::None);

        for bad in [
            r#"{"op":"set","deadline_ms":-1}"#,
            r#"{"op":"set","threads":0}"#,
            r#"{"op":"set","threads":null}"#,
            r#"{"op":"set","fault":{"kind":"warp"}}"#,
            r#"{"op":"set","fault":{"kind":"slow_morsel","morsel":1}}"#,
            r#"{"op":"set","fault":7}"#,
        ] {
            assert!(parse_request(&Json::parse(bad).unwrap()).is_err(), "{bad}");
        }
        let clear = Json::parse(r#"{"op":"set","fault":null}"#).unwrap();
        let Request::Set(set) = parse_request(&clear).unwrap() else {
            panic!("not a set request");
        };
        assert_eq!(set.fault, Some(FaultPlan::None));
    }

    #[test]
    fn set_requests_roundtrip_through_encoding() {
        for set in [
            SetRequest {
                deadline_ms: Some(Some(50)),
                max_rows: Some(None),
                max_groups: None,
                threads: Some(2),
                morsel_rows: None,
                fault: Some(FaultPlan::SlowMorsel {
                    morsel: 1,
                    delay: Duration::from_millis(9),
                }),
            },
            SetRequest {
                fault: Some(FaultPlan::None),
                ..SetRequest::default()
            },
            SetRequest::default(),
        ] {
            let j = Json::parse(&set_to_json(&set).to_string()).unwrap();
            let Request::Set(back) = parse_request(&j).unwrap() else {
                panic!("not a set request");
            };
            assert_eq!(back, set);
        }
    }

    #[test]
    fn cells_roundtrip_including_non_finite() {
        for v in [
            Value::Str("label".to_string()),
            Value::Num(0.0),
            Value::Num(-2.5),
            Value::Num(f64::INFINITY),
            Value::Num(f64::NEG_INFINITY),
        ] {
            let back = cell_from_json(&cell_to_json(&v)).unwrap();
            assert_eq!(back, v);
        }
        // NaN != NaN under PartialEq; check the bits instead.
        let Value::Num(nan) = cell_from_json(&cell_to_json(&Value::Num(f64::NAN))).unwrap()
        else {
            panic!("not a number");
        };
        assert!(nan.is_nan());
        assert!(cell_from_json(&Json::parse(r#"{"n":"wat"}"#).unwrap()).is_err());
        assert!(cell_from_json(&Json::parse(r#"{"x":1}"#).unwrap()).is_err());
    }

    #[test]
    fn routes_roundtrip() {
        for route in [
            Route::Sample,
            Route::BayesNet { k_agreed: 25 },
            Route::Hybrid {
                sample_groups: 4,
                bn_groups_added: 2,
            },
            Route::Degraded {
                planned: RouteKind::Hybrid,
                reason: DegradeReason::WorkerFailure,
            },
            Route::Degraded {
                planned: RouteKind::BayesNet,
                reason: DegradeReason::DeadlineExceeded,
            },
        ] {
            assert_eq!(route_from_json(&route_to_json(&route)).unwrap(), route);
        }
        assert!(route_from_json(&Json::parse(r#"{"kind":"warp"}"#).unwrap()).is_err());
    }

    #[test]
    fn trips_and_errors_roundtrip() {
        for trip in [
            Trip::Deadline,
            Trip::Cancelled,
            Trip::RowBudget { limit: 100 },
            Trip::GroupBudget { limit: 8 },
        ] {
            assert_eq!(trip_from_json(&trip_to_json(&trip)).unwrap(), trip);
            let err = ThemisError::Exec(ExecError::Governed(trip));
            let wire = decode_error(&themis_error_body(&err)).unwrap();
            assert_eq!(wire.kind, "governed");
            assert_eq!(wire.trip, Some(trip));
        }
        let wire =
            decode_error(&themis_error_body(&ThemisError::Exec(ExecError::Parse(
                "near 'FROM'".to_string(),
            ))))
            .unwrap();
        assert_eq!((wire.kind.as_str(), wire.trip), ("parse", None));
        assert_eq!(wire.message, "near 'FROM'");
        let busy = decode_error(&error_body("busy", "server at capacity", None)).unwrap();
        assert_eq!(busy.to_string(), "busy: server at capacity");
    }

    #[test]
    fn answers_roundtrip_bit_identically() {
        let answer = Answer {
            result: QueryResult {
                columns: vec!["a".to_string(), "n".to_string()],
                rows: vec![
                    vec![Value::Str("0".to_string()), Value::Num(0.1 + 0.2)],
                    vec![Value::Str("1".to_string()), Value::Num(f64::MAX)],
                ],
                group_arity: 1,
            },
            route: Route::Hybrid {
                sample_groups: 2,
                bn_groups_added: 0,
            },
            elapsed: Duration::from_micros(1234),
        };
        let body = answer_body(&answer);
        let reparsed = Json::parse(&body.to_string()).unwrap();
        let wire = decode_answer(&reparsed).unwrap();
        assert_eq!(wire.result, answer.result);
        assert_eq!(wire.route, answer.route);
        assert_eq!(wire.elapsed, answer.elapsed);
        // Bit-level: 0.1 + 0.2 is not 0.3; the wire must preserve that.
        assert_eq!(
            wire.result.rows[0][1],
            Value::Num(0.30000000000000004),
        );
    }

    #[test]
    fn traces_roundtrip_and_only_extend_the_answer() {
        let trace = QueryTrace {
            spans: vec![TraceSpan {
                name: "query".to_string(),
                elapsed_us: 120,
                counters: vec![],
                notes: vec![],
                children: vec![
                    TraceSpan {
                        name: "parse".to_string(),
                        elapsed_us: 3,
                        counters: vec![],
                        notes: vec![],
                        children: vec![],
                    },
                    TraceSpan {
                        name: "execute_parallel".to_string(),
                        elapsed_us: 90,
                        counters: vec![
                            ("morsels".to_string(), 4),
                            ("rows_scanned".to_string(), 25),
                        ],
                        notes: vec![("decision".to_string(), "sample".to_string())],
                        children: vec![],
                    },
                ],
            }],
        };
        let j = Json::parse(&trace_to_json(&trace).to_string()).unwrap();
        assert_eq!(trace_from_json(&j).unwrap(), trace);
        assert!(trace_from_json(&Json::parse(r#"[{"name":"x"}]"#).unwrap()).is_err());

        let answer = Answer {
            result: QueryResult {
                columns: vec!["n".to_string()],
                rows: vec![vec![Value::Num(1.0)]],
                group_arity: 0,
            },
            route: Route::Sample,
            elapsed: Duration::from_micros(7),
        };
        let plain = answer_body(&answer).to_string();
        let traced = answer_body_with_trace(&answer, Some(&trace)).to_string();
        // Tracing appends the final `"trace"` member and changes nothing else.
        assert!(traced.starts_with(plain.trim_end_matches('}')), "{traced}");
        assert!(traced.contains("\"trace\":["), "{traced}");
        assert_eq!(answer_body_with_trace(&answer, None).to_string(), plain);
    }

    #[test]
    fn durations_saturate_instead_of_losing_precision() {
        // Below the cap: exact.
        assert_eq!(saturating_millis(Duration::from_millis(75)), 75);
        // Above 2^53 µs the old `as_micros() as f64` cast silently rounded;
        // the helper pins the value at the largest f64-exact magnitude.
        let huge = Duration::from_secs(u64::MAX / 2);
        assert_eq!(
            saturating_millis(huge),
            themis_obs::MAX_EXACT_MICROS / 1_000
        );
        let answer = Answer {
            result: QueryResult {
                columns: vec![],
                rows: vec![],
                group_arity: 0,
            },
            route: Route::Sample,
            elapsed: huge,
        };
        let wire = decode_answer(&Json::parse(&answer_body(&answer).to_string()).unwrap()).unwrap();
        assert_eq!(
            wire.elapsed,
            Duration::from_micros(themis_obs::MAX_EXACT_MICROS)
        );
    }

    #[test]
    fn explains_roundtrip() {
        for explain in [
            Explain {
                route: RouteKind::Hybrid,
                reason: "grouped query".to_string(),
                degrades_to: Some(RouteKind::Sample),
                cached: None,
            },
            Explain {
                route: RouteKind::Sample,
                reason: "scalar aggregate".to_string(),
                degrades_to: None,
                cached: Some(true),
            },
            Explain {
                route: RouteKind::Sample,
                reason: "scalar aggregate".to_string(),
                degrades_to: None,
                cached: Some(false),
            },
        ] {
            let j = Json::parse(&explain_body(&explain).to_string()).unwrap();
            assert_eq!(decode_explain(&j).unwrap(), explain);
        }
        // A pre-cache response with no "cached" member still decodes.
        let legacy = Json::parse(
            r#"{"ok":true,"op":"explain","route":"sample","reason":"r","degrades_to":null}"#,
        )
        .unwrap();
        assert_eq!(decode_explain(&legacy).unwrap().cached, None);
        let bad = Json::parse(
            r#"{"ok":true,"op":"explain","route":"sample","reason":"r","degrades_to":null,"cached":1}"#,
        )
        .unwrap();
        assert!(decode_explain(&bad).is_err());
    }

    #[test]
    fn ingest_requests_parse_and_reject() {
        let j = Json::parse(r#"{"op":"ingest","table":"flights","rows":[["01","FL","NY"],["02","NC","FL"]]}"#)
            .unwrap();
        let Request::Ingest { table, rows } = parse_request(&j).unwrap() else {
            panic!("not an ingest request");
        };
        assert_eq!(table, "flights");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec!["01", "FL", "NY"]);
        // The encoder round-trips through the parser.
        let encoded = ingest_to_json(&table, &rows);
        let back = parse_request(&Json::parse(&encoded.to_string()).unwrap()).unwrap();
        assert_eq!(back, Request::Ingest { table, rows });
        for bad in [
            r#"{"op":"ingest"}"#,
            r#"{"op":"ingest","table":"t"}"#,
            r#"{"op":"ingest","table":7,"rows":[]}"#,
            r#"{"op":"ingest","table":"t","rows":[7]}"#,
            r#"{"op":"ingest","table":"t","rows":[[7]]}"#,
        ] {
            assert!(parse_request(&Json::parse(bad).unwrap()).is_err(), "{bad}");
        }
    }

    #[test]
    fn ingest_reports_roundtrip() {
        let report = IngestReport {
            table: "flights".to_string(),
            rows_added: 3,
            sample_rows: 7,
            generation: 2,
            bn_moved: true,
            replicates_kept: 0,
            cache_entries_dropped: 4,
        };
        let j = Json::parse(&ingest_body(&report).to_string()).unwrap();
        assert_eq!(decode_ingest(&j).unwrap(), report);
        assert!(decode_ingest(&Json::parse(r#"{"ok":true}"#).unwrap()).is_err());
    }

    #[test]
    fn ingest_errors_carry_their_own_kind() {
        let err = ThemisError::Ingest(themis_core::IngestError::Arity {
            row: 0,
            expected: 3,
            got: 1,
        });
        let wire = decode_error(&themis_error_body(&err)).unwrap();
        assert_eq!(wire.kind, "ingest");
        assert!(wire.message.contains("row 0"), "{}", wire.message);
    }

    #[test]
    fn set_body_echoes_effective_options() {
        let mut engine = EngineOptions {
            threads: 2,
            morsel_rows: 512,
            ..EngineOptions::default()
        };
        engine.limits.deadline = Some(Duration::from_millis(75));
        engine.limits.max_groups = Some(10);
        let j = set_body(&engine);
        let e = j.get("engine").unwrap();
        assert_eq!(e.get("threads").and_then(Json::as_u64), Some(2));
        assert_eq!(e.get("deadline_ms").and_then(Json::as_u64), Some(75));
        assert_eq!(e.get("max_rows"), Some(&Json::Null));
        assert_eq!(e.get("max_groups").and_then(Json::as_u64), Some(10));
        assert_eq!(e.get("fault").and_then(Json::as_str), Some("none"));
    }
}
