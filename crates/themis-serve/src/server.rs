//! The TCP server: one shared immutable world, a session per connection.
//!
//! ## One world, many sessions
//!
//! A [`ThemisServer`] holds a single `Arc<ThemisSession>` — catalog, BN,
//! and the cached K forward-sample replicates behind the session's
//! `OnceLock`. The first query that needs the replicates pays the
//! simulation once; every connection after that shares the same `Arc`s.
//! Queries take `&self` all the way down and never contend: the `ingest`
//! op grows the world by swapping in a new generation behind the session's
//! `RwLock`, while in-flight queries finish on the generation they pinned.
//!
//! ## Threading
//!
//! All threading goes through `shims/rayon` (the workspace's only
//! sanctioned threading primitive). [`ThemisServer::serve`] runs `workers`
//! accept loops on one [`rayon::Pool`]; each worker owns one connection at
//! a time, reading request lines and writing response lines in order.
//! `serve` therefore **blocks** until [`ServerHandle::shutdown`] —
//! orchestrate it from another pool task:
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use themis_serve::{ServerConfig, ThemisServer};
//! # fn world() -> Arc<themis_core::ThemisSession> { unimplemented!() }
//! let server = ThemisServer::bind("127.0.0.1:0", world(), ServerConfig::default())?;
//! let handle = server.handle();
//! rayon::Pool::new(2).try_par_indexed(2, |task| {
//!     if task == 0 {
//!         let _ = server.serve(); // blocks until shutdown
//!     } else {
//!         // … drive clients against server.local_addr(), then:
//!         handle.shutdown();
//!     }
//! })
//! .map_err(|p| std::io::Error::other(p.message))?;
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! ## Governance is policy here
//!
//! The mechanism (deadlines, budgets, cancellation, degradation) lives in
//! the engines; the server layers *policy* on top: every connection starts
//! from [`ServerConfig::default_limits`], may tighten or clear them with
//! `set`, and every query passes admission control first — at most
//! [`ServerConfig::max_concurrent_queries`] queries execute at once, the
//! rest are refused with a typed `busy` error rather than queued into a
//! latency collapse.

use crate::json::Json;
use crate::protocol::{
    answer_body_with_trace, error_body, explain_body, ingest_body, parse_request, set_body,
    themis_error_body, Request,
};
use crate::stats::ServerStats;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use themis_core::{
    saturating_micros, EngineOptions, FaultPlan, Limits, ThemisSession, TraceSink,
};
use themis_obs::Gauge;

/// Server policy knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Accept-loop workers — the maximum number of simultaneously served
    /// connections (a session-per-connection model: each worker owns one
    /// connection until it disconnects; further connections wait in the
    /// listen backlog).
    pub workers: usize,
    /// Admission control: queries executing at once across all
    /// connections. Excess queries receive a typed `busy` error.
    pub max_concurrent_queries: usize,
    /// Governance limits every connection starts from (connections may
    /// adjust their own with the `set` op).
    pub default_limits: Limits,
    /// Engine worker threads per query.
    pub threads: usize,
    /// Rows per morsel.
    pub morsel_rows: usize,
    /// Longest accepted request line in bytes; longer lines are discarded
    /// and answered with a typed `oversized` error.
    pub max_line_bytes: usize,
    /// Honor `fault` members of `set` requests (deterministic fault
    /// injection for tests). Keep `false` in production configurations.
    pub allow_fault_injection: bool,
}

impl Default for ServerConfig {
    /// Four connection workers, four concurrent queries, unlimited
    /// governance, single-threaded engine, 64 KiB lines, no fault
    /// injection.
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_concurrent_queries: 4,
            default_limits: Limits::default(),
            threads: 1,
            morsel_rows: themis_query::DEFAULT_MORSEL_ROWS,
            max_line_bytes: 64 * 1024,
            allow_fault_injection: false,
        }
    }
}

/// A clonable handle for stopping a running server from another task.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral `127.0.0.1:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown: accept loops stop taking connections and
    /// [`ThemisServer::serve`] returns once in-flight connections finish.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake one accept-blocked worker; workers cascade the wake to each
        // other as they exit.
        let _ = TcpStream::connect(self.addr);
    }
}

/// One read attempt from a connection.
enum Frame {
    /// A complete request line (newline stripped).
    Line(Vec<u8>),
    /// The line exceeded the configured maximum and was discarded.
    Oversized,
    /// The client closed the connection.
    Eof,
}

/// The server: a bound listener plus the shared world it serves.
#[derive(Debug)]
pub struct ThemisServer {
    world: Arc<ThemisSession>,
    config: ServerConfig,
    listener: TcpListener,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
}

impl ThemisServer {
    /// Bind `addr` (use `"127.0.0.1:0"` for an ephemeral port) around one
    /// shared world.
    pub fn bind(
        addr: impl ToSocketAddrs,
        world: Arc<ThemisSession>,
        config: ServerConfig,
    ) -> io::Result<ThemisServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(ThemisServer {
            world,
            config,
            listener,
            addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            stats: Arc::new(ServerStats::new()),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop this server from another task.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// The server's counters (shared with the accept workers).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Run the accept loops. **Blocks** until [`ServerHandle::shutdown`];
    /// see the module docs for the two-task orchestration pattern.
    pub fn serve(&self) -> io::Result<()> {
        let workers = self.config.workers.max(1);
        rayon::Pool::new(workers)
            .try_par_indexed(workers, |_| self.worker_loop())
            .map_err(|p| io::Error::other(format!("server worker panicked: {}", p.message)))?;
        Ok(())
    }

    /// One accept loop: take a connection, serve it to completion, repeat
    /// until shutdown.
    fn worker_loop(&self) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                self.wake_peer();
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        // The wake connection (or a late client); either
                        // way, pass the wake along and exit.
                        drop(stream);
                        self.wake_peer();
                        return;
                    }
                    self.stats.connections.inc();
                    self.serve_connection(stream);
                }
                Err(_) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        self.wake_peer();
                        return;
                    }
                    // Transient accept failure: back off briefly instead of
                    // spinning.
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    /// Cascade a shutdown wake to the next accept-blocked worker.
    fn wake_peer(&self) {
        let _ = TcpStream::connect(self.addr);
    }

    /// Serve one connection: read request lines, write one response line
    /// per request, in order, until EOF or an I/O error.
    fn serve_connection(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        // Per-connection policy: start from the server defaults, adjustable
        // via `set`. `threads`/`morsel_rows` come from config so every
        // connection's answers are bit-identical to a session configured
        // the same way.
        let mut engine = EngineOptions {
            threads: self.config.threads.max(1),
            morsel_rows: self.config.morsel_rows.max(1),
            limits: self.config.default_limits.clone(),
            cancel: None,
            fault_plan: FaultPlan::None,
            // Tracing is per-request: `dispatch` swaps in an enabled sink
            // for queries sent with `"trace": true`.
            trace: TraceSink::disabled(),
        };
        loop {
            let frame = match read_frame(&mut reader, self.config.max_line_bytes) {
                Ok(f) => f,
                Err(_) => return,
            };
            let body = match frame {
                Frame::Eof => return,
                Frame::Oversized => error_body(
                    "oversized",
                    &format!(
                        "request line exceeds {} bytes",
                        self.config.max_line_bytes
                    ),
                    None,
                ),
                Frame::Line(bytes) => {
                    let Ok(text) = String::from_utf8(bytes) else {
                        if write_line(
                            &mut writer,
                            &error_body("malformed", "request line is not UTF-8", None),
                        )
                        .is_err()
                        {
                            return;
                        }
                        continue;
                    };
                    // Blank lines are keep-alive no-ops: no response.
                    if text.trim().is_empty() {
                        continue;
                    }
                    self.dispatch(&text, &mut engine)
                }
            };
            if write_line(&mut writer, &body).is_err() {
                return;
            }
        }
    }

    /// Execute one request line and build its response body.
    fn dispatch(&self, text: &str, engine: &mut EngineOptions) -> Json {
        let parsed = match Json::parse(text) {
            Ok(j) => j,
            Err(e) => return error_body("malformed", &format!("invalid JSON: {e}"), None),
        };
        let request = match parse_request(&parsed) {
            Ok(r) => r,
            Err(message) => return error_body("malformed", &message, None),
        };
        match request {
            Request::Query { sql, trace } => {
                let Some(_permit) = Permit::acquire(
                    &self.stats.active_queries,
                    self.config.max_concurrent_queries,
                ) else {
                    self.stats.busy_rejections.inc();
                    return error_body(
                        "busy",
                        &format!(
                            "server at capacity ({} concurrent queries)",
                            self.config.max_concurrent_queries
                        ),
                        None,
                    );
                };
                self.stats.queries.inc();
                // Tracing is per-request: swap an enabled sink into a clone
                // of the connection's options, never the options themselves.
                let outcome = if trace {
                    let sink = TraceSink::enabled();
                    let mut traced_engine = engine.clone();
                    traced_engine.trace = sink.clone();
                    self.world
                        .sql_with(&sql, &traced_engine)
                        .map(|answer| (answer, Some(sink.finish())))
                } else {
                    self.world.sql_with(&sql, engine).map(|answer| (answer, None))
                };
                match outcome {
                    Ok((answer, query_trace)) => {
                        self.stats.record_route(&answer.route);
                        self.stats
                            .query_latency_us
                            .record(saturating_micros(answer.elapsed));
                        answer_body_with_trace(&answer, query_trace.as_ref())
                    }
                    Err(err) => {
                        self.stats.record_error(&err);
                        themis_error_body(&err)
                    }
                }
            }
            Request::Explain { sql } => match self.world.explain_with(&sql, engine) {
                Ok(explain) => explain_body(&explain),
                Err(err) => themis_error_body(&err),
            },
            Request::Set(set) => {
                set.apply(engine, self.config.allow_fault_injection);
                set_body(engine)
            }
            Request::Ingest { table, rows } => match self.world.ingest(&table, &rows) {
                Ok(report) => ingest_body(&report),
                // Ingest errors are not query errors: they carry their own
                // kind and stay out of the query counters.
                Err(err) => themis_error_body(&err),
            },
            Request::Stats => self.stats.body(&self.world.live_snapshot()),
            Request::Metrics => self.stats.metrics_body(self.world.live_stats()),
        }
    }
}

/// An admission permit: holds one slot of the concurrent-query gauge,
/// released on drop (success *and* error paths alike).
struct Permit<'a> {
    gauge: &'a Gauge,
}

impl<'a> Permit<'a> {
    fn acquire(gauge: &'a Gauge, max: usize) -> Option<Permit<'a>> {
        gauge.try_inc_below(max as u64).then(|| Permit { gauge })
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gauge.dec();
    }
}

/// Read one `\n`-terminated line of at most `max` bytes. Longer lines are
/// drained to their newline and reported as [`Frame::Oversized`] so the
/// connection can keep being used.
fn read_frame(reader: &mut BufReader<TcpStream>, max: usize) -> io::Result<Frame> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(max as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(Frame::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        return Ok(Frame::Line(buf));
    }
    if buf.len() > max {
        // Drain the oversized line in bounded chunks (never buffering it).
        loop {
            let mut scratch = Vec::new();
            let n = reader
                .by_ref()
                .take(4096)
                .read_until(b'\n', &mut scratch)?;
            if n == 0 || scratch.last() == Some(&b'\n') {
                break;
            }
        }
        return Ok(Frame::Oversized);
    }
    // EOF arrived mid-line within budget: serve the partial line; the next
    // read reports EOF.
    Ok(Frame::Line(buf))
}

/// Serialize `body` and write it as one response line.
fn write_line(writer: &mut TcpStream, body: &Json) -> io::Result<()> {
    let mut line = body.to_string();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}
