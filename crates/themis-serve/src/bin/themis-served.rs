//! A demo Themis server over a small built-in open-world dataset.
//!
//! ```text
//! themis-served [ADDR]          # default 127.0.0.1:7878
//! ```
//!
//! Builds a deterministic three-attribute world (a biased sample of a
//! 2 000-row population, BN enabled) and serves it until killed. Point the
//! CLI at it with `\connect 127.0.0.1:7878`, or talk to it by hand:
//!
//! ```text
//! printf '%s\n' '{"op":"query","sql":"SELECT a, COUNT(*) AS n FROM t GROUP BY a"}' | nc 127.0.0.1 7878
//! ```

use std::sync::Arc;
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{Themis, ThemisConfig, ThemisSession};
use themis_data::{AttrId, Attribute, Domain, Relation, Schema};
use themis_serve::{ServerConfig, ThemisServer};

/// The same skewed world the differential suites use: population with many
/// groups, sample biased to small `a` so hybrid routes genuinely add BN
/// groups.
fn demo_world() -> ThemisSession {
    let sizes = [5usize, 4, 3];
    let schema = Schema::new(vec![
        Attribute::new("a", Domain::indexed("a", sizes[0])),
        Attribute::new("b", Domain::indexed("b", sizes[1])),
        Attribute::new("c", Domain::indexed("c", sizes[2])),
    ]);
    let mut pop = Relation::new(schema);
    for i in 0..2_000usize {
        pop.push_row(&[
            ((i * 7 + i / 13) % sizes[0]) as u32,
            ((i * 5 + 1) % sizes[1]) as u32,
            ((i * 11 + i / 7) % sizes[2]) as u32,
        ]);
    }
    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(&pop, &[AttrId(0)]),
        AggregateResult::compute(&pop, &[AttrId(1), AttrId(2)]),
    ]);
    let n = pop.len() as f64;
    let rows: Vec<usize> = (0..pop.len())
        .filter(|&r| pop.value(r, AttrId(0)) < 3)
        .take(300)
        .collect();
    let sample = pop.select_rows(&rows);
    let config = ThemisConfig {
        bn_sample_size: Some(500),
        ..ThemisConfig::default()
    };
    ThemisSession::new(Themis::build(sample, aggregates, n, config))
}

fn main() -> std::io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let server = ThemisServer::bind(addr.as_str(), Arc::new(demo_world()), ServerConfig::default())?;
    println!(
        "themis-served: serving table `t` on {} ({} workers, {} concurrent queries)",
        server.local_addr(),
        ServerConfig::default().workers,
        ServerConfig::default().max_concurrent_queries,
    );
    server.serve()
}
