//! A blocking wire-protocol client.
//!
//! [`Client`] speaks the line-delimited JSON protocol over one
//! `TcpStream`: each method writes one request line and reads exactly one
//! response line. Transport failures are [`ClientError`]; server-reported
//! failures (parse errors, governance trips, `busy`) come back as
//! [`WireError`] *values* in the inner `Result`, so callers — the
//! differential suite above all — can compare them against an oracle
//! instead of losing them to a stringly error channel.

use crate::json::Json;
use crate::protocol::{
    decode_answer, decode_error, decode_explain, decode_ingest, ingest_to_json, request_line,
    set_to_json, trace_from_json, SetRequest, WireAnswer, WireError,
};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use themis_core::{Explain, IngestReport, QueryTrace};

/// A transport or protocol failure (not a server-reported error).
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The server sent something the protocol decoder rejects.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The outcome of one request: transport-level `Err` outside, server-level
/// `Err` inside.
pub type Outcome<T> = Result<Result<T, WireError>, ClientError>;

/// A blocking connection to a [`crate::ThemisServer`].
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Send one raw line and read one raw response line (no JSON
    /// interpretation) — the golden tests drive malformed and oversized
    /// inputs through this. Do not send blank lines: the server ignores
    /// them without responding and this call would block.
    pub fn roundtrip_raw(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Send a request object and parse the response object.
    pub fn roundtrip(&mut self, request: &Json) -> Result<Json, ClientError> {
        let line = self.roundtrip_raw(&request.to_string())?;
        Json::parse(&line).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn request<T>(
        &mut self,
        line: String,
        decode: impl FnOnce(&Json) -> Result<T, String>,
    ) -> Outcome<T> {
        let response = self.roundtrip_raw(&line)?;
        let j = Json::parse(&response).map_err(|e| ClientError::Protocol(e.to_string()))?;
        match j.get("ok").and_then(Json::as_bool) {
            Some(true) => decode(&j).map(Ok).map_err(ClientError::Protocol),
            Some(false) => decode_error(&j).map(Err).map_err(ClientError::Protocol),
            None => Err(ClientError::Protocol(
                "response has no boolean \"ok\"".to_string(),
            )),
        }
    }

    /// Execute SQL; the inner `Ok` carries rows + route + server-side
    /// timing, the inner `Err` the server's typed error.
    pub fn query(&mut self, sql: &str) -> Outcome<WireAnswer> {
        self.request(request_line("query", sql), decode_answer)
    }

    /// Execute SQL with `"trace":true`: the answer plus the server-side
    /// span tree. The answer is bit-identical to an untraced [`Client::query`].
    pub fn query_traced(&mut self, sql: &str) -> Outcome<(WireAnswer, QueryTrace)> {
        let line = Json::Obj(vec![
            ("op".to_string(), Json::Str("query".to_string())),
            ("sql".to_string(), Json::Str(sql.to_string())),
            ("trace".to_string(), Json::Bool(true)),
        ])
        .to_string();
        self.request(line, |j| {
            let answer = decode_answer(j)?;
            let trace = trace_from_json(
                j.get("trace")
                    .ok_or_else(|| "traced answer needs a \"trace\" array".to_string())?,
            )?;
            Ok((answer, trace))
        })
    }

    /// Ask for the routing decision without executing.
    pub fn explain(&mut self, sql: &str) -> Outcome<Explain> {
        self.request(request_line("explain", sql), decode_explain)
    }

    /// Append labeled rows to the server's shared world (a new generation
    /// visible to every connection); returns the server's ingest report.
    pub fn ingest(&mut self, table: &str, rows: &[Vec<String>]) -> Outcome<IngestReport> {
        self.request(ingest_to_json(table, rows).to_string(), decode_ingest)
    }

    /// Adjust this connection's engine options; returns the server's echo
    /// of the effective options.
    pub fn set(&mut self, set: &SetRequest) -> Outcome<Json> {
        self.request(set_to_json(set).to_string(), |j| {
            j.get("engine")
                .cloned()
                .ok_or_else(|| "set response needs an \"engine\" object".to_string())
        })
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> Outcome<Json> {
        self.request(
            Json::Obj(vec![("op".to_string(), Json::Str("stats".to_string()))]).to_string(),
            |j| {
                j.get("stats")
                    .cloned()
                    .ok_or_else(|| "stats response needs a \"stats\" object".to_string())
            },
        )
    }

    /// Fetch the server's metrics registry export (sorted by name).
    pub fn metrics(&mut self) -> Outcome<Json> {
        self.request(
            Json::Obj(vec![("op".to_string(), Json::Str("metrics".to_string()))]).to_string(),
            |j| {
                j.get("metrics")
                    .cloned()
                    .ok_or_else(|| "metrics response needs a \"metrics\" object".to_string())
            },
        )
    }
}
