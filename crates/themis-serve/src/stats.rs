//! Server observability: lock-free counters keyed on the `Route`/`Answer`
//! provenance stamps.
//!
//! Every answer's [`Route`] and every error increments exactly one counter
//! family, so the `stats` op exposes the live route mix — how many answers
//! came straight from the reweighted sample, how many needed the BN, how
//! many degraded and *why* — without any per-query allocation or locking.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use themis_core::{DegradeReason, Route, ThemisError};
use themis_query::{ExecError, Trip};

/// Monotonic counters for one server instance. All increments are
/// `Relaxed`: the counters are observability, not synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// `query` requests executed (successes and errors, excluding busy
    /// rejections).
    pub queries: AtomicU64,
    /// `query` requests that returned an error response.
    pub errors: AtomicU64,
    /// `query` requests rejected at admission (`busy`).
    pub busy_rejections: AtomicU64,
    /// Queries currently executing (gauge).
    pub active_queries: AtomicU64,
    /// Answers routed entirely to the reweighted sample.
    pub route_sample: AtomicU64,
    /// Answers routed to the Bayesian network.
    pub route_bayes_net: AtomicU64,
    /// Answers routed hybrid (sample ∪ BN consensus).
    pub route_hybrid: AtomicU64,
    /// Answers that degraded to their sample part.
    pub route_degraded: AtomicU64,
    /// Degradations caused by the deadline.
    pub degrade_deadline: AtomicU64,
    /// Degradations caused by the row budget.
    pub degrade_row_budget: AtomicU64,
    /// Degradations caused by the group budget.
    pub degrade_group_budget: AtomicU64,
    /// Degradations caused by a contained worker failure.
    pub degrade_worker_failure: AtomicU64,
    /// Governed errors: deadline exceeded outright.
    pub trip_deadline: AtomicU64,
    /// Governed errors: query cancelled.
    pub trip_cancelled: AtomicU64,
    /// Governed errors: row budget exceeded outright.
    pub trip_row_budget: AtomicU64,
    /// Governed errors: group budget exceeded outright.
    pub trip_group_budget: AtomicU64,
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Record a successful answer's route.
    pub fn record_route(&self, route: &Route) {
        let counter = match route {
            Route::Sample => &self.route_sample,
            Route::BayesNet { .. } => &self.route_bayes_net,
            Route::Hybrid { .. } => &self.route_hybrid,
            Route::Degraded { reason, .. } => {
                match reason {
                    DegradeReason::DeadlineExceeded => &self.degrade_deadline,
                    DegradeReason::RowBudgetExceeded => &self.degrade_row_budget,
                    DegradeReason::GroupBudgetExceeded => &self.degrade_group_budget,
                    DegradeReason::WorkerFailure => &self.degrade_worker_failure,
                }
                .fetch_add(1, Ordering::Relaxed);
                &self.route_degraded
            }
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a query error (after admission — busy rejections have their
    /// own counter).
    pub fn record_error(&self, err: &ThemisError) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        if let ThemisError::Exec(ExecError::Governed(trip)) = err {
            match trip {
                Trip::Deadline => &self.trip_deadline,
                Trip::Cancelled => &self.trip_cancelled,
                Trip::RowBudget { .. } => &self.trip_row_budget,
                Trip::GroupBudget { .. } => &self.trip_group_budget,
            }
            .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The `stats` response body. Field order is part of the wire protocol
    /// (the golden tests pin it).
    pub fn body(&self) -> Json {
        let n = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("op".to_string(), Json::Str("stats".to_string())),
            (
                "stats".to_string(),
                Json::Obj(vec![
                    ("connections".to_string(), n(&self.connections)),
                    ("queries".to_string(), n(&self.queries)),
                    ("errors".to_string(), n(&self.errors)),
                    ("busy_rejections".to_string(), n(&self.busy_rejections)),
                    ("active_queries".to_string(), n(&self.active_queries)),
                    (
                        "routes".to_string(),
                        Json::Obj(vec![
                            ("sample".to_string(), n(&self.route_sample)),
                            ("bayes_net".to_string(), n(&self.route_bayes_net)),
                            ("hybrid".to_string(), n(&self.route_hybrid)),
                            ("degraded".to_string(), n(&self.route_degraded)),
                        ]),
                    ),
                    (
                        "degrade_reasons".to_string(),
                        Json::Obj(vec![
                            ("deadline_exceeded".to_string(), n(&self.degrade_deadline)),
                            (
                                "row_budget_exceeded".to_string(),
                                n(&self.degrade_row_budget),
                            ),
                            (
                                "group_budget_exceeded".to_string(),
                                n(&self.degrade_group_budget),
                            ),
                            (
                                "worker_failure".to_string(),
                                n(&self.degrade_worker_failure),
                            ),
                        ]),
                    ),
                    (
                        "trips".to_string(),
                        Json::Obj(vec![
                            ("deadline".to_string(), n(&self.trip_deadline)),
                            ("cancelled".to_string(), n(&self.trip_cancelled)),
                            ("row_budget".to_string(), n(&self.trip_row_budget)),
                            ("group_budget".to_string(), n(&self.trip_group_budget)),
                        ]),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_core::RouteKind;

    #[test]
    fn routes_and_errors_land_in_their_counters() {
        let stats = ServerStats::new();
        stats.record_route(&Route::Sample);
        stats.record_route(&Route::Sample);
        stats.record_route(&Route::BayesNet { k_agreed: 25 });
        stats.record_route(&Route::Hybrid {
            sample_groups: 1,
            bn_groups_added: 2,
        });
        stats.record_route(&Route::Degraded {
            planned: RouteKind::Hybrid,
            reason: DegradeReason::WorkerFailure,
        });
        stats.record_error(&ThemisError::Exec(ExecError::Governed(Trip::RowBudget {
            limit: 10,
        })));
        stats.record_error(&ThemisError::NoBayesNet);
        let j = stats.body();
        let stats_obj = j.get("stats").unwrap();
        let routes = stats_obj.get("routes").unwrap();
        assert_eq!(routes.get("sample").and_then(Json::as_u64), Some(2));
        assert_eq!(routes.get("bayes_net").and_then(Json::as_u64), Some(1));
        assert_eq!(routes.get("hybrid").and_then(Json::as_u64), Some(1));
        assert_eq!(routes.get("degraded").and_then(Json::as_u64), Some(1));
        assert_eq!(
            stats_obj
                .get("degrade_reasons")
                .and_then(|d| d.get("worker_failure"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            stats_obj
                .get("trips")
                .and_then(|t| t.get("row_budget"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(stats_obj.get("errors").and_then(Json::as_u64), Some(2));
    }
}
