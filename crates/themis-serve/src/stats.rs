//! Server observability: a [`MetricsRegistry`] of lock-free counters keyed
//! on the `Route`/`Answer` provenance stamps.
//!
//! Every answer's [`Route`] and every error increments exactly one counter
//! family, so the `stats` op exposes the live route mix — how many answers
//! came straight from the reweighted sample, how many needed the BN, how
//! many degraded and *why* — without any per-query allocation or locking.
//! The same handles are registered under dotted names in a
//! [`MetricsRegistry`], whose sorted export backs the `metrics` op; a
//! log-linear histogram of successful query latencies rides along and
//! yields p50/p90/p99 without external dependencies.

use crate::json::Json;
use std::sync::Arc;
use themis_core::{DegradeReason, LiveSnapshot, LiveStats, Route, ThemisError};
use themis_obs::{Counter, Gauge, Histogram, MetricValue, MetricsRegistry};
use themis_query::{ExecError, Trip};

/// Counters for one server instance, registered in a [`MetricsRegistry`].
///
/// The named fields are `Arc` handles into `registry`, hoisted so the hot
/// path records without a name lookup. All increments are relaxed atomics:
/// the counters are observability, not synchronization.
#[derive(Debug)]
pub struct ServerStats {
    registry: MetricsRegistry,
    /// Connections accepted.
    pub connections: Arc<Counter>,
    /// `query` requests executed (successes and errors, excluding busy
    /// rejections).
    pub queries: Arc<Counter>,
    /// `query` requests that returned an error response.
    pub errors: Arc<Counter>,
    /// `query` requests rejected at admission (`busy`).
    pub busy_rejections: Arc<Counter>,
    /// Queries currently executing. Doubles as the admission slot: the
    /// server's concurrency permit acquires via [`Gauge::try_inc_below`].
    pub active_queries: Arc<Gauge>,
    /// Answers routed entirely to the reweighted sample.
    pub route_sample: Arc<Counter>,
    /// Answers routed to the Bayesian network.
    pub route_bayes_net: Arc<Counter>,
    /// Answers routed hybrid (sample ∪ BN consensus).
    pub route_hybrid: Arc<Counter>,
    /// Answers that degraded to their sample part.
    pub route_degraded: Arc<Counter>,
    /// Degradations caused by the deadline.
    pub degrade_deadline: Arc<Counter>,
    /// Degradations caused by the row budget.
    pub degrade_row_budget: Arc<Counter>,
    /// Degradations caused by the group budget.
    pub degrade_group_budget: Arc<Counter>,
    /// Degradations caused by a contained worker failure.
    pub degrade_worker_failure: Arc<Counter>,
    /// Governed errors: deadline exceeded outright.
    pub trip_deadline: Arc<Counter>,
    /// Governed errors: query cancelled.
    pub trip_cancelled: Arc<Counter>,
    /// Governed errors: row budget exceeded outright.
    pub trip_row_budget: Arc<Counter>,
    /// Governed errors: group budget exceeded outright.
    pub trip_group_budget: Arc<Counter>,
    /// Latency of *successful* queries, microseconds. Successes only so the
    /// histogram count is deterministic under golden fixtures that mix in
    /// error responses.
    pub query_latency_us: Arc<Histogram>,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        let connections = registry.counter("server.connections");
        let queries = registry.counter("server.queries");
        let errors = registry.counter("server.errors");
        let busy_rejections = registry.counter("server.busy_rejections");
        let active_queries = registry.gauge("server.active_queries");
        let route_sample = registry.counter("server.routes.sample");
        let route_bayes_net = registry.counter("server.routes.bayes_net");
        let route_hybrid = registry.counter("server.routes.hybrid");
        let route_degraded = registry.counter("server.routes.degraded");
        let degrade_deadline = registry.counter("server.degrade.deadline_exceeded");
        let degrade_row_budget = registry.counter("server.degrade.row_budget_exceeded");
        let degrade_group_budget = registry.counter("server.degrade.group_budget_exceeded");
        let degrade_worker_failure = registry.counter("server.degrade.worker_failure");
        let trip_deadline = registry.counter("server.trips.deadline");
        let trip_cancelled = registry.counter("server.trips.cancelled");
        let trip_row_budget = registry.counter("server.trips.row_budget");
        let trip_group_budget = registry.counter("server.trips.group_budget");
        let query_latency_us = registry.histogram("server.query_latency_us");
        ServerStats {
            registry,
            connections,
            queries,
            errors,
            busy_rejections,
            active_queries,
            route_sample,
            route_bayes_net,
            route_hybrid,
            route_degraded,
            degrade_deadline,
            degrade_row_budget,
            degrade_group_budget,
            degrade_worker_failure,
            trip_deadline,
            trip_cancelled,
            trip_row_budget,
            trip_group_budget,
            query_latency_us,
        }
    }

    /// Record a successful answer's route.
    pub fn record_route(&self, route: &Route) {
        let counter = match route {
            Route::Sample => &self.route_sample,
            Route::BayesNet { .. } => &self.route_bayes_net,
            Route::Hybrid { .. } => &self.route_hybrid,
            Route::Degraded { reason, .. } => {
                match reason {
                    DegradeReason::DeadlineExceeded => &self.degrade_deadline,
                    DegradeReason::RowBudgetExceeded => &self.degrade_row_budget,
                    DegradeReason::GroupBudgetExceeded => &self.degrade_group_budget,
                    DegradeReason::WorkerFailure => &self.degrade_worker_failure,
                }
                .inc();
                &self.route_degraded
            }
        };
        counter.inc();
    }

    /// Record a query error (after admission — busy rejections have their
    /// own counter).
    pub fn record_error(&self, err: &ThemisError) {
        self.errors.inc();
        if let ThemisError::Exec(ExecError::Governed(trip)) = err {
            match trip {
                Trip::Deadline => &self.trip_deadline,
                Trip::Cancelled => &self.trip_cancelled,
                Trip::RowBudget { .. } => &self.trip_row_budget,
                Trip::GroupBudget { .. } => &self.trip_group_budget,
            }
            .inc();
        }
    }

    /// The `stats` response body. Field order is part of the wire protocol
    /// (the golden tests pin it). `live` is the shared world's live-data
    /// snapshot; the `cache`/`ingest` sections are always present — all
    /// zeros on a world without an answer cache — so clients never branch
    /// on shape.
    pub fn body(&self, live: &LiveSnapshot) -> Json {
        let n = |c: &Counter| Json::Num(c.get() as f64);
        let l = |v: u64| Json::Num(v as f64);
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("op".to_string(), Json::Str("stats".to_string())),
            (
                "stats".to_string(),
                Json::Obj(vec![
                    ("connections".to_string(), n(&self.connections)),
                    ("queries".to_string(), n(&self.queries)),
                    ("errors".to_string(), n(&self.errors)),
                    ("busy_rejections".to_string(), n(&self.busy_rejections)),
                    (
                        "active_queries".to_string(),
                        Json::Num(self.active_queries.get() as f64),
                    ),
                    (
                        "routes".to_string(),
                        Json::Obj(vec![
                            ("sample".to_string(), n(&self.route_sample)),
                            ("bayes_net".to_string(), n(&self.route_bayes_net)),
                            ("hybrid".to_string(), n(&self.route_hybrid)),
                            ("degraded".to_string(), n(&self.route_degraded)),
                        ]),
                    ),
                    (
                        "degrade_reasons".to_string(),
                        Json::Obj(vec![
                            ("deadline_exceeded".to_string(), n(&self.degrade_deadline)),
                            (
                                "row_budget_exceeded".to_string(),
                                n(&self.degrade_row_budget),
                            ),
                            (
                                "group_budget_exceeded".to_string(),
                                n(&self.degrade_group_budget),
                            ),
                            (
                                "worker_failure".to_string(),
                                n(&self.degrade_worker_failure),
                            ),
                        ]),
                    ),
                    (
                        "trips".to_string(),
                        Json::Obj(vec![
                            ("deadline".to_string(), n(&self.trip_deadline)),
                            ("cancelled".to_string(), n(&self.trip_cancelled)),
                            ("row_budget".to_string(), n(&self.trip_row_budget)),
                            ("group_budget".to_string(), n(&self.trip_group_budget)),
                        ]),
                    ),
                    (
                        "cache".to_string(),
                        Json::Obj(vec![
                            ("hits".to_string(), l(live.cache_hits)),
                            ("misses".to_string(), l(live.cache_misses)),
                            ("bypasses".to_string(), l(live.cache_bypasses)),
                            ("evictions".to_string(), l(live.cache_evictions)),
                            ("invalidations".to_string(), l(live.cache_invalidations)),
                            ("entries".to_string(), l(live.cache_entries)),
                        ]),
                    ),
                    (
                        "ingest".to_string(),
                        Json::Obj(vec![
                            ("batches".to_string(), l(live.ingest_batches)),
                            ("rows".to_string(), l(live.ingest_rows)),
                            ("generation".to_string(), l(live.generation)),
                            (
                                "replicates_resimulated".to_string(),
                                l(live.replicates_resimulated),
                            ),
                            ("replicates_kept".to_string(), l(live.replicates_kept)),
                        ]),
                    ),
                ]),
            ),
        ])
    }

    /// The `metrics` response body: every registered metric — the server's
    /// own plus the shared world's `live.*` family — sorted by name.
    /// Counters and gauges serialize as numbers; histograms as
    /// `{count, p50_us, p90_us, p99_us, sum_us}` objects — the `_us` keys
    /// are wall-clock-dependent, so golden normalization zeroes them while
    /// `count` stays exact.
    pub fn metrics_body(&self, live: &LiveStats) -> Json {
        let mut exported = live.export();
        exported.extend(self.registry.export());
        exported.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        let metrics = exported
            .into_iter()
            .map(|(name, value)| {
                let json = match value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => Json::Num(v as f64),
                    MetricValue::Histogram(s) => Json::Obj(vec![
                        ("count".to_string(), Json::Num(s.count as f64)),
                        ("p50_us".to_string(), Json::Num(s.p50 as f64)),
                        ("p90_us".to_string(), Json::Num(s.p90 as f64)),
                        ("p99_us".to_string(), Json::Num(s.p99 as f64)),
                        ("sum_us".to_string(), Json::Num(s.sum as f64)),
                    ]),
                };
                (name, json)
            })
            .collect();
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("op".to_string(), Json::Str("metrics".to_string())),
            ("metrics".to_string(), Json::Obj(metrics)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use themis_core::RouteKind;

    #[test]
    fn routes_and_errors_land_in_their_counters() {
        let stats = ServerStats::new();
        stats.record_route(&Route::Sample);
        stats.record_route(&Route::Sample);
        stats.record_route(&Route::BayesNet { k_agreed: 25 });
        stats.record_route(&Route::Hybrid {
            sample_groups: 1,
            bn_groups_added: 2,
        });
        stats.record_route(&Route::Degraded {
            planned: RouteKind::Hybrid,
            reason: DegradeReason::WorkerFailure,
        });
        stats.record_error(&ThemisError::Exec(ExecError::Governed(Trip::RowBudget {
            limit: 10,
        })));
        stats.record_error(&ThemisError::NoBayesNet);
        let live = LiveStats::new();
        live.cache_hits.add(5);
        live.generation.set(2);
        let j = stats.body(&live.snapshot());
        let stats_obj = j.get("stats").unwrap();
        let routes = stats_obj.get("routes").unwrap();
        assert_eq!(routes.get("sample").and_then(Json::as_u64), Some(2));
        assert_eq!(routes.get("bayes_net").and_then(Json::as_u64), Some(1));
        assert_eq!(routes.get("hybrid").and_then(Json::as_u64), Some(1));
        assert_eq!(routes.get("degraded").and_then(Json::as_u64), Some(1));
        assert_eq!(
            stats_obj
                .get("degrade_reasons")
                .and_then(|d| d.get("worker_failure"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            stats_obj
                .get("trips")
                .and_then(|t| t.get("row_budget"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(stats_obj.get("errors").and_then(Json::as_u64), Some(2));
        // Live-data sections ride along, mirroring the world's snapshot.
        let cache = stats_obj.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(5));
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(0));
        let ingest = stats_obj.get("ingest").unwrap();
        assert_eq!(ingest.get("generation").and_then(Json::as_u64), Some(2));
        assert_eq!(ingest.get("batches").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn metrics_body_is_sorted_and_complete() {
        let stats = ServerStats::new();
        stats.queries.add(3);
        stats.record_route(&Route::Sample);
        stats.query_latency_us.record(100);
        stats.query_latency_us.record(1_000);
        let live = LiveStats::new();
        live.cache_misses.add(2);
        let body = stats.metrics_body(&live);
        assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(body.get("op"), Some(&Json::Str("metrics".to_string())));
        let Some(Json::Obj(metrics)) = body.get("metrics") else {
            panic!("metrics must be an object");
        };
        // Sorted by name, regardless of registration order.
        let names: Vec<&str> = metrics.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        // 18 server metrics + 11 live.* metrics from the shared world.
        assert_eq!(names.len(), 29);
        let get = |k: &str| metrics.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        assert_eq!(get("server.queries").and_then(Json::as_u64), Some(3));
        assert_eq!(get("live.cache.misses").and_then(Json::as_u64), Some(2));
        assert_eq!(get("live.world.generation").and_then(Json::as_u64), Some(0));
        assert_eq!(get("server.routes.sample").and_then(Json::as_u64), Some(1));
        let hist = get("server.query_latency_us").unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(hist.get("sum_us").and_then(Json::as_u64), Some(1_100));
        assert!(hist.get("p50_us").and_then(Json::as_u64).unwrap() <= 100);
        // Serialization round-trips deterministically.
        let wire = body.to_string();
        assert_eq!(Json::parse(&wire).unwrap().to_string(), wire);
    }
}
