//! # themis-serve
//!
//! The serving layer: many concurrent sessions over **one shared world**.
//!
//! The expensive part of an open-world Themis deployment is simulating the
//! K Bayesian-network forward-sample replicates. A [`ThemisServer`] holds a
//! single `Arc<ThemisSession>` — catalog, BN, and the session's
//! `OnceLock`-cached replicates — so a million clients pay that cost
//! exactly once; per-connection state is just an
//! [`themis_core::EngineOptions`] (governance policy), never model data.
//!
//! The wire protocol is line-delimited JSON over TCP ([`protocol`]), built
//! on `std::net` alone — no external dependencies. Responses carry the
//! [`themis_core::Route`] provenance stamp, so a client can always tell a
//! pure sample answer from a BN-backed one from a degraded one, and the
//! server aggregates those stamps into per-route / per-degrade-reason
//! counters ([`stats::ServerStats`], exported by the `stats` op). The same
//! counters live in a `themis_obs::MetricsRegistry` whose sorted export —
//! including a log-linear latency histogram with p50/p90/p99 — backs the
//! `metrics` op, and any `query` request may add `"trace":true` to get the
//! engine's span tree alongside a bit-identical answer.
//!
//! Threading goes exclusively through `shims/rayon` ([`ThemisServer::serve`]
//! runs its accept workers on a [`rayon::Pool`] and therefore blocks; see
//! [`server`] for the orchestration pattern). [`Client`] is the matching
//! blocking client used by the CLI's `\connect` mode, the load-driver
//! bench, and the differential test harness.

#![forbid(unsafe_code)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{Client, ClientError, Outcome};
pub use json::Json;
pub use protocol::{SetRequest, WireAnswer, WireError};
pub use server::{ServerConfig, ServerHandle, ThemisServer};
pub use stats::ServerStats;
