//! Wire-protocol golden tests: a fixture corpus of request/response lines
//! driven through a live server, asserting the **exact serialized shape** of
//! every response — valid queries, governance trips, injected faults,
//! malformed JSON, oversized lines, and busy admission rejections. The
//! protocol cannot drift silently: any byte-level change to a response
//! shows up as a fixture diff here.
//!
//! Fixture format (`tests/fixtures/wire_golden.txt`, one corpus per server
//! config): `#` lines are comments, `>>> ` prefixes a request line sent
//! verbatim, `<<< ` prefixes the expected response line. The only
//! normalization is `"<key>_us":<n>` → `"<key>_us":0` — wall-clock fields
//! (answer and span timings, latency-histogram summaries) all carry the
//! `_us` suffix; everything else is byte-exact.
//!
//! The world is the deterministic biased-sample world shared with the
//! differential suites; replicate simulation is seeded by the model config,
//! so even hybrid-route rows are byte-stable.

use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use themis_aggregates::{AggregateResult, AggregateSet};
use themis_core::{Themis, ThemisConfig, ThemisSession};
use themis_data::{AttrId, Attribute, Domain, Relation, Schema};
use themis_serve::{Client, ServerConfig, ThemisServer};

fn build_world() -> ThemisSession {
    let sizes = [5usize, 4, 3];
    let schema = Schema::new(vec![
        Attribute::new("a", Domain::indexed("a", sizes[0])),
        Attribute::new("b", Domain::indexed("b", sizes[1])),
        Attribute::new("c", Domain::indexed("c", sizes[2])),
    ]);
    let mut pop = Relation::new(schema);
    for i in 0..2_000usize {
        pop.push_row(&[
            ((i * 7 + i / 13) % sizes[0]) as u32,
            ((i * 5 + 1) % sizes[1]) as u32,
            ((i * 11 + i / 7) % sizes[2]) as u32,
        ]);
    }
    let aggregates = AggregateSet::from_results(vec![
        AggregateResult::compute(&pop, &[AttrId(0)]),
        AggregateResult::compute(&pop, &[AttrId(1), AttrId(2)]),
    ]);
    let n = pop.len() as f64;
    let rows: Vec<usize> = (0..pop.len())
        .filter(|&r| pop.value(r, AttrId(0)) < 3)
        .take(300)
        .collect();
    let sample = pop.select_rows(&rows);
    let config = ThemisConfig {
        bn_sample_size: Some(500),
        ..ThemisConfig::default()
    };
    ThemisSession::new(Themis::build(sample, aggregates, n, config))
}

fn world() -> Arc<ThemisSession> {
    static WORLD: OnceLock<Arc<ThemisSession>> = OnceLock::new();
    Arc::clone(WORLD.get_or_init(|| Arc::new(build_world())))
}

/// Replace every wall-clock field with a fixed value. All nondeterministic
/// protocol fields — `elapsed_us` on answers and trace spans, the latency
/// histogram's `p50_us`/`p90_us`/`p99_us`/`sum_us` — carry the `_us` key
/// suffix by convention, so this one rewrite (`"<key>_us":<digits>` →
/// `"<key>_us":0`) keeps every fixture byte-stable.
fn normalize(line: &str) -> String {
    let needle = "_us\":";
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(pos) = rest.find(needle) {
        let after = pos + needle.len();
        out.push_str(&rest[..after]);
        let digits_end = rest[after..]
            .find(|c: char| !c.is_ascii_digit())
            .map(|i| after + i)
            .unwrap_or(rest.len());
        if digits_end > after {
            out.push('0');
        }
        rest = &rest[digits_end..];
    }
    out.push_str(rest);
    out
}

/// Parse the fixture into (request, expected-response) pairs.
fn parse_fixture(text: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    let mut pending: Option<String> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(request) = line.strip_prefix(">>> ") {
            assert!(
                pending.is_none(),
                "fixture line {}: request without a response before it",
                lineno + 1
            );
            pending = Some(request.to_string());
        } else if let Some(response) = line.strip_prefix("<<< ") {
            let request = pending
                .take()
                .unwrap_or_else(|| panic!("fixture line {}: response without request", lineno + 1));
            pairs.push((request, response.to_string()));
        } else {
            panic!("fixture line {}: expected '#', '>>> ', or '<<< '", lineno + 1);
        }
    }
    assert!(pending.is_none(), "fixture ends with an unanswered request");
    pairs
}

/// Run every request of a fixture on one connection against `config`,
/// asserting each normalized response equals the fixture's. On mismatch the
/// panic carries the full actual transcript, ready to paste.
fn run_golden(fixture: &str, config: ServerConfig) {
    run_golden_on(fixture, config, world());
}

/// Like [`run_golden`] but on a caller-provided world — the live-data
/// corpus ingests into its world, which must not be the shared static one.
fn run_golden_on(fixture: &str, config: ServerConfig, world: Arc<ThemisSession>) {
    let pairs = parse_fixture(fixture);
    let server = ThemisServer::bind("127.0.0.1:0", world, config).expect("bind");
    let handle = server.handle();
    let addr = server.local_addr();
    let results = rayon::Pool::new(2)
        .try_par_indexed(2, |task| {
            if task == 0 {
                server.serve().map_err(|e| format!("serve failed: {e}"))
            } else {
                let caught = catch_unwind(AssertUnwindSafe(|| drive(addr, &pairs)));
                handle.shutdown();
                caught.map_err(|payload| {
                    payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "driver panicked".to_string())
                })
            }
        })
        .expect("orchestration pool");
    for r in results {
        if let Err(message) = r {
            panic!("{message}");
        }
    }
}

fn drive(addr: SocketAddr, pairs: &[(String, String)]) {
    let mut client = Client::connect(addr).expect("connect");
    let mut transcript = String::new();
    let mut failed = false;
    for (request, expected) in pairs {
        let actual = normalize(&client.roundtrip_raw(request).expect("transport"));
        if &actual != expected {
            failed = true;
        }
        transcript.push_str(">>> ");
        transcript.push_str(request);
        transcript.push_str("\n<<< ");
        transcript.push_str(&actual);
        transcript.push('\n');
    }
    assert!(
        !failed,
        "wire protocol drifted from the golden fixture.\n\
         Actual transcript (normalized):\n{transcript}"
    );
}

/// The main corpus: queries on every route, explain, set echoes, a
/// governance trip, an injected worker panic, malformed and oversized
/// input, and the final deterministic stats snapshot.
#[test]
fn wire_protocol_matches_golden_fixture() {
    run_golden(
        include_str!("fixtures/wire_golden.txt"),
        ServerConfig {
            workers: 1,
            max_concurrent_queries: 4,
            threads: 1,
            morsel_rows: 7,
            max_line_bytes: 512,
            allow_fault_injection: true,
            ..ServerConfig::default()
        },
    );
}

/// Observability corpus: the `metrics` op before and after a query mix,
/// traced queries (`"trace":true`) on the sample and hybrid routes, and
/// the stats snapshot — all byte-stable after `_us` normalization.
#[test]
fn observability_ops_match_golden_fixture() {
    run_golden(
        include_str!("fixtures/wire_obs.txt"),
        ServerConfig {
            workers: 1,
            max_concurrent_queries: 4,
            threads: 1,
            morsel_rows: 7,
            max_line_bytes: 2048,
            allow_fault_injection: false,
            ..ServerConfig::default()
        },
    );
}

/// Live-data corpus: cache population, a predicted and served cache hit,
/// the `ingest` op (applied and rejected), and cache-visible stats. Runs on
/// its own cache-enabled world so the ingest cannot disturb the byte-pinned
/// answers of the corpora sharing the static world.
#[test]
fn live_data_ops_match_golden_fixture() {
    run_golden_on(
        include_str!("fixtures/wire_live.txt"),
        ServerConfig {
            workers: 1,
            max_concurrent_queries: 4,
            threads: 1,
            morsel_rows: 7,
            max_line_bytes: 2048,
            allow_fault_injection: false,
            ..ServerConfig::default()
        },
        Arc::new(build_world().with_answer_cache(16)),
    );
}

/// Admission rejection: a server with zero query capacity answers every
/// query with a typed `busy` error and counts it.
#[test]
fn busy_rejections_match_golden_fixture() {
    run_golden(
        include_str!("fixtures/wire_busy.txt"),
        ServerConfig {
            workers: 1,
            max_concurrent_queries: 0,
            ..ServerConfig::default()
        },
    );
}
